"""The consolidated TransportConfig API and its legacy flat-field aliases.

Pins the ISSUE's compatibility contract: the deprecated flat knobs of
``OnlineStudyConfig`` and the typed ``TransportConfig`` spelling must
produce *identical* resolved configurations, the backend registry must
drive ``make_transport``, and the ring geometry defaults must come from one
place (``repro.utils.constants``).
"""

import warnings

import pytest

from repro.core.config import OnlineStudyConfig
from repro.parallel import shm_ring
from repro.parallel.transport import (
    MessageRouter,
    ShmOptions,
    TcpOptions,
    TransportConfig,
    available_backends,
    make_transport,
    register_backend,
)
from repro.utils.constants import DEFAULT_RING_SLOT_BYTES, DEFAULT_RING_SLOTS
from repro.utils.exceptions import ConfigurationError


# ------------------------------------------------------------- equivalence
def test_flat_fields_and_transport_config_resolve_identically():
    typed = OnlineStudyConfig(
        transport=TransportConfig(
            backend="shm",
            batch_size=6,
            queue_size=512,
            process_timeout=30.0,
            heartbeat_timeout=5.0,
            shm=ShmOptions(ring_slots=8, ring_slot_bytes=4096),
        )
    )
    with pytest.warns(DeprecationWarning, match="flat transport field"):
        flat = OnlineStudyConfig(
            transport="shm",
            transport_batch_size=6,
            transport_queue_size=512,
            client_process_timeout=30.0,
            client_heartbeat_timeout=5.0,
            ring_slots=8,
            ring_slot_bytes=4096,
        )
    assert flat.transport_config == typed.transport_config
    # Both spellings collapse ``transport`` to the backend name and write the
    # resolved values back to the flat aliases for legacy readers.
    for cfg in (flat, typed):
        assert cfg.transport == "shm"
        assert cfg.transport_batch_size == 6
        assert cfg.transport_queue_size == 512
        assert cfg.ring_slots == 8
        assert cfg.ring_slot_bytes == 4096
        assert cfg.client_process_timeout == 30.0
        assert cfg.client_heartbeat_timeout == 5.0


def test_plain_backend_string_stays_silent_and_uses_defaults():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        cfg = OnlineStudyConfig(transport="inproc")
    assert cfg.transport == "inproc"
    assert cfg.transport_config == TransportConfig()
    assert cfg.transport_batch_size == 1
    assert cfg.transport_queue_size == 100_000
    assert cfg.client_heartbeat_timeout is None


def test_flat_overrides_on_top_of_typed_config():
    cfg = TransportConfig(backend="tcp", tcp=TcpOptions(compression="zlib"))
    resolved = TransportConfig.resolve(cfg, transport_batch_size=16, ring_slots=4)
    assert resolved.backend == "tcp"
    assert resolved.batch_size == 16
    assert resolved.shm.ring_slots == 4
    assert resolved.tcp.compression == "zlib"  # untouched nested options survive
    # No overrides: resolve returns the config unchanged.
    assert TransportConfig.resolve(cfg) is cfg


def test_client_mode_follows_backend():
    assert TransportConfig(backend="inproc").client_mode == "thread"
    for backend in ("mp", "shm", "tcp"):
        assert TransportConfig(backend=backend).client_mode == "process"


# -------------------------------------------------------------- validation
def test_unknown_backend_rejected():
    with pytest.raises(ConfigurationError, match="unknown transport backend"):
        TransportConfig(backend="zmq")
    with pytest.raises(ConfigurationError):
        OnlineStudyConfig(transport="zmq")


@pytest.mark.parametrize(
    "kwargs",
    [
        {"batch_size": 0},
        {"queue_size": -1},
        {"process_timeout": 0.0},
        {"heartbeat_timeout": -2.0},
    ],
)
def test_invalid_transport_config_fields_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        TransportConfig(**kwargs)


def test_invalid_nested_options_rejected():
    with pytest.raises(ConfigurationError, match="ring_slots"):
        ShmOptions(ring_slots=0)
    with pytest.raises(ConfigurationError, match="ring_slot_bytes"):
        ShmOptions(ring_slot_bytes=-1)
    with pytest.raises(ConfigurationError, match="compression"):
        TcpOptions(compression="snappy")
    with pytest.raises(ConfigurationError, match="port"):
        TcpOptions(port=70_000)
    with pytest.raises(ConfigurationError, match="host"):
        TcpOptions(host="")


# ---------------------------------------------------------------- registry
def test_registry_lists_builtin_backends():
    assert set(available_backends()) >= {"inproc", "mp", "shm", "tcp"}


def test_registered_backend_drives_make_transport():
    calls = {}

    def factory(config, num_server_ranks, max_concurrent_clients):
        calls["config"] = config
        calls["ranks"] = num_server_ranks
        calls["clients"] = max_concurrent_clients
        return MessageRouter(num_server_ranks, max_queue_size=config.queue_size)

    register_backend("test-loop", factory, client_mode="thread")
    try:
        transport = make_transport(
            TransportConfig(backend="test-loop", queue_size=7), 3,
            max_concurrent_clients=5,
        )
        assert isinstance(transport, MessageRouter)
        assert calls["config"].queue_size == 7
        assert (calls["ranks"], calls["clients"]) == (3, 5)
        assert TransportConfig(backend="test-loop").client_mode == "thread"
        transport.shutdown()
    finally:
        from repro.parallel.transport import _BACKENDS

        _BACKENDS.pop("test-loop", None)


def test_register_backend_rejects_bad_client_mode():
    with pytest.raises(ValueError, match="client_mode"):
        register_backend("bad", lambda *a: None, client_mode="fiber")


# ------------------------------------------------------ ring single source
def test_ring_geometry_defaults_have_one_source():
    assert shm_ring.DEFAULT_RING_SLOTS == DEFAULT_RING_SLOTS
    assert shm_ring.DEFAULT_RING_SLOT_BYTES == DEFAULT_RING_SLOT_BYTES
    options = ShmOptions()
    assert options.ring_slots == DEFAULT_RING_SLOTS
    assert options.ring_slot_bytes == DEFAULT_RING_SLOT_BYTES
    cfg = OnlineStudyConfig()
    assert cfg.ring_slots == DEFAULT_RING_SLOTS
    assert cfg.ring_slot_bytes == DEFAULT_RING_SLOT_BYTES
