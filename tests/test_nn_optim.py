"""Tests for the optimizers."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, AdamW, Linear, MSELoss, RMSProp, Sequential
from repro.nn.module import Parameter
from repro.nn.optim import get_optimizer


def quadratic_problem():
    """A single-parameter quadratic: minimise ||w - target||^2."""
    target = np.array([1.0, -2.0, 3.0])
    param = Parameter(np.zeros(3))

    def compute_grad():
        param.grad[...] = 2.0 * (param.data - target)

    return param, target, compute_grad


@pytest.mark.parametrize(
    "factory",
    [
        lambda p: SGD([p], lr=0.05),
        lambda p: SGD([p], lr=0.05, momentum=0.9),
        lambda p: SGD([p], lr=0.05, momentum=0.9, nesterov=True),
        lambda p: RMSProp([p], lr=0.05),
        lambda p: Adam([p], lr=0.1),
        lambda p: AdamW([p], lr=0.1, weight_decay=1e-4),
    ],
)
def test_optimizers_converge_on_quadratic(factory):
    param, target, compute_grad = quadratic_problem()
    optimizer = factory(param)
    for _ in range(300):
        compute_grad()
        optimizer.step()
    assert np.allclose(param.data, target, atol=1e-2)


def test_optimizer_requires_parameters():
    with pytest.raises(ValueError):
        Adam([], lr=1e-3)


def test_optimizer_rejects_bad_lr():
    param = Parameter(np.zeros(2))
    with pytest.raises(ValueError):
        SGD([param], lr=0.0)


def test_nesterov_requires_momentum():
    param = Parameter(np.zeros(2))
    with pytest.raises(ValueError):
        SGD([param], lr=0.1, nesterov=True)


def test_adam_rejects_bad_betas():
    param = Parameter(np.zeros(2))
    with pytest.raises(ValueError):
        Adam([param], lr=0.1, betas=(1.0, 0.999))


def test_zero_grad_via_optimizer():
    param = Parameter(np.ones(3))
    param.grad += 2.0
    optimizer = SGD([param], lr=0.1)
    optimizer.zero_grad()
    assert np.all(param.grad == 0)


def test_weight_decay_shrinks_weights():
    param = Parameter(np.ones(4) * 10.0)
    optimizer = SGD([param], lr=0.1, weight_decay=0.5)
    for _ in range(50):
        param.zero_grad()  # no data gradient, only decay
        optimizer.step()
    assert np.all(np.abs(param.data) < 10.0)


def test_adam_state_dict_roundtrip():
    param, _, compute_grad = quadratic_problem()
    optimizer = Adam([param], lr=0.1)
    for _ in range(5):
        compute_grad()
        optimizer.step()
    state = optimizer.state_dict()

    fresh_param = Parameter(param.data.copy())
    fresh = Adam([fresh_param], lr=0.1)
    fresh.load_state_dict(state)
    assert fresh.step_count == optimizer.step_count
    # One more identical step produces identical parameters.
    for opt, prm in ((optimizer, param), (fresh, fresh_param)):
        prm.grad[...] = 2.0 * (prm.data - np.array([1.0, -2.0, 3.0]))
        opt.step()
    assert np.allclose(param.data, fresh_param.data)


def test_sgd_momentum_state_dict_roundtrip():
    param, _, compute_grad = quadratic_problem()
    optimizer = SGD([param], lr=0.05, momentum=0.9)
    for _ in range(3):
        compute_grad()
        optimizer.step()
    state = optimizer.state_dict()
    fresh = SGD([Parameter(param.data.copy())], lr=0.05, momentum=0.9)
    fresh.load_state_dict(state)
    assert np.allclose(fresh._velocity[0], optimizer._velocity[0])


def test_get_optimizer_by_name():
    param = Parameter(np.zeros(2))
    assert isinstance(get_optimizer("adamw", [param], lr=1e-3), AdamW)
    with pytest.raises(KeyError):
        get_optimizer("lbfgs", [param])


def test_training_reduces_loss_end_to_end():
    rng = np.random.default_rng(0)
    model = Sequential(Linear(3, 16, rng=rng), Linear(16, 1, rng=rng))
    optimizer = Adam(model.parameters(), lr=1e-2)
    loss = MSELoss()
    x = rng.random((64, 3))
    y = (x.sum(axis=1, keepdims=True) * 2.0) + 1.0
    first = None
    for _ in range(200):
        model.zero_grad()
        value = loss.forward(model.forward(x), y)
        if first is None:
            first = value
        model.backward(loss.backward())
        optimizer.step()
    assert value < first * 0.05
