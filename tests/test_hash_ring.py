"""Property-based tests (hypothesis) of the consistent-hash ring.

Three invariants carry the sharded serving tier:

* **Determinism** — placement is a pure function of (shard ids, replicas,
  client id), so every process of a study computes the same assignment and
  a restarted client returns to the shard holding its dedup log and lease.
* **Balance** — with the default replica count, client load spreads across
  shards within a bounded max/min ratio (no shard is starved or doubled-up
  beyond the bound).
* **Bounded remapping** — a shard joining only pulls keys onto itself, and
  a shard leaving only moves its own keys; every other client keeps its
  shard, which is what makes elastic join/leave cheap.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.server.sharding import HashRing
from repro.utils.constants import DEFAULT_HASH_RING_REPLICAS
from repro.utils.exceptions import ConfigurationError

#: Enough sequential ids to exercise the spread (studies number clients 0..N-1).
CLIENT_IDS = range(1200)

#: Loose but meaningful spread bound: with >= 64 virtual nodes per shard the
#: measured max/min load ratio sits around 1.2-1.6; 2.5 leaves noise margin
#: while still failing a degenerate ring (one shard owning everything).
MAX_LOAD_RATIO = 2.5


# ----------------------------------------------------------------- determinism
@settings(max_examples=40, deadline=None)
@given(
    num_shards=st.integers(min_value=1, max_value=8),
    replicas=st.integers(min_value=1, max_value=128),
    client_id=st.integers(min_value=0, max_value=2**31),
)
def test_placement_is_deterministic_across_ring_instances(num_shards, replicas, client_id):
    first = HashRing(num_shards, replicas=replicas)
    second = HashRing(num_shards, replicas=replicas)
    assert first.shard_for(client_id) == second.shard_for(client_id)
    assert first.shard_for(client_id) in first.shards


@settings(max_examples=20, deadline=None)
@given(num_shards=st.integers(min_value=1, max_value=8))
def test_partition_agrees_with_shard_for(num_shards):
    ring = HashRing(num_shards)
    assignment = ring.partition(range(300))
    assert sorted(assignment) == list(ring.shards)
    for shard, clients in assignment.items():
        for client_id in clients:
            assert ring.shard_for(client_id) == shard
    assert sum(len(clients) for clients in assignment.values()) == 300


# --------------------------------------------------------------------- balance
@settings(max_examples=15, deadline=None)
@given(num_shards=st.integers(min_value=2, max_value=8))
def test_load_spread_is_bounded_at_default_replicas(num_shards):
    ring = HashRing(num_shards, replicas=DEFAULT_HASH_RING_REPLICAS)
    loads = [len(clients) for clients in ring.partition(CLIENT_IDS).values()]
    assert min(loads) > 0, "a shard received no clients at all"
    assert max(loads) / min(loads) <= MAX_LOAD_RATIO, loads


def test_more_replicas_keep_the_spread_bounded():
    for replicas in (64, 128, 256):
        ring = HashRing(4, replicas=replicas)
        loads = [len(clients) for clients in ring.partition(CLIENT_IDS).values()]
        assert max(loads) / min(loads) <= MAX_LOAD_RATIO, (replicas, loads)


# ------------------------------------------------------------ bounded remapping
@settings(max_examples=20, deadline=None)
@given(num_shards=st.integers(min_value=1, max_value=7))
def test_shard_join_only_pulls_keys_onto_the_new_shard(num_shards):
    before = HashRing(num_shards)
    after = before.with_shard(num_shards)
    moved = 0
    for client_id in CLIENT_IDS:
        old, new = before.shard_for(client_id), after.shard_for(client_id)
        if old != new:
            assert new == num_shards, "a join moved a key between surviving shards"
            moved += 1
    # The new shard owns ~1/(N+1) of the keys; allow generous measurement slack
    # but fail a rebuild-everything ring (which would remap ~N/(N+1)).
    assert moved <= 2.5 * len(CLIENT_IDS) / (num_shards + 1)


@settings(max_examples=20, deadline=None)
@given(
    num_shards=st.integers(min_value=2, max_value=8),
    departing=st.integers(min_value=0, max_value=7),
)
def test_shard_leave_only_moves_the_departed_shards_keys(num_shards, departing):
    departing = departing % num_shards
    before = HashRing(num_shards)
    after = before.without_shard(departing)
    assert departing not in after.shards
    for client_id in CLIENT_IDS:
        old = before.shard_for(client_id)
        if old == departing:
            assert after.shard_for(client_id) != departing
        else:
            assert after.shard_for(client_id) == old, (
                "a leave moved a key owned by a surviving shard"
            )


def test_join_then_leave_round_trips_every_placement():
    ring = HashRing(4)
    round_tripped = ring.with_shard(4).without_shard(4)
    for client_id in CLIENT_IDS:
        assert ring.shard_for(client_id) == round_tripped.shard_for(client_id)


# ------------------------------------------------------------------ validation
def test_ring_rejects_bad_geometry():
    with pytest.raises(ConfigurationError):
        HashRing(0)
    with pytest.raises(ConfigurationError):
        HashRing(2, replicas=0)
    with pytest.raises(ConfigurationError):
        HashRing([1, 1])
    with pytest.raises(ConfigurationError):
        HashRing(2).without_shard(7)
