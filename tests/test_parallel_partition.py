"""Tests for the block partition helpers."""

import pytest

from repro.parallel.partition import (
    BlockPartition1D,
    BlockPartition2D,
    best_process_grid,
    partition_extent,
    split_grid_2d,
)


def test_partition_extent_covers_everything():
    total, parts = 17, 5
    covered = []
    for index in range(parts):
        start, stop = partition_extent(total, parts, index)
        covered.extend(range(start, stop))
    assert covered == list(range(total))


def test_partition_extent_balanced():
    sizes = [stop - start for start, stop in (partition_extent(10, 3, i) for i in range(3))]
    assert sorted(sizes) == [3, 3, 4]


def test_partition_extent_validation():
    with pytest.raises(ValueError):
        partition_extent(10, 0, 0)
    with pytest.raises(ValueError):
        partition_extent(10, 3, 3)


def test_block_partition_1d_owner():
    partition = BlockPartition1D(total=12, parts=4)
    for item in range(12):
        owner = partition.owner(item)
        start, stop = partition.extent(owner)
        assert start <= item < stop
    with pytest.raises(ValueError):
        partition.owner(12)
    assert sum(partition.sizes()) == 12


def test_best_process_grid_prefers_low_halo():
    py, px = best_process_grid(4, ny=100, nx=100)
    assert py * px == 4
    assert (py, px) == (2, 2)


def test_best_process_grid_elongated_domain():
    py, px = best_process_grid(4, ny=8, nx=1000)
    assert py * px == 4
    # Splitting the long dimension minimises the exchanged boundary.
    assert px >= py


def test_best_process_grid_too_many_processes():
    with pytest.raises(ValueError):
        best_process_grid(64, ny=4, nx=4)


def test_block_partition_2d_blocks_tile_domain():
    partition = BlockPartition2D(ny=9, nx=7, py=3, px=2)
    seen = set()
    for rank in range(partition.nprocs):
        rows, cols = partition.local_block(rank)
        for r in range(rows.start, rows.stop):
            for c in range(cols.start, cols.stop):
                assert (r, c) not in seen
                seen.add((r, c))
    assert len(seen) == 9 * 7


def test_block_partition_2d_coords_roundtrip():
    partition = BlockPartition2D(ny=8, nx=8, py=2, px=3)
    for rank in range(partition.nprocs):
        row, col = partition.coords(rank)
        assert partition.rank_of(row, col) == rank


def test_block_partition_2d_neighbors():
    partition = BlockPartition2D(ny=6, nx=6, py=2, px=2)
    corner = partition.neighbors(0)
    assert corner["north"] is None and corner["west"] is None
    assert corner["south"] == 2 and corner["east"] == 1
    center_like = partition.neighbors(3)
    assert center_like["north"] == 1 and center_like["west"] == 2


def test_block_partition_2d_validation():
    with pytest.raises(ValueError):
        BlockPartition2D(ny=4, nx=4, py=0, px=2)
    with pytest.raises(ValueError):
        BlockPartition2D(ny=2, nx=4, py=3, px=1)
    partition = BlockPartition2D(ny=4, nx=4, py=2, px=2)
    with pytest.raises(ValueError):
        partition.coords(4)
    with pytest.raises(ValueError):
        partition.rank_of(2, 0)


def test_split_grid_2d_automatic():
    partition = split_grid_2d(ny=32, nx=64, nprocs=8)
    assert partition.nprocs == 8
    assert partition.ny == 32 and partition.nx == 64
