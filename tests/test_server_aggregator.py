"""Tests for the data-aggregator thread."""

import time

import numpy as np
import pytest

from repro.buffers import FIFOBuffer, ReservoirBuffer
from repro.parallel.messages import ClientFinished, ClientHello, Heartbeat, TimeStepMessage
from repro.parallel.transport import MessageRouter
from repro.server.aggregator import DataAggregator
from repro.server.fault import HeartbeatMonitor, MessageLog


def time_step(client_id, step, size=6):
    return TimeStepMessage(
        client_id=client_id,
        time_step=step,
        time_value=step * 0.01,
        parameters=(100.0, 200.0, 300.0, 400.0, 500.0),
        payload=np.full(size, float(step), dtype=np.float32),
        sequence_number=step,
    )


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def test_aggregator_fills_buffer_and_signals_end():
    router = MessageRouter(1)
    buffer = FIFOBuffer(capacity=100)
    aggregator = DataAggregator(rank=0, router=router, buffer=buffer, expected_clients=2,
                                poll_timeout=0.01)
    aggregator.start()

    for client_id in range(2):
        router.push(0, ClientHello(client_id=client_id, parameters=(1.0,) * 5))
        for step in range(1, 4):
            router.push(0, time_step(client_id, step))
        router.push(0, ClientFinished(client_id=client_id, total_sent=3))

    assert wait_until(lambda: buffer.reception_over)
    aggregator.join(timeout=5.0)
    assert aggregator.stats.samples_received == 6
    assert aggregator.stats.clients_finished == {0, 1}
    assert aggregator.reception_complete
    assert len(buffer) == 6
    # Samples carry the (X, t) input and the float32 field.
    record = buffer.get()
    assert record.inputs.shape == (6,)
    assert record.target.dtype == np.float32


def test_aggregator_deduplicates_restarted_client_messages():
    router = MessageRouter(1)
    buffer = FIFOBuffer(capacity=100)
    log = MessageLog()
    aggregator = DataAggregator(rank=0, router=router, buffer=buffer, expected_clients=1,
                                message_log=log, poll_timeout=0.01)
    aggregator.start()

    # Original messages, then a restart resends steps 1-2 before continuing.
    for step in (1, 2):
        router.push(0, time_step(0, step))
    for step in (1, 2, 3):
        router.push(0, time_step(0, step))
    router.push(0, ClientFinished(client_id=0, total_sent=5))

    assert wait_until(lambda: buffer.reception_over)
    aggregator.join(timeout=5.0)
    assert aggregator.stats.samples_received == 3
    assert aggregator.stats.duplicates_discarded == 2
    assert log.duplicates_discarded == 2
    assert len(buffer) == 3


def test_aggregator_updates_heartbeat_monitor():
    router = MessageRouter(1)
    buffer = ReservoirBuffer(capacity=10, threshold=0)
    monitor = HeartbeatMonitor(timeout=60.0)
    aggregator = DataAggregator(rank=0, router=router, buffer=buffer, expected_clients=1,
                                heartbeat_monitor=monitor, poll_timeout=0.01)
    aggregator.start()
    router.push(0, ClientHello(client_id=4, parameters=(1.0,) * 5))
    router.push(0, Heartbeat(client_id=4, timestamp=1.0, progress=0.3))
    router.push(0, time_step(4, 1))
    router.push(0, ClientFinished(client_id=4, total_sent=1))
    assert wait_until(lambda: buffer.reception_over)
    aggregator.join(timeout=5.0)
    assert monitor.tracked_clients() == [4]
    assert monitor.unresponsive_clients(now=time.monotonic() + 1.0) == []  # finished


def test_aggregator_stop_terminates_thread():
    router = MessageRouter(1)
    buffer = FIFOBuffer(capacity=10)
    aggregator = DataAggregator(rank=0, router=router, buffer=buffer, expected_clients=5,
                                poll_timeout=0.01)
    aggregator.start()
    assert aggregator.running
    aggregator.stop()
    assert wait_until(lambda: not aggregator.running)


def test_aggregator_double_start_rejected():
    router = MessageRouter(1)
    buffer = FIFOBuffer(capacity=10)
    aggregator = DataAggregator(rank=0, router=router, buffer=buffer, expected_clients=1)
    aggregator.start()
    with pytest.raises(RuntimeError):
        aggregator.start()
    aggregator.stop()
