"""Tests for the adaptive experimental-design extension (paper future work)."""

import numpy as np
import pytest

from repro.core.active_learning import (
    AdaptiveSampler,
    run_adaptive_rounds,
    surrogate_error_oracle,
)
from repro.nn import Linear, Sequential
from repro.sampling.base import ParameterSpace


@pytest.fixture
def space():
    return ParameterSpace.uniform_box(100.0, 500.0, 5)


def test_adaptive_sampler_validation(space):
    with pytest.raises(ValueError):
        AdaptiveSampler(space, candidate_pool_size=0)
    with pytest.raises(ValueError):
        AdaptiveSampler(space, exploration_fraction=1.5)
    with pytest.raises(ValueError):
        AdaptiveSampler(space).sample(0)


def test_adaptive_sampler_without_oracle_is_uniform(space):
    sampler = AdaptiveSampler(space, error_oracle=None, seed=0)
    samples = sampler.sample(12)
    assert samples.shape == (12, 5)
    assert space.contains(samples).all()
    assert sampler.history[-1].explored == 12
    assert sampler.num_drawn == 12


def test_adaptive_sampler_concentrates_on_high_error_region(space):
    """With a known error landscape the proposals concentrate where error is high."""

    def oracle(candidates):
        # Error is largest when the first coordinate (T_IC) is high.
        return candidates[:, 0]

    sampler = AdaptiveSampler(space, error_oracle=oracle, candidate_pool_size=512,
        exploration_fraction=0.0, seed=1)
    proposed = sampler.sample(16)
    # Everything proposed sits in the top part of the T_IC range.
    assert proposed[:, 0].min() > 400.0
    result = sampler.history[-1]
    assert result.exploited == 16 and result.explored == 0
    assert np.all(np.diff(np.sort(result.scores)) >= 0)


def test_adaptive_sampler_exploration_fraction(space):
    def oracle(candidates):
        return candidates[:, 0]

    sampler = AdaptiveSampler(space, error_oracle=oracle, exploration_fraction=0.5, seed=2)
    result = sampler.propose(10)
    assert result.exploited == 5 and result.explored == 5
    assert result.num_proposed == 10
    assert space.contains(result.proposed).all()


def test_adaptive_sampler_rejects_bad_oracle(space):
    sampler = AdaptiveSampler(space, error_oracle=lambda c: np.zeros(3), seed=0)
    with pytest.raises(ValueError):
        sampler.propose(4)


def test_surrogate_error_oracle_prefers_poorly_fit_candidates(space):
    """The oracle scores candidates by the surrogate's error against a reference."""
    rng = np.random.default_rng(0)
    model = Sequential(Linear(6, 4, rng=rng), Linear(4, 8, rng=rng))

    def reference(parameters):
        # "Truth" is zero where T_IC is low, huge where T_IC is high: the
        # random surrogate is therefore much worse on high-T_IC candidates.
        scale = 0.0 if parameters[0] < 300.0 else 1000.0
        return np.full((2, 8), scale, dtype=np.float32)

    oracle = surrogate_error_oracle(model, reference, time_values=[0.1, 0.2])
    low = np.array([150.0, 300.0, 300.0, 300.0, 300.0])
    high = np.array([450.0, 300.0, 300.0, 300.0, 300.0])
    errors = oracle(np.stack([low, high]))
    assert errors.shape == (2,)
    assert errors[1] > errors[0]


def test_run_adaptive_rounds_drives_training_callback(space):
    trained_on = []

    def oracle(candidates):
        return candidates[:, 1]

    sampler = AdaptiveSampler(space, error_oracle=oracle, exploration_fraction=0.2, seed=3)
    reports = run_adaptive_rounds(
        sampler,
        train_round=lambda params: trained_on.append(params.copy()),
        num_rounds=3,
        clients_per_round=6,
    )
    assert len(reports) == 3
    assert len(trained_on) == 3
    assert all(batch.shape == (6, 5) for batch in trained_on)
    assert all(report.max_candidate_error >= report.mean_candidate_error for report in reports)
    with pytest.raises(ValueError):
        run_adaptive_rounds(sampler, lambda p: None, num_rounds=0, clients_per_round=1)
