"""Contract tests of the CI benchmark-summary gate (``scripts/bench_summary.py``).

The gate's failure modes matter more than its happy path: a malformed report
entry (missing keys, NaN speedup) must fail the job loudly — silently
skipping it would let a broken recorder pass as a green benchmark matrix —
and the rendered table must surface the absolute msg/s rates next to each
ratio so a speedup can be sanity-checked against the magnitudes behind it.
"""

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "bench_summary.py"

GOOD_REPORT = {
    "schema": 1,
    "results": [
        {
            "name": "sharding.scale_2x",
            "speedup": 2.0,
            "unit": "x",
            "floor": 1.7,
            "detail": {"mode": "model", "aggregate_msgs_per_s": 29092},
        },
        {"name": "tcp.loopback_push", "speedup": 1.4, "unit": "x"},
    ],
}


def run_summary(*argv):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *map(str, argv)],
        capture_output=True, text=True, cwd=REPO,
    )


def write(path: Path, payload: dict) -> Path:
    path.write_text(json.dumps(payload))
    return path


def test_table_shows_absolute_rates_next_to_speedups(tmp_path):
    report = write(tmp_path / "report.json", GOOD_REPORT)
    proc = run_summary(report)
    assert proc.returncode == 0, proc.stderr
    row = next(line for line in proc.stdout.splitlines() if "sharding.scale_2x" in line)
    assert "2x" in row
    assert "aggregate 29,092" in row  # absolute msg/s column
    assert "mode=model" in row


def test_malformed_report_entry_fails_instead_of_skipping(tmp_path):
    for results in (
        [{"speedup": 2.0}],  # missing name
        [{"name": "a.b"}],  # missing speedup
        [{"name": "a.b", "speedup": float("nan")}],
        [{"name": "a.b", "speedup": "fast"}],
    ):
        report = write(tmp_path / "report.json", {"schema": 1, "results": results})
        proc = run_summary(report)
        assert proc.returncode == 2, results
        assert "malformed benchmark entry" in proc.stderr, results


def test_malformed_baseline_fails_even_when_the_report_is_clean(tmp_path):
    report = write(tmp_path / "report.json", GOOD_REPORT)
    baseline = write(
        tmp_path / "baseline.json",
        {"schema": 1, "results": [{"name": "a.b", "speedup": None}]},
    )
    proc = run_summary(report, "--baseline", baseline)
    assert proc.returncode == 2
    assert "malformed benchmark entry" in proc.stderr


def test_trajectory_gate_still_catches_regressions(tmp_path):
    report = write(tmp_path / "report.json", GOOD_REPORT)
    regressed = {
        "schema": 1,
        "results": [{"name": "sharding.scale_2x", "speedup": 4.0, "unit": "x"}],
    }
    baseline = write(tmp_path / "baseline.json", regressed)
    proc = run_summary(report, "--baseline", baseline, "--tolerance", "0.2")
    assert proc.returncode == 1
    assert "benchmark regression" in proc.stderr

    # Baseline entries missing from the report stay warnings, not failures.
    extra = {
        "schema": 1,
        "results": [{"name": "not.measured_here", "speedup": 1.5, "unit": "x"}],
    }
    baseline = write(tmp_path / "baseline.json", extra)
    proc = run_summary(report, "--baseline", baseline)
    assert proc.returncode == 0, proc.stderr
    assert "Not measured this run" in proc.stdout
