"""Tests for the launcher (series submission, concurrency, restarts)."""

import threading
import time

import numpy as np
import pytest

from repro.client.simulation_client import SimulationClient
from repro.launcher.launcher import ClientSpec, Launcher, LauncherConfig
from repro.parallel.messages import ClientFinished, TimeStepMessage
from repro.parallel.transport import MessageRouter
from repro.solvers.heat2d import HeatEquationConfig, HeatEquationSolver, HeatParameters


def build_specs(count, fail_ids=()):
    rng = np.random.default_rng(0)
    specs = []
    for client_id in range(count):
        raw = rng.uniform(100, 500, size=5)
        specs.append(
            ClientSpec(
                client_id=client_id,
                parameters=raw,
                solver_params=HeatParameters.from_array(raw),
                fail_at_step=2 if client_id in fail_ids else None,
            )
        )
    return specs


def make_factory(router, num_steps=4, step_delay=0.0):
    config = HeatEquationConfig(nx=8, ny=8, num_steps=num_steps)

    def factory(spec: ClientSpec) -> SimulationClient:
        return SimulationClient(
            client_id=spec.client_id,
            parameters=tuple(float(p) for p in spec.parameters),
            solver=HeatEquationSolver(config),
            router=router,
            num_time_steps=num_steps,
            step_delay=step_delay,
        )

    return factory


def drain_time_steps(router, rank=0):
    messages = []
    while True:
        message = router.poll(rank, timeout=0.01)
        if message is None:
            return messages
        messages.append(message)


def test_launcher_config_validation():
    with pytest.raises(ValueError):
        LauncherConfig(max_concurrent_clients=0)
    with pytest.raises(ValueError):
        LauncherConfig(max_restarts=-1)


def test_launcher_runs_all_clients():
    router = MessageRouter(1)
    specs = build_specs(5)
    launcher = Launcher(make_factory(router, num_steps=3), specs,
                        LauncherConfig(max_concurrent_clients=2))
    report = launcher.run()
    assert report.clients_completed == 5
    assert report.clients_failed == 0
    assert report.total_steps_sent == 15
    messages = drain_time_steps(router)
    finished = [m for m in messages if isinstance(m, ClientFinished)]
    assert len(finished) == 5


def test_launcher_series_execute_sequentially():
    """Series i+1 only starts after series i completed (throughput-stall cause)."""
    router = MessageRouter(1)
    specs = build_specs(6)
    order = []
    lock = threading.Lock()
    config = HeatEquationConfig(nx=8, ny=8, num_steps=2)

    class RecordingClient(SimulationClient):
        def run(self, solver_params=None):
            with lock:
                order.append(("start", self.client_id, time.monotonic()))
            result = super().run(solver_params=solver_params)
            with lock:
                order.append(("end", self.client_id, time.monotonic()))
            return result

    def factory(spec: ClientSpec) -> SimulationClient:
        return RecordingClient(
            client_id=spec.client_id,
            parameters=tuple(float(p) for p in spec.parameters),
            solver=HeatEquationSolver(config),
            router=router,
            num_time_steps=2,
        )

    launcher = Launcher(
        factory, specs,
        LauncherConfig(series_sizes=(3, 3), max_concurrent_clients=3, inter_series_delay=0.05),
    )
    report = launcher.run()
    assert report.clients_completed == 6
    assert len(report.series_boundaries) == 2
    first_series_ends = max(t for kind, cid, t in order if kind == "end" and cid < 3)
    second_series_starts = min(t for kind, cid, t in order if kind == "start" and cid >= 3)
    assert second_series_starts >= first_series_ends


def test_launcher_extra_clients_form_final_series():
    router = MessageRouter(1)
    specs = build_specs(5)
    launcher = Launcher(make_factory(router, num_steps=1), specs,
                        LauncherConfig(series_sizes=(2, 2), max_concurrent_clients=2))
    report = launcher.run()
    assert report.clients_completed == 5
    assert len(report.series_boundaries) == 3  # 2 + 2 + remainder


def test_launcher_restarts_failed_clients_and_server_side_dedup_possible():
    router = MessageRouter(1)
    specs = build_specs(3, fail_ids=(1,))
    launcher = Launcher(make_factory(router, num_steps=4), specs,
                        LauncherConfig(max_concurrent_clients=3, max_restarts=2))
    report = launcher.run()
    assert report.clients_completed == 3
    assert report.restarts == 1
    messages = drain_time_steps(router)
    steps = [m for m in messages if isinstance(m, TimeStepMessage) and m.client_id == 1]
    # With checkpointing, the restart resumes after the failure point: 4 unique steps.
    assert sorted(m.time_step for m in steps) == [1, 2, 3, 4]


def test_launcher_gives_up_after_max_restarts():
    router = MessageRouter(1)
    specs = build_specs(2, fail_ids=(0,))

    config = HeatEquationConfig(nx=8, ny=8, num_steps=4)

    class AlwaysFailingClient(SimulationClient):
        def prepare_restart(self):
            super().prepare_restart()
            self.fail_at_step = 2  # keep failing on every attempt

    def factory(spec: ClientSpec) -> SimulationClient:
        return AlwaysFailingClient(
            client_id=spec.client_id,
            parameters=tuple(float(p) for p in spec.parameters),
            solver=HeatEquationSolver(config),
            router=router,
            num_time_steps=4,
            fail_at_step=spec.fail_at_step,
        )

    launcher = Launcher(factory, specs, LauncherConfig(max_concurrent_clients=2, max_restarts=1))
    report = launcher.run()
    assert report.clients_failed == 1
    assert report.clients_completed == 1
    assert report.restarts >= 1


def test_launcher_background_start_and_join():
    router = MessageRouter(1)
    specs = build_specs(3)
    launcher = Launcher(make_factory(router, num_steps=2, step_delay=0.005), specs,
                        LauncherConfig(max_concurrent_clients=2))
    launcher.start()
    with pytest.raises(RuntimeError):
        launcher.start()
    report = launcher.join(timeout=30.0)
    assert not launcher.running
    assert report.clients_completed == 3


def test_launcher_join_without_start_raises():
    router = MessageRouter(1)
    launcher = Launcher(make_factory(router), build_specs(1))
    with pytest.raises(RuntimeError):
        launcher.join()
