"""Tests of the experiment drivers at a very small scale.

These are integration tests of the paper's experiments (Figures 2-6, Tables
1-2, Appendix A), checking that each driver produces the expected structure
and that the paper's qualitative findings hold at the scaled configuration.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments import (
    format_rows,
    run_fig2_throughput,
    run_fig3_occurrences,
    run_fig4_quality,
    run_residency_experiment,
    run_table2,
)
from repro.experiments.common import default_scale
from repro.experiments.fig5_multigpu import run_fig5_multigpu
from repro.experiments.reporting import format_histogram, format_series
from repro.experiments.table2 import extrapolate_table2


@pytest.fixture(scope="module")
def micro_scale():
    """Tiny scale so the experiment drivers run in a few seconds each."""
    return replace(
        default_scale(),
        nx=10,
        ny=10,
        num_steps=8,
        num_simulations=8,
        series_sizes=(4, 4),
        hidden_sizes=(16, 16),
        buffer_capacity=24,
        buffer_threshold=6,
        validation_simulations=2,
        validation_interval=10,
        client_step_delay=0.001,
        inter_series_delay=0.05,
        batch_compute_delay=0.001,
        offline_io_delay_per_sample=0.0,
        max_concurrent_clients=3,
    )


def test_fig2_reservoir_outperforms_fifo_throughput(micro_scale):
    """Figure 2: the Reservoir sustains a higher throughput than FIFO/FIRO."""
    result = run_fig2_throughput(micro_scale)
    assert set(result.series) == {"fifo", "firo", "reservoir"}
    assert result.mean_throughput("reservoir") > result.mean_throughput("fifo")
    assert result.mean_throughput("reservoir") > result.mean_throughput("firo")
    # Reservoir's population reaches (close to) its capacity, FIFO's stays low.
    assert result.series["reservoir"].max_population >= micro_scale.buffer_capacity * 0.8
    assert result.series["fifo"].max_population <= micro_scale.buffer_capacity
    # Reservoir generates at least as many batches (sample repetition).
    assert result.series["reservoir"].total_batches >= result.series["fifo"].total_batches
    rows = result.summary_rows()
    assert len(rows) == 3
    assert isinstance(format_rows(rows, title="fig2"), str)


def test_fig3_occurrence_histograms(micro_scale):
    """Figure 3: samples are repeated a few times, more so with more ranks."""
    result = run_fig3_occurrences(micro_scale, gpu_counts=(1, 2))
    assert set(result.histograms) == {1, 2}
    for gpus, histogram in result.histograms.items():
        assert sum(histogram.values()) > 0
        assert all(occurrences >= 1 for occurrences in histogram)
    assert result.mean_occurrences[1] >= 1.0
    assert isinstance(format_histogram(result.histograms[1], title="1 GPU"), str)


def test_fig4_reservoir_generalizes_at_least_as_well_as_fifo(micro_scale):
    """Figure 4: FIFO's streamed ordering hurts validation; Reservoir does not."""
    result = run_fig4_quality(micro_scale, settings=("fifo", "reservoir", "offline"))
    assert set(result.curves) == {"fifo", "reservoir", "offline"}
    for curve in result.curves.values():
        assert curve.train_losses.size > 0
        assert np.isfinite(curve.best_val_loss)
    # The paper's qualitative finding: Reservoir validation loss is lower than
    # (or comparable to) FIFO's, which suffers from ordered streaming.
    assert result.best_val("reservoir") <= result.best_val("fifo") * 1.5
    rows = result.summary_rows()
    assert {row["setting"] for row in rows} == {"fifo", "reservoir", "offline"}


def test_fig5_reservoir_scales_with_gpus(micro_scale):
    """Table 1 / Figure 5: only the Reservoir increases throughput with more GPUs."""
    result = run_fig5_multigpu(micro_scale, gpu_counts=(1, 2), buffer_kinds=("fifo", "reservoir"))
    assert ("reservoir", 2) in result.curves
    reservoir_scaling = result.throughput_scaling("reservoir", (1, 2))
    fifo_scaling = result.throughput_scaling("fifo", (1, 2))
    assert reservoir_scaling > fifo_scaling * 0.9
    assert result.throughput("reservoir", 2) > result.throughput("fifo", 2)
    rows = result.summary_rows()
    assert len(rows) == 4


def test_table2_online_beats_offline_throughput(micro_scale):
    """Table 2 shape: online Reservoir throughput and MSE beat the offline baseline."""
    result = run_table2(
        replace(micro_scale, offline_io_delay_per_sample=0.002),
        offline_epochs=2,
        online_simulation_factor=2,
        num_ranks=1,
        offline_io_delay_per_sample=0.002,
    )
    assert result.online.unique_samples > result.offline.unique_samples
    assert result.online.throughput > result.offline.throughput
    assert result.throughput_ratio > 1.0
    rows = result.rows()
    assert [row["setting"] for row in rows] == ["offline", "online-reservoir"]


def test_residency_experiment_matches_appendix():
    result = run_residency_experiment(capacities=(16, 64), insertions_per_capacity=300)
    assert result.max_relative_error() < 0.15
    rows = result.summary_rows()
    assert len(rows) == 2


def test_table2_extrapolation_storage_and_ratio():
    extrapolation = extrapolate_table2()
    assert extrapolation.online_dataset_gb == pytest.approx(8000.0, rel=0.01)
    assert extrapolation.offline_dataset_gb == pytest.approx(100.0, rel=0.01)
    assert extrapolation.throughput_ratio > 3.0


def test_reporting_helpers():
    rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": float("nan")}]
    table = format_rows(rows, title="demo")
    assert "demo" in table and "a" in table
    assert format_rows([]) == "(empty table)"
    assert "no data" in format_series([], [], "empty")
    assert "(0.00s, 1.0)" in format_series([0.0], [1.0], "one")
