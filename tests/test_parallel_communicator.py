"""Tests for the thread communicator and SPMD executor."""

import numpy as np
import pytest

from repro.parallel.communicator import CommunicatorGroup
from repro.parallel.spmd import SPMDExecutor, SPMDFailure, run_spmd
from repro.utils.exceptions import CommunicatorError


def test_group_size_validation():
    with pytest.raises(CommunicatorError):
        CommunicatorGroup(0)


def test_send_recv_point_to_point():
    def main(comm):
        if comm.rank == 0:
            comm.send({"value": 42}, dest=1)
            return None
        return comm.recv(0)

    results = run_spmd(2, main)
    assert results[1] == {"value": 42}


def test_send_copies_numpy_arrays():
    def main(comm):
        if comm.rank == 0:
            data = np.ones(4)
            comm.send(data, dest=1)
            data[...] = -1  # mutation after send must not affect the receiver
            return None
        return comm.recv(0)

    results = run_spmd(2, main)
    assert np.array_equal(results[1], np.ones(4))


def test_invalid_rank_raises():
    comm = CommunicatorGroup(2).rank_communicators()[0]
    with pytest.raises(CommunicatorError):
        comm.send(1, dest=5)
    with pytest.raises(CommunicatorError):
        comm.recv(-1)


def test_bcast_from_nonzero_root():
    def main(comm):
        payload = f"hello-{comm.rank}" if comm.rank == 2 else None
        return comm.bcast(payload, root=2)

    assert run_spmd(3, main) == ["hello-2"] * 3


def test_gather_orders_by_rank():
    def main(comm):
        return comm.gather(comm.rank * 10, root=0)

    results = run_spmd(4, main)
    assert results[0] == [0, 10, 20, 30]
    assert results[1] is None


def test_scatter_distributes_values():
    def main(comm):
        values = [f"item-{i}" for i in range(comm.size)] if comm.rank == 1 else None
        return comm.scatter(values, root=1)

    assert run_spmd(3, main) == ["item-0", "item-1", "item-2"]


def test_scatter_wrong_length_raises():
    def main(comm):
        values = [1] if comm.rank == 0 else None
        return comm.scatter(values, root=0)

    with pytest.raises(SPMDFailure):
        run_spmd(2, main)


def test_allgather():
    def main(comm):
        return comm.allgather(comm.rank**2)

    results = run_spmd(4, main)
    assert all(r == [0, 1, 4, 9] for r in results)


def test_reduce_and_allreduce_sum():
    def main(comm):
        local = np.full(3, float(comm.rank + 1))
        reduced = comm.reduce(local, op="sum", root=0)
        all_reduced = comm.allreduce(local, op="sum")
        return reduced, all_reduced

    results = run_spmd(3, main)
    assert np.array_equal(results[0][0], np.full(3, 6.0))
    assert results[1][0] is None
    assert all(np.array_equal(r[1], np.full(3, 6.0)) for r in results)


@pytest.mark.parametrize("op,expected", [("max", 2.0), ("min", 0.0), ("prod", 0.0)])
def test_allreduce_other_ops(op, expected):
    def main(comm):
        return comm.allreduce(np.array(float(comm.rank)), op=op)

    results = run_spmd(3, main)
    assert all(float(r) == expected for r in results)


def test_allreduce_unknown_op():
    def main(comm):
        return comm.allreduce(np.array(1.0), op="median")

    with pytest.raises(SPMDFailure):
        run_spmd(2, main)


def test_sendrecv_ring_shift():
    def main(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        return comm.sendrecv(comm.rank, dest=right, source=left)

    results = run_spmd(4, main)
    assert results == [3, 0, 1, 2]


def test_split_workload_covers_range():
    def main(comm):
        return list(comm.split_workload(10))

    results = run_spmd(3, main)
    flattened = [item for chunk in results for item in chunk]
    assert flattened == list(range(10))
    assert max(len(c) for c in results) - min(len(c) for c in results) <= 1


def test_spmd_failure_collects_rank_errors():
    def main(comm):
        if comm.rank == 1:
            raise ValueError("boom")
        return comm.rank

    with pytest.raises(SPMDFailure) as excinfo:
        SPMDExecutor(3).run(main)
    assert 1 in excinfo.value.errors
    assert isinstance(excinfo.value.errors[1], ValueError)


def test_spmd_result_indexing():
    result = SPMDExecutor(2).run(lambda comm: comm.rank + 100)
    assert result[0] == 100 and result[1] == 101
    assert len(result) == 2
    assert result.elapsed >= 0.0
