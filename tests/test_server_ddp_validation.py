"""Tests for data-parallel gradient synchronisation and validation."""

import numpy as np
import pytest

from repro.nn import Adam, Linear, MLPConfig, MSELoss, Sequential, build_mlp
from repro.parallel.spmd import run_spmd
from repro.server.ddp import broadcast_parameters, parameters_in_sync, sync_gradients
from repro.server.validation import ValidationSet, Validator


def make_model(seed):
    return build_mlp(MLPConfig(in_features=4, hidden_sizes=(8,), out_features=2, seed=seed))


def test_broadcast_parameters_makes_replicas_identical():
    def main(comm):
        model = make_model(seed=comm.rank)  # deliberately different weights
        broadcast_parameters(model, comm, root=0)
        return model.state_dict()

    states = run_spmd(3, main)
    for state in states[1:]:
        for key in states[0]:
            assert np.allclose(states[0][key], state[key])


def test_sync_gradients_averages_across_ranks():
    rng = np.random.default_rng(0)
    data = [rng.random((6, 4)) for _ in range(2)]
    targets = [rng.random((6, 2)) for _ in range(2)]

    def main(comm):
        model = make_model(seed=0)
        loss = MSELoss()
        model.zero_grad()
        out = model.forward(data[comm.rank])
        loss.forward(out, targets[comm.rank])
        model.backward(loss.backward())
        sync_gradients(model, comm, average=True)
        return model.flat_gradients()

    grads = run_spmd(2, main)
    assert np.allclose(grads[0], grads[1])

    # Reference: average of the two single-rank gradients.
    reference = []
    for rank in range(2):
        model = make_model(seed=0)
        loss = MSELoss()
        model.zero_grad()
        loss.forward(model.forward(data[rank]), targets[rank])
        model.backward(loss.backward())
        reference.append(model.flat_gradients())
    assert np.allclose(grads[0], np.mean(reference, axis=0), atol=1e-10)


def test_ddp_training_equals_large_batch_training():
    """2-rank DDP with per-rank batch B equals single training on batch 2B."""
    rng = np.random.default_rng(1)
    inputs = rng.random((8, 4)).astype(np.float64)
    targets = rng.random((8, 2)).astype(np.float64)

    def ddp_main(comm):
        model = make_model(seed=0)
        optimizer = Adam(model.parameters(), lr=1e-3)
        loss = MSELoss()
        shard = slice(comm.rank * 4, (comm.rank + 1) * 4)
        for _ in range(5):
            model.zero_grad()
            loss.forward(model.forward(inputs[shard]), targets[shard])
            model.backward(loss.backward())
            sync_gradients(model, comm, average=True)
            optimizer.step()
        return model.state_dict()

    ddp_states = run_spmd(2, ddp_main)

    reference = make_model(seed=0)
    optimizer = Adam(reference.parameters(), lr=1e-3)
    loss = MSELoss()
    for _ in range(5):
        reference.zero_grad()
        loss.forward(reference.forward(inputs), targets)
        reference.backward(loss.backward())
        optimizer.step()

    for key, value in reference.state_dict().items():
        assert np.allclose(ddp_states[0][key], value, atol=1e-8)
        assert np.allclose(ddp_states[1][key], value, atol=1e-8)


def test_parameters_in_sync_detects_divergence():
    def main(comm):
        model = make_model(seed=0)
        in_sync_before = parameters_in_sync(model, comm)
        if comm.rank == 1:
            model.parameters()[0].data += 1.0
        return in_sync_before, parameters_in_sync(model, comm)

    results = run_spmd(2, main)
    assert all(before for before, _ in results)
    assert not any(after for _, after in results)


def test_validation_set_construction_and_validator():
    params = [np.array([1.0, 2.0, 3.0, 4.0, 5.0]), np.array([5.0, 4.0, 3.0, 2.0, 1.0])]
    times = [np.array([0.1, 0.2]), np.array([0.1, 0.2])]
    fields = [np.ones((2, 9)), np.zeros((2, 9))]
    dataset = ValidationSet.from_simulations(params, times, fields)
    assert dataset.num_samples == 4
    assert dataset.inputs.shape == (4, 6)
    assert dataset.targets.shape == (4, 9)

    class ZeroModel(Sequential):
        def forward(self, inputs):
            return np.zeros((inputs.shape[0], 9), dtype=np.float32)

    validator = Validator(dataset, batch_size=3)
    loss = validator.evaluate(ZeroModel())
    # Half the targets are ones, half zeros -> MSE = 0.5.
    assert loss == pytest.approx(0.5)


def test_validation_set_validation_errors():
    with pytest.raises(ValueError):
        ValidationSet(inputs=np.zeros((2, 3)), targets=np.zeros((3, 4)))
    with pytest.raises(ValueError):
        ValidationSet(inputs=np.zeros((0, 3)), targets=np.zeros((0, 4)))
    with pytest.raises(ValueError):
        Validator(ValidationSet(np.zeros((2, 3)), np.zeros((2, 4))), batch_size=0)


def test_validator_restores_training_mode():
    dataset = ValidationSet(np.zeros((4, 4), dtype=np.float32), np.zeros((4, 2), dtype=np.float32))
    rng = np.random.default_rng(0)
    model = Sequential(Linear(4, 2, rng=rng))
    model.train()
    Validator(dataset).evaluate(model)
    assert model.training
