"""Tests for the logging helpers and the weight initialisers."""

import logging

import numpy as np
import pytest

from repro.nn.init import (
    get_initializer,
    he_normal,
    he_uniform,
    lecun_normal,
    xavier_normal,
    xavier_uniform,
    zeros_init,
)
from repro.utils.logging import get_logger, set_verbosity


def test_get_logger_namespaced_and_handler_installed():
    logger = get_logger("unit-test")
    assert logger.name == "repro.unit-test"
    root = logging.getLogger("repro")
    assert root.handlers  # installed once
    # A second call must not add another handler.
    get_logger("unit-test-2")
    assert len(root.handlers) == 1


def test_set_verbosity_changes_root_level():
    set_verbosity(logging.DEBUG)
    assert logging.getLogger("repro").level == logging.DEBUG
    set_verbosity(logging.WARNING)
    assert logging.getLogger("repro").level == logging.WARNING


@pytest.mark.parametrize(
    "initializer,expected_std",
    [
        (he_normal, lambda fan_in, fan_out: np.sqrt(2.0 / fan_in)),
        (xavier_normal, lambda fan_in, fan_out: np.sqrt(2.0 / (fan_in + fan_out))),
        (lecun_normal, lambda fan_in, fan_out: np.sqrt(1.0 / fan_in)),
    ],
)
def test_normal_initializers_have_expected_scale(initializer, expected_std):
    rng = np.random.default_rng(0)
    fan_in, fan_out = 400, 300
    weights = initializer((fan_in, fan_out), rng)
    assert weights.shape == (fan_in, fan_out)
    assert weights.std() == pytest.approx(expected_std(fan_in, fan_out), rel=0.05)
    assert abs(weights.mean()) < 0.01


@pytest.mark.parametrize(
    "initializer,bound",
    [
        (he_uniform, lambda fan_in, fan_out: np.sqrt(6.0 / fan_in)),
        (xavier_uniform, lambda fan_in, fan_out: np.sqrt(6.0 / (fan_in + fan_out))),
    ],
)
def test_uniform_initializers_bounded(initializer, bound):
    rng = np.random.default_rng(1)
    fan_in, fan_out = 256, 128
    weights = initializer((fan_in, fan_out), rng)
    limit = bound(fan_in, fan_out)
    assert weights.min() >= -limit and weights.max() <= limit
    # Uniform distribution: std = limit / sqrt(3).
    assert weights.std() == pytest.approx(limit / np.sqrt(3.0), rel=0.05)


def test_zeros_init_and_registry():
    rng = np.random.default_rng(0)
    assert np.all(zeros_init((3, 4), rng) == 0.0)
    assert get_initializer("he_normal") is he_normal
    with pytest.raises(KeyError):
        get_initializer("orthogonal")
