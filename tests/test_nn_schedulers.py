"""Tests for the learning-rate schedulers."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    ConstantLR,
    CosineAnnealingLR,
    ExponentialLR,
    MultiStepLR,
    ReduceLROnPlateau,
    StepLR,
)
from repro.nn.module import Parameter


@pytest.fixture
def optimizer():
    return Adam([Parameter(np.zeros(3))], lr=1e-3)


def test_constant_lr(optimizer):
    scheduler = ConstantLR(optimizer)
    for _ in range(10):
        scheduler.step()
    assert optimizer.lr == pytest.approx(1e-3)


def test_step_lr_halves_every_period(optimizer):
    scheduler = StepLR(optimizer, step_size=100, gamma=0.5)
    for _ in range(99):
        scheduler.step()
    assert optimizer.lr == pytest.approx(1e-3)
    scheduler.step()
    assert optimizer.lr == pytest.approx(5e-4)
    for _ in range(100):
        scheduler.step()
    assert optimizer.lr == pytest.approx(2.5e-4)


def test_step_lr_respects_floor(optimizer):
    """The paper's schedule stops at 2.5e-4."""
    scheduler = StepLR(optimizer, step_size=10, gamma=0.5, min_lr=2.5e-4)
    for _ in range(1000):
        scheduler.step()
    assert optimizer.lr == pytest.approx(2.5e-4)


def test_step_lr_validation(optimizer):
    with pytest.raises(ValueError):
        StepLR(optimizer, step_size=0)
    with pytest.raises(ValueError):
        StepLR(optimizer, step_size=10, gamma=1.5)


def test_multistep_lr(optimizer):
    scheduler = MultiStepLR(optimizer, milestones=[3, 6], gamma=0.1)
    lrs = [scheduler.step() for _ in range(7)]
    assert lrs[1] == pytest.approx(1e-3)
    assert lrs[3] == pytest.approx(1e-4)
    assert lrs[6] == pytest.approx(1e-5)


def test_exponential_lr(optimizer):
    scheduler = ExponentialLR(optimizer, gamma=0.9)
    scheduler.step()
    scheduler.step()
    assert optimizer.lr == pytest.approx(1e-3 * 0.81)


def test_cosine_annealing_reaches_min(optimizer):
    scheduler = CosineAnnealingLR(optimizer, total_steps=50, min_lr=1e-5)
    for _ in range(50):
        scheduler.step()
    assert optimizer.lr == pytest.approx(1e-5)
    # Stays at the floor beyond total_steps.
    scheduler.step()
    assert optimizer.lr == pytest.approx(1e-5)


def test_cosine_annealing_monotone_decrease(optimizer):
    scheduler = CosineAnnealingLR(optimizer, total_steps=20)
    values = [scheduler.step() for _ in range(20)]
    assert all(b <= a + 1e-12 for a, b in zip(values, values[1:], strict=False))


def test_reduce_on_plateau(optimizer):
    scheduler = ReduceLROnPlateau(optimizer, factor=0.5, patience=2)
    # Improvement keeps the lr.
    for metric in (1.0, 0.9, 0.8):
        scheduler.step(metric)
    assert optimizer.lr == pytest.approx(1e-3)
    # Stagnation beyond patience halves it.
    for metric in (0.8, 0.8, 0.8, 0.8):
        scheduler.step(metric)
    assert optimizer.lr == pytest.approx(5e-4)


def test_reduce_on_plateau_requires_metric(optimizer):
    scheduler = ReduceLROnPlateau(optimizer)
    with pytest.raises(ValueError):
        scheduler.step()


def test_scheduler_state_dict_roundtrip(optimizer):
    scheduler = StepLR(optimizer, step_size=5, gamma=0.5, min_lr=1e-5)
    for _ in range(12):
        scheduler.step()
    state = scheduler.state_dict()

    fresh_optimizer = Adam([Parameter(np.zeros(3))], lr=1e-3)
    fresh = StepLR(fresh_optimizer, step_size=99, gamma=0.9)
    fresh.load_state_dict(state)
    assert fresh.step_size == 5
    assert fresh.last_step == 12
    assert fresh_optimizer.lr == pytest.approx(optimizer.lr)
