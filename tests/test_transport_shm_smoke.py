"""End-to-end smoke test: a tiny online study over the shm ring backend.

Same acceptance bar as the mp-backend smoke: clients as real OS processes
streaming packed batches through the shared-memory rings must train to
completion and deliver exactly the same sample counts as the in-process
backend — with no drops and no torn batches on the healthy path.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments.common import ExperimentScale, build_case, run_online_with_buffer


@pytest.fixture(scope="module")
def smoke_scale() -> ExperimentScale:
    return replace(
        ExperimentScale(),
        nx=8,
        ny=8,
        num_steps=8,
        num_simulations=2,
        hidden_sizes=(8, 8),
        buffer_capacity=32,
        buffer_threshold=4,
        client_step_delay=0.0,
        inter_series_delay=0.0,
        batch_compute_delay=0.0,
        max_concurrent_clients=2,
    )


def test_shm_study_trains_and_matches_inproc_sample_counts(smoke_scale):
    case = build_case(smoke_scale)
    expected_unique = smoke_scale.num_simulations * smoke_scale.num_steps

    shm_result = run_online_with_buffer(
        "fifo", scale=smoke_scale, case=case, use_series=False,
        transport="shm", transport_batch_size=4,
        ring_slots=8, ring_slot_bytes=16_384,
    )
    inproc_result = run_online_with_buffer(
        "fifo", scale=smoke_scale, case=case, use_series=False,
    )

    for result, label in ((shm_result, "shm"), (inproc_result, "inproc")):
        received = sum(s.samples_received for s in result.server.aggregator_stats)
        assert received == expected_unique, label
        assert result.launcher.clients_completed == smoke_scale.num_simulations, label
        assert result.launcher.clients_failed == 0, label
        assert np.isfinite(result.metrics.losses.final_training_loss), label

    assert shm_result.config_summary["transport"] == "shm"
    assert shm_result.launcher.total_steps_sent == inproc_result.launcher.total_steps_sent

    # Transport accounting: every unique time step plus the hello/finished
    # control messages, nothing dropped, nothing torn; the ring actually
    # carried traffic (a non-zero depth high-water mark on some rank).
    stats = shm_result.server.transport_stats
    assert stats.messages_routed == expected_unique + 2 * smoke_scale.num_simulations
    assert stats.dropped_messages == 0
    assert stats.torn_batches == 0
    assert stats.bytes_routed > 0
    assert stats.unresponsive_kills == 0
    assert stats.ring_depth_high_water
    assert max(stats.ring_depth_high_water.values()) >= 1


def test_shm_study_with_more_simulations_than_ring_slots(smoke_scale):
    """The slot table multiplexes an ensemble larger than the ring grid.

    Six simulations stream over a grid sized for two concurrent clients:
    clients lease a ring at connect, the lease recycles when the finished
    marker lands on every rank, and the study delivers exactly the inproc
    sample counts — the paper's client counts no longer size the segment.
    """
    scale = replace(smoke_scale, num_simulations=6, max_concurrent_clients=2)
    case = build_case(scale)
    expected_unique = scale.num_simulations * scale.num_steps

    shm_result = run_online_with_buffer(
        "fifo", scale=scale, case=case, use_series=False,
        transport="shm", transport_batch_size=4,
        ring_slots=8, ring_slot_bytes=16_384,
    )
    inproc_result = run_online_with_buffer(
        "fifo", scale=scale, case=case, use_series=False,
    )

    for result, label in ((shm_result, "shm"), (inproc_result, "inproc")):
        received = sum(s.samples_received for s in result.server.aggregator_stats)
        assert received == expected_unique, label
        assert result.launcher.clients_completed == scale.num_simulations, label
        assert result.launcher.clients_failed == 0, label

    stats = shm_result.server.transport_stats
    assert stats.messages_routed == expected_unique + 2 * scale.num_simulations
    assert stats.dropped_messages == 0
    assert stats.torn_batches == 0
