"""Tests for occurrence tracking and residency-time analysis."""

import numpy as np
import pytest

from repro.buffers.stats import (
    BufferStatistics,
    OccurrenceTracker,
    expected_residency_time,
    measure_residency_times,
)


def test_occurrence_tracker_counts():
    tracker = OccurrenceTracker()
    tracker.record(("a", 1))
    tracker.record(("a", 1))
    tracker.record(("b", 2))
    assert tracker.count(("a", 1)) == 2
    assert tracker.count(("missing", 0)) == 0
    assert tracker.num_unique == 2
    assert tracker.total_occurrences == 3
    assert tracker.max_occurrences() == 2
    assert tracker.mean_occurrences() == pytest.approx(1.5)


def test_occurrence_tracker_histogram():
    tracker = OccurrenceTracker()
    tracker.record_batch([("a", 0), ("b", 0), ("a", 0), ("c", 0), ("a", 0)])
    histogram = tracker.histogram()
    # a seen 3 times, b and c once each -> {1: 2, 3: 1}
    assert histogram == {1: 2, 3: 1}


def test_occurrence_tracker_empty():
    tracker = OccurrenceTracker()
    assert tracker.histogram() == {}
    assert tracker.max_occurrences() == 0
    assert tracker.mean_occurrences() == 0.0


def test_buffer_statistics_series():
    stats = BufferStatistics()
    stats.record(0.0, 10, unseen=5, throughput=100.0)
    stats.record(1.0, 20, unseen=8, throughput=200.0)
    stats.record(2.0, 30)
    times, sizes, unseen_sizes, throughputs = stats.as_arrays()
    assert times.tolist() == [0.0, 1.0, 2.0]
    assert sizes.tolist() == [10, 20, 30]
    assert unseen_sizes.tolist() == [5, 8, 30]  # unseen defaults to size
    assert stats.mean_population() == pytest.approx(20.0)
    assert stats.mean_throughput() == pytest.approx(150.0)  # NaN entries excluded


def test_expected_residency_time_formula():
    """Appendix A: E[residency] = n - 1."""
    assert expected_residency_time(10) == 9.0
    assert expected_residency_time(6000) == 5999.0
    with pytest.raises(ValueError):
        expected_residency_time(0)


@pytest.mark.parametrize("capacity", [8, 32, 128])
def test_measured_residency_matches_appendix_a(capacity):
    residencies = measure_residency_times(capacity, num_insertions=capacity * 400, seed=1)
    assert residencies.size > 0
    measured = residencies.mean()
    expected = expected_residency_time(capacity)
    # Monte-Carlo estimate: allow ~10% relative tolerance.
    assert measured == pytest.approx(expected, rel=0.10)


def test_measured_residency_geometric_distribution_shape():
    """The residency distribution is geometric with parameter 1/n."""
    capacity = 16
    residencies = measure_residency_times(capacity, num_insertions=capacity * 2000, seed=2)
    p_zero = np.mean(residencies == 0)
    assert p_zero == pytest.approx(1.0 / capacity, rel=0.2)


def test_measure_residency_validation():
    with pytest.raises(ValueError):
        measure_residency_times(0, 10)
    with pytest.raises(ValueError):
        measure_residency_times(10, 0)
