"""Gradient checks for layers, activations and losses."""

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    HuberLoss,
    L1Loss,
    LayerNorm,
    LeakyReLU,
    Linear,
    MSELoss,
    RelativeL2Loss,
    ReLU,
    Sequential,
    Sigmoid,
    Softplus,
    Tanh,
    gradient_check,
)
from repro.nn.activations import get_activation
from repro.nn.gradcheck import numerical_gradient


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_linear_forward_shape(rng):
    layer = Linear(5, 3, rng=rng)
    out = layer.forward(rng.random((7, 5)))
    assert out.shape == (7, 3)


def test_linear_accepts_single_vector(rng):
    layer = Linear(5, 3, rng=rng)
    out = layer.forward(rng.random(5))
    assert out.shape == (1, 3)


def test_linear_rejects_bad_input_size(rng):
    layer = Linear(5, 3, rng=rng)
    with pytest.raises(ValueError):
        layer.forward(rng.random((2, 4)))


def test_linear_backward_before_forward_raises(rng):
    layer = Linear(2, 2, rng=rng)
    with pytest.raises(RuntimeError):
        layer.backward(np.ones((1, 2)))


def test_linear_gradcheck(rng):
    model = Sequential(Linear(4, 6, rng=rng))
    x = rng.random((3, 4))
    y = rng.random((3, 6))
    gradient_check(model, MSELoss(), x, y)


def test_mlp_gradcheck_relu(rng):
    model = Sequential(Linear(3, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
    # Shift inputs away from the ReLU kink so finite differences are clean.
    x = rng.random((4, 3)) + 0.5
    y = rng.random((4, 2))
    gradient_check(model, MSELoss(), x, y)


@pytest.mark.parametrize("activation_cls", [Tanh, Sigmoid, Softplus, LeakyReLU])
def test_mlp_gradcheck_smooth_activations(rng, activation_cls):
    model = Sequential(Linear(3, 5, rng=rng), activation_cls(), Linear(5, 2, rng=rng))
    x = rng.standard_normal((4, 3))
    y = rng.standard_normal((4, 2))
    gradient_check(model, MSELoss(), x, y)


def test_layernorm_gradcheck(rng):
    model = Sequential(Linear(4, 6, rng=rng), LayerNorm(6), Linear(6, 2, rng=rng))
    x = rng.standard_normal((3, 4))
    y = rng.standard_normal((3, 2))
    gradient_check(model, MSELoss(), x, y, atol=1e-4, rtol=1e-3)


@pytest.mark.parametrize("loss_cls", [MSELoss, L1Loss, HuberLoss, RelativeL2Loss])
def test_loss_gradients_match_numerical(rng, loss_cls):
    loss = loss_cls()
    pred = rng.standard_normal((5, 4)) * 2.0
    target = rng.standard_normal((5, 4))

    def scalar(p):
        return loss_cls().forward(p, target)

    loss.forward(pred, target)
    analytic = loss.backward()
    numerical = numerical_gradient(scalar, pred.copy())
    assert np.allclose(analytic, numerical, atol=1e-5)


def test_losses_reject_shape_mismatch():
    with pytest.raises(ValueError):
        MSELoss().forward(np.zeros((2, 3)), np.zeros((3, 2)))


def test_mse_loss_value():
    loss = MSELoss()
    value = loss.forward(np.array([[1.0, 2.0]]), np.array([[0.0, 0.0]]))
    assert value == pytest.approx(2.5)


def test_huber_behaves_quadratic_then_linear():
    loss = HuberLoss(delta=1.0)
    small = loss.forward(np.array([[0.5]]), np.array([[0.0]]))
    assert small == pytest.approx(0.125)
    large = loss.forward(np.array([[10.0]]), np.array([[0.0]]))
    assert large == pytest.approx(0.5 + 9.0)


def test_relu_masks_negative_values():
    relu = ReLU()
    out = relu.forward(np.array([[-1.0, 2.0]]))
    assert np.array_equal(out, np.array([[0.0, 2.0]]))
    grad = relu.backward(np.array([[5.0, 5.0]]))
    assert np.array_equal(grad, np.array([[0.0, 5.0]]))


def test_sigmoid_stable_for_large_inputs():
    sig = Sigmoid()
    out = sig.forward(np.array([[-1000.0, 1000.0]]))
    assert np.all(np.isfinite(out))
    assert out[0, 0] == pytest.approx(0.0, abs=1e-12)
    assert out[0, 1] == pytest.approx(1.0, abs=1e-12)


def test_get_activation_lookup_and_error():
    assert isinstance(get_activation("relu"), ReLU)
    with pytest.raises(KeyError):
        get_activation("does-not-exist")


def test_dropout_identity_in_eval_mode(rng):
    dropout = Dropout(0.5, rng=rng)
    dropout.eval()
    x = rng.random((4, 4))
    assert np.array_equal(dropout.forward(x), x)


def test_dropout_preserves_expectation(rng):
    dropout = Dropout(0.5, rng=rng)
    x = np.ones((200, 200))
    out = dropout.forward(x)
    # Inverted dropout: E[out] == x.
    assert out.mean() == pytest.approx(1.0, rel=0.05)


def test_dropout_invalid_probability():
    with pytest.raises(ValueError):
        Dropout(1.0)
