"""Tests for the simulated cluster resources and batch scheduler."""

import pytest

from repro.cluster import (
    AllocationPolicy,
    BatchScheduler,
    ClusterSpec,
    Job,
    JobState,
    NodeSpec,
    Partition,
)
from repro.cluster.resources import jean_zay_like
from repro.utils.exceptions import SchedulerError


def small_cluster(cpu_nodes=2, cores=4, gpu_nodes=1, gpus=2) -> ClusterSpec:
    spec = ClusterSpec()
    spec.add_partition(Partition("cpu", NodeSpec("cpu-node", cores=cores), cpu_nodes))
    spec.add_partition(Partition("gpu", NodeSpec("gpu-node", cores=cores, gpus=gpus), gpu_nodes))
    return spec


def test_node_and_partition_validation():
    with pytest.raises(ValueError):
        NodeSpec("bad", cores=0)
    with pytest.raises(ValueError):
        Partition("p", NodeSpec("n", cores=1), num_nodes=0)


def test_cluster_spec_totals_and_lookup():
    spec = small_cluster()
    assert spec.total_cores == 2 * 4 + 4
    assert spec.total_gpus == 2
    assert spec.partition("cpu").total_cores == 8
    with pytest.raises(KeyError):
        spec.partition("nope")
    with pytest.raises(ValueError):
        spec.add_partition(Partition("cpu", NodeSpec("n", cores=1), 1))


def test_jean_zay_like_defaults():
    spec = jean_zay_like(cpu_nodes=128, gpu_nodes=1)
    assert spec.partition("cpu").total_cores == 128 * 40
    assert spec.partition("gpu").total_gpus == 4


def test_job_validation():
    with pytest.raises(ValueError):
        Job(name="bad", partition="cpu", cores=0)
    with pytest.raises(ValueError):
        Job(name="bad", partition="cpu", cores=1, runtime=-1.0)


def test_submit_and_run_single_job():
    scheduler = BatchScheduler(small_cluster())
    job = scheduler.submit(Job(name="client", partition="cpu", cores=4, runtime=10.0))
    assert job.state == JobState.RUNNING  # resources were free
    completed = scheduler.advance(10.0)
    assert completed == [job]
    assert job.state == JobState.COMPLETED
    assert job.end_time == pytest.approx(10.0)


def test_submit_unknown_partition_or_oversized_job():
    scheduler = BatchScheduler(small_cluster())
    with pytest.raises(SchedulerError):
        scheduler.submit(Job(name="x", partition="bigmem", cores=1))
    with pytest.raises(SchedulerError):
        scheduler.submit(Job(name="x", partition="cpu", cores=1000))


def test_jobs_queue_when_resources_busy():
    scheduler = BatchScheduler(small_cluster(cpu_nodes=1, cores=4))
    first = scheduler.submit(Job(name="a", partition="cpu", cores=4, runtime=5.0))
    second = scheduler.submit(Job(name="b", partition="cpu", cores=4, runtime=5.0))
    assert first.state == JobState.RUNNING
    assert second.state == JobState.PENDING
    scheduler.advance(5.0)
    assert second.state == JobState.RUNNING
    assert second.wait_time == pytest.approx(5.0)
    scheduler.advance(5.0)
    assert second.state == JobState.COMPLETED


def test_gpu_accounting():
    scheduler = BatchScheduler(small_cluster())
    a = scheduler.submit(Job(name="train-a", partition="gpu", cores=1, gpus=2, runtime=4.0))
    b = scheduler.submit(Job(name="train-b", partition="gpu", cores=1, gpus=1, runtime=4.0))
    assert a.state == JobState.RUNNING
    assert b.state == JobState.PENDING  # only 2 GPUs in the partition
    scheduler.advance(4.0)
    assert b.state == JobState.RUNNING


def test_fifo_blocks_behind_large_job_but_backfill_does_not():
    # FIFO: a large pending job blocks later small ones.
    fifo = BatchScheduler(small_cluster(cpu_nodes=1, cores=4), policy=AllocationPolicy.FIFO)
    fifo.submit(Job(name="big-running", partition="cpu", cores=3, runtime=10.0))
    fifo.submit(Job(name="big-pending", partition="cpu", cores=4, runtime=1.0))
    small_fifo = fifo.submit(Job(name="small", partition="cpu", cores=1, runtime=1.0))
    assert small_fifo.state == JobState.PENDING

    backfill = BatchScheduler(small_cluster(cpu_nodes=1, cores=4), policy=AllocationPolicy.BACKFILL)
    backfill.submit(Job(name="big-running", partition="cpu", cores=3, runtime=10.0))
    backfill.submit(Job(name="big-pending", partition="cpu", cores=4, runtime=1.0))
    small_backfill = backfill.submit(Job(name="small", partition="cpu", cores=1, runtime=1.0))
    assert small_backfill.state == JobState.RUNNING


def test_cancel_pending_and_running_jobs():
    scheduler = BatchScheduler(small_cluster(cpu_nodes=1, cores=4))
    running = scheduler.submit(Job(name="a", partition="cpu", cores=4, runtime=100.0))
    pending = scheduler.submit(Job(name="b", partition="cpu", cores=4, runtime=1.0))
    scheduler.cancel(pending.job_id)
    assert pending.state == JobState.CANCELLED
    scheduler.cancel(running.job_id)
    assert running.state == JobState.CANCELLED
    assert scheduler.utilization("cpu") == 0.0


def test_fail_running_job_releases_resources():
    scheduler = BatchScheduler(small_cluster(cpu_nodes=1, cores=4))
    job = scheduler.submit(Job(name="a", partition="cpu", cores=4, runtime=100.0))
    scheduler.fail(job.job_id)
    assert job.state == JobState.FAILED
    assert scheduler.stats.failed == 1
    next_job = scheduler.submit(Job(name="b", partition="cpu", cores=4, runtime=1.0))
    assert next_job.state == JobState.RUNNING
    with pytest.raises(SchedulerError):
        scheduler.fail(job.job_id)


def test_on_complete_callback_and_stats():
    completed_names = []
    scheduler = BatchScheduler(small_cluster())
    scheduler.submit(
        Job(name="cb", partition="cpu", cores=2, runtime=3.0,
            on_complete=lambda job: completed_names.append(job.name))
    )
    scheduler.run_until_idle()
    assert completed_names == ["cb"]
    assert scheduler.stats.completed == 1
    assert scheduler.stats.core_seconds == pytest.approx(6.0)


def test_run_until_idle_detects_stuck_state():
    scheduler = BatchScheduler(small_cluster(cpu_nodes=1, cores=4))
    # Occupy everything forever-ish, then cancel so pending job becomes startable.
    blocker = scheduler.submit(Job(name="blocker", partition="cpu", cores=4, runtime=5.0))
    waiter = scheduler.submit(Job(name="waiter", partition="cpu", cores=2, runtime=2.0))
    final_time = scheduler.run_until_idle()
    assert final_time == pytest.approx(7.0)
    assert blocker.state == JobState.COMPLETED and waiter.state == JobState.COMPLETED


def test_unknown_job_id_raises():
    scheduler = BatchScheduler(small_cluster())
    with pytest.raises(SchedulerError):
        scheduler.job(9999)
