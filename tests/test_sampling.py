"""Tests for the experimental-design samplers."""

import numpy as np
import pytest

from repro.sampling import (
    HaltonSampler,
    LatinHypercubeSampler,
    MonteCarloSampler,
    ParameterSpace,
    get_sampler,
)
from repro.sampling.base import HEAT_PARAMETER_SPACE, discrepancy_proxy
from repro.sampling.halton import halton_sequence, radical_inverse


@pytest.fixture
def unit_space():
    return ParameterSpace.uniform_box(0.0, 1.0, 3)


def test_parameter_space_validation():
    with pytest.raises(ValueError):
        ParameterSpace(lower=(0.0,), upper=(1.0, 2.0))
    with pytest.raises(ValueError):
        ParameterSpace(lower=(2.0,), upper=(1.0,))
    with pytest.raises(ValueError):
        ParameterSpace(lower=(), upper=())
    with pytest.raises(ValueError):
        ParameterSpace(lower=(0.0,), upper=(1.0,), names=("a", "b"))


def test_parameter_space_scale_and_contains():
    space = ParameterSpace(lower=(0.0, 10.0), upper=(1.0, 20.0))
    scaled = space.scale(np.array([[0.5, 0.5], [0.0, 1.0]]))
    assert np.allclose(scaled, [[0.5, 15.0], [0.0, 20.0]])
    assert space.contains(scaled).all()
    assert not space.contains(np.array([2.0, 15.0]))[0]


def test_heat_parameter_space_matches_paper():
    """The paper samples 5 temperatures uniformly in [100, 500] K."""
    assert HEAT_PARAMETER_SPACE.dimension == 5
    assert HEAT_PARAMETER_SPACE.lower == (100.0,) * 5
    assert HEAT_PARAMETER_SPACE.upper == (500.0,) * 5


@pytest.mark.parametrize("cls", [MonteCarloSampler, LatinHypercubeSampler, HaltonSampler])
def test_samples_inside_box(cls):
    space = ParameterSpace(lower=(100.0, -1.0), upper=(500.0, 1.0))
    samples = cls(space, seed=0).sample(64)
    assert samples.shape == (64, 2)
    assert space.contains(samples).all()


@pytest.mark.parametrize("cls", [MonteCarloSampler, LatinHypercubeSampler, HaltonSampler])
def test_sampler_reproducible_by_seed(cls, unit_space):
    a = cls(unit_space, seed=3).sample(16)
    b = cls(unit_space, seed=3).sample(16)
    assert np.array_equal(a, b)


@pytest.mark.parametrize("cls", [MonteCarloSampler, LatinHypercubeSampler])
def test_sampler_streams_differ_by_seed(cls, unit_space):
    a = cls(unit_space, seed=1).sample(16)
    b = cls(unit_space, seed=2).sample(16)
    assert not np.array_equal(a, b)


def test_sampler_successive_calls_continue_sequence(unit_space):
    sampler = MonteCarloSampler(unit_space, seed=0)
    first = sampler.sample(8)
    second = sampler.sample(8)
    combined = MonteCarloSampler(unit_space, seed=0).sample(16)
    assert np.allclose(np.vstack([first, second]), combined)
    assert sampler.num_drawn == 16


def test_sample_count_validation(unit_space):
    with pytest.raises(ValueError):
        MonteCarloSampler(unit_space).sample(0)


def test_latin_hypercube_stratification(unit_space):
    n = 20
    samples = LatinHypercubeSampler(unit_space, seed=0).sample(n)
    for dim in range(unit_space.dimension):
        strata = np.floor(samples[:, dim] * n).astype(int)
        assert sorted(strata.tolist()) == list(range(n))


def test_halton_radical_inverse_known_values():
    assert radical_inverse(1, 2) == pytest.approx(0.5)
    assert radical_inverse(2, 2) == pytest.approx(0.25)
    assert radical_inverse(3, 2) == pytest.approx(0.75)
    assert radical_inverse(1, 3) == pytest.approx(1.0 / 3.0)
    with pytest.raises(ValueError):
        radical_inverse(-1, 2)


def test_halton_sequence_dimension_limit():
    with pytest.raises(ValueError):
        halton_sequence(0, 4, 40)


def test_halton_unscrambled_is_deterministic(unit_space):
    a = HaltonSampler(unit_space, seed=1, scramble=False).sample(10)
    b = HaltonSampler(unit_space, seed=99, scramble=False).sample(10)
    assert np.array_equal(a, b)


def test_low_discrepancy_beats_monte_carlo():
    """Halton/LHS cover the unit box more evenly than Monte Carlo at small n."""
    space = ParameterSpace.uniform_box(0.0, 1.0, 2)
    n = 64
    mc = discrepancy_proxy(MonteCarloSampler(space, seed=5).sample(n))
    lhs = discrepancy_proxy(LatinHypercubeSampler(space, seed=5).sample(n))
    halton = discrepancy_proxy(HaltonSampler(space, seed=5).sample(n))
    assert lhs <= mc + 1e-9
    assert halton <= mc + 1e-9


def test_get_sampler_by_name(unit_space):
    assert isinstance(get_sampler("halton", unit_space), HaltonSampler)
    assert isinstance(get_sampler("latin_hypercube", unit_space), LatinHypercubeSampler)
    with pytest.raises(KeyError):
        get_sampler("sobol", unit_space)


def test_sampler_stream_iterator(unit_space):
    sampler = MonteCarloSampler(unit_space, seed=0)
    stream = sampler.stream()
    points = [next(stream) for _ in range(3)]
    assert all(p.shape == (3,) for p in points)
