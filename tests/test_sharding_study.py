"""Sharded serving tier: routing units, cluster placement, and end-to-end parity.

The acceptance bar of the scale-out work: a sharded study must be *invisible*
to the data contract.  Per-client sample counts match the single-server
in-process study exactly, nothing drops, and the PR 5 failure protocol —
kill, restart, resend, dedup — works per shard with the restarted client
returning to the shard that holds its message log.
"""

import time
from dataclasses import replace
from typing import Iterator, Tuple

import numpy as np
import pytest

from repro.buffers import FIFOBuffer
from repro.client.simulation_client import SimulationClient
from repro.cluster.resources import jean_zay_like
from repro.experiments.common import ExperimentScale, build_case, run_online_with_buffer
from repro.launcher.launcher import ClientSpec, Launcher, LauncherConfig
from repro.parallel.shm_ring import ShmRingTransport
from repro.parallel.transport import TransportStats
from repro.server.aggregator import DataAggregator
from repro.server.fault import HeartbeatMonitor, MessageLog
from repro.server.sharding import (
    HashRing,
    ShardedHeartbeatMonitor,
    ShardedTransport,
    aggregate_transport_stats,
    estimate_sharded_throughput,
    place_shards,
)
from repro.utils.exceptions import ConfigurationError

DEADLINE = 30.0


# ------------------------------------------------------------- stats folding
def _stats(messages, per_rank, kills=0):
    stats = TransportStats()
    stats.messages_routed = messages
    stats.bytes_routed = messages * 100
    stats.per_rank_messages = dict(per_rank)
    stats.ring_depth_high_water = {rank: 3 for rank in per_rank}
    stats.unresponsive_kills = kills
    return stats


def test_aggregate_transport_stats_rekeys_per_rank_maps_by_global_rank():
    total = aggregate_transport_stats(
        [_stats(10, {0: 6, 1: 4}), _stats(20, {0: 12, 1: 8}, kills=1)],
        ranks_per_shard=2,
        extra_kills=2,
    )
    assert total.messages_routed == 30
    assert total.bytes_routed == 3000
    # Shard 1's ranks land at global ranks 2 and 3 — no collision, the
    # aggregate still breaks down per aggregator thread.
    assert total.per_rank_messages == {0: 6, 1: 4, 2: 12, 3: 8}
    assert sorted(total.ring_depth_high_water) == [0, 1, 2, 3]
    assert total.unresponsive_kills == 3
    assert total.dropped_messages == 0
    assert total.torn_batches == 0


def test_sharded_transport_rejects_mismatched_geometry():
    shards = [
        ShmRingTransport(num_server_ranks=1, max_concurrent_clients=1,
                         ring_slots=2, ring_slot_bytes=1024)
        for _ in range(2)
    ]
    try:
        with pytest.raises(ConfigurationError):
            ShardedTransport(shards, HashRing(3))  # 2 transports, 3-shard ring
        with pytest.raises(ConfigurationError):
            ShardedTransport([], HashRing(1))
    finally:
        for shard in shards:
            shard.shutdown()


def test_sharded_heartbeat_monitor_routes_to_the_owning_shard():
    ring = HashRing(2)
    monitors = [HeartbeatMonitor(timeout=10.0), HeartbeatMonitor(timeout=10.0)]
    sharded = ShardedHeartbeatMonitor(ring, monitors)

    # Ids 0 and 7 live on different shards of the default ring.
    assert ring.shard_for(0) != ring.shard_for(7)
    sharded.touch(0, progress=1.0)
    sharded.touch(7, progress=2.0)
    sharded.mark_finished(7)

    assert monitors[ring.shard_for(0)].tracked_clients() == [0]
    assert monitors[ring.shard_for(7)].tracked_clients() == [7]
    assert not sharded.is_finished(0)
    assert sharded.is_finished(7)
    assert sharded.silence(0) is not None
    assert sharded.silence(7) is None  # finished clients are no longer watched
    assert sharded.tracked_clients() == [0, 7]


# --------------------------------------------------------- cluster placement
def test_place_shards_fills_the_gpu_partition_then_queues():
    cluster = jean_zay_like(gpu_nodes=1)  # one node, 4 V100s

    plan = place_shards(cluster, num_shards=4)
    assert all(p.partition == "gpu" for p in plan.placements)
    assert plan.concurrent_shards == 4

    # Six single-GPU shards on four GPUs: two queue behind the others.
    overfull = place_shards(jean_zay_like(gpu_nodes=1), num_shards=6)
    assert overfull.concurrent_shards == 4
    assert sum(1 for p in overfull.placements if not p.started) == 2


def test_estimate_sharded_throughput_saturates_each_shard():
    ring = HashRing(2)
    rates = {client_id: 10.0 for client_id in range(200)}
    offered_total = sum(rates.values())

    # Far below saturation: everything offered is served.
    low = estimate_sharded_throughput(ring, rates, per_shard_rate=5000.0)
    assert low.aggregate == pytest.approx(offered_total)

    # Deep saturation: each shard caps at the calibrated single-shard rate.
    high = estimate_sharded_throughput(ring, rates, per_shard_rate=100.0)
    assert high.aggregate == pytest.approx(200.0)

    # A cluster that can only host one shard caps the whole tier.
    capped = estimate_sharded_throughput(ring, rates, per_shard_rate=100.0,
                                         concurrent_shards=1)
    assert capped.aggregate == pytest.approx(100.0)


# ----------------------------------------------- end-to-end study parity (shm)
@pytest.fixture(scope="module")
def shard_scale() -> ExperimentScale:
    return replace(
        ExperimentScale(),
        nx=8,
        ny=8,
        num_steps=8,
        num_simulations=8,
        hidden_sizes=(8, 8),
        buffer_capacity=32,
        buffer_threshold=4,
        client_step_delay=0.0,
        inter_series_delay=0.0,
        batch_compute_delay=0.0,
        max_concurrent_clients=2,
    )


def test_sharded_shm_study_matches_single_server_inproc_exactly(shard_scale):
    """Acceptance: sharding changes where samples land, never how many."""
    case = build_case(shard_scale)
    expected_unique = shard_scale.num_simulations * shard_scale.num_steps
    assignment = HashRing(2).partition(range(shard_scale.num_simulations))
    assert all(assignment.values()), "scale must occupy both shards"

    sharded = run_online_with_buffer(
        "fifo", scale=shard_scale, case=case, use_series=False,
        transport="shm", transport_batch_size=4,
        ring_slots=8, ring_slot_bytes=16_384,
        num_shards=2,
    )
    single = run_online_with_buffer(
        "fifo", scale=shard_scale, case=case, use_series=False,
    )

    # Exact per-client parity with the single-server in-process study.
    assert sharded.launcher.per_client_steps == single.launcher.per_client_steps
    assert sharded.launcher.total_steps_sent == single.launcher.total_steps_sent
    for result, label in ((sharded, "sharded"), (single, "single")):
        received = sum(s.samples_received for s in result.server.aggregator_stats)
        assert received == expected_unique, label
        assert result.launcher.clients_completed == shard_scale.num_simulations, label
        assert result.launcher.clients_failed == 0, label
        assert np.isfinite(result.metrics.losses.final_training_loss), label

    # The merged result reports the shard dimension and the ring assignment.
    assert sharded.config_summary["num_shards"] == 2
    assert sharded.server.summary["num_shards"] == 2.0
    assert sharded.launcher.per_shard_clients == {
        shard: len(clients) for shard, clients in assignment.items()
    }
    assert sharded.launcher.per_shard_steps == {
        shard: len(clients) * shard_scale.num_steps
        for shard, clients in assignment.items()
    }

    # Cluster-level transport accounting: every unique step plus the
    # hello/finished control pair per client, nothing dropped, nothing torn.
    stats = sharded.server.transport_stats
    assert stats.messages_routed == expected_unique + 2 * shard_scale.num_simulations
    assert stats.dropped_messages == 0
    assert stats.torn_batches == 0
    assert stats.unresponsive_kills == 0
    assert sharded.server.duplicates_discarded == 0


# ----------------------------------------- kill + reconnect on a sharded tier
NUM_STEPS = 8
FIELD_SIZE = 16


class TinySolver:
    """Deterministic stand-in solver with a fixed per-step delay."""

    def __init__(self, step_delay: float = 0.01) -> None:
        self.step_delay = step_delay

    def iter_steps(self, params) -> Iterator[Tuple[int, float, np.ndarray]]:
        for step in range(1, NUM_STEPS + 1):
            time.sleep(self.step_delay)
            field = np.full(FIELD_SIZE, float(step), dtype=np.float32)
            yield step, step * 0.1, field


def test_killed_client_reconnects_to_its_own_shard_and_is_deduplicated():
    """Heartbeat kill + restart across the sharded front door.

    Client 7 (shard B on the default 2-shard ring) hangs mid-stream; the
    launcher watchdog kills it and the restarted process reconnects — through
    the deterministic ring — to the *same* shard, whose message log discards
    the resent prefix.  The other shard never sees a duplicate, and the
    cluster-level sample totals are unchanged.
    """
    ring = HashRing(2)
    client_ids = [0, 1, 7]  # ids 0/1 -> one shard, 7 -> the other
    assignment = ring.partition(client_ids)
    assert sorted(len(v) for v in assignment.values()) == [1, 2]
    hang_id = 7

    transports = [
        ShmRingTransport(num_server_ranks=1, max_concurrent_clients=2,
                         ring_slots=16, ring_slot_bytes=8192)
        for _ in range(2)
    ]
    router = ShardedTransport(transports, ring)
    monitors = [HeartbeatMonitor(timeout=0.5) for _ in range(2)]
    aggregators = []
    for shard, transport in enumerate(transports):
        aggregators.append(
            DataAggregator(
                rank=0,
                router=transport,
                buffer=FIFOBuffer(capacity=10 * NUM_STEPS * len(client_ids)),
                expected_clients=len(assignment[shard]),
                message_log=MessageLog(),
                heartbeat_monitor=monitors[shard],
                poll_timeout=0.02,
            )
        )
    sharded_monitor = ShardedHeartbeatMonitor(ring, monitors)

    def client_factory(spec: ClientSpec) -> SimulationClient:
        return SimulationClient(
            client_id=spec.client_id,
            parameters=(1.0, 2.0),
            solver=TinySolver(),
            router=router,
            num_time_steps=NUM_STEPS,
        )

    specs = [
        ClientSpec(
            client_id=client_id,
            parameters=np.asarray([1.0, 2.0]),
            hang_at_step=3 if client_id == hang_id else None,
        )
        for client_id in client_ids
    ]
    launcher = Launcher(
        client_factory,
        specs,
        LauncherConfig(client_mode="process", heartbeat_timeout=0.5, max_restarts=2),
        heartbeat_monitor=sharded_monitor,
        transport=router,
        shard_ring=ring,
    )

    for aggregator in aggregators:
        aggregator.start()
    try:
        report = launcher.run()
        deadline = time.monotonic() + DEADLINE
        while (not all(a.reception_complete for a in aggregators)
               and time.monotonic() < deadline):
            time.sleep(0.02)
    finally:
        for aggregator in aggregators:
            aggregator.stop()
        router.shutdown()

    # Exactly one kill and one restart; every client finished.
    assert report.unresponsive_kills == 1
    assert report.restarts == 1
    assert report.clients_completed == len(client_ids)
    assert report.clients_failed == 0
    assert router.stats.unresponsive_kills == 1
    assert report.per_shard_steps == {
        shard: len(clients) * NUM_STEPS for shard, clients in assignment.items()
    }

    # Dedup happened on the hanging client's shard and only there: the
    # restart reconnected to the same shard, so its message log caught the
    # resent prefix, and the cluster totals are exactly the unique counts.
    hang_shard = ring.shard_for(hang_id)
    for shard, aggregator in enumerate(aggregators):
        assert aggregator.reception_complete
        assert aggregator.stats.samples_received == len(assignment[shard]) * NUM_STEPS
        if shard == hang_shard:
            assert aggregator.stats.duplicates_discarded >= 1
        else:
            assert aggregator.stats.duplicates_discarded == 0
