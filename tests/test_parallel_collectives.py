"""Tests for the ring all-reduce and tree broadcast."""

import numpy as np
import pytest

from repro.parallel.collectives import ring_allreduce, tree_broadcast
from repro.parallel.spmd import SPMDFailure, run_spmd


@pytest.mark.parametrize("size", [1, 2, 3, 4, 5])
def test_ring_allreduce_matches_sum(size):
    vectors = [np.random.default_rng(i).random(23) for i in range(size)]
    expected = np.sum(vectors, axis=0)

    def main(comm):
        return ring_allreduce(comm, vectors[comm.rank])

    results = run_spmd(size, main)
    for result in results:
        assert np.allclose(result, expected)


@pytest.mark.parametrize("size", [2, 4])
def test_ring_allreduce_average(size):
    vectors = [np.full(7, float(rank)) for rank in range(size)]
    expected = np.mean(vectors, axis=0)

    def main(comm):
        return ring_allreduce(comm, vectors[comm.rank], average=True)

    for result in run_spmd(size, main):
        assert np.allclose(result, expected)


def test_ring_allreduce_vector_shorter_than_ranks():
    """Vectors with fewer elements than ranks exercise empty chunks."""
    size = 4

    def main(comm):
        return ring_allreduce(comm, np.array([float(comm.rank)]))

    for result in run_spmd(size, main):
        assert np.allclose(result, np.array([6.0]))


def test_ring_allreduce_rejects_matrices():
    def main(comm):
        return ring_allreduce(comm, np.zeros((2, 2)))

    with pytest.raises(SPMDFailure):
        run_spmd(2, main)


def test_ring_allreduce_single_rank_identity():
    def main(comm):
        return ring_allreduce(comm, np.array([1.0, 2.0]))

    assert np.allclose(run_spmd(1, main)[0], [1.0, 2.0])


@pytest.mark.parametrize("size,root", [(2, 0), (3, 1), (4, 3), (5, 2)])
def test_tree_broadcast_delivers_to_all(size, root):
    payload = {"weights": [1.0, 2.0, 3.0]}

    def main(comm):
        value = payload if comm.rank == root else None
        return tree_broadcast(comm, value, root=root)

    results = run_spmd(size, main)
    assert all(result == payload for result in results)


def test_tree_broadcast_numpy_payload():
    data = np.arange(10.0)

    def main(comm):
        value = data if comm.rank == 0 else None
        return tree_broadcast(comm, value, root=0)

    for result in run_spmd(4, main):
        assert np.array_equal(result, data)
