"""Fault-injection tests over the multi-process and TCP transport backends.

Covers the paper's failure protocol on real OS processes: a client process
killed mid-stream, duplicate time steps after its restart (deduplicated by
the server's :class:`MessageLog`), and full-queue push timeouts — plus the
socket equivalents (a connection torn mid-frame, reconnect-and-resend over
the front door, compressed frame round trips).  Every wait is
deadline-bounded so a regression fails fast instead of hanging the suite.
"""

import queue
import socket
import time

import numpy as np
import pytest

from repro.buffers import FIFOBuffer
from repro.client.api import ClientAPI
from repro.launcher.launcher import _fork_mp
from repro.parallel import framing
from repro.parallel.messages import TimeStepMessage
from repro.parallel.mp_transport import MultiprocessTransport
from repro.parallel.tcp_transport import TcpTransport
from repro.parallel.transport import MessageRouter, RouterClosed
from repro.server.aggregator import DataAggregator
from repro.server.fault import MessageLog
from repro.utils.constants import QUEUE_DROP_TIMEOUT

DEADLINE = 30.0  # generous cap: every blocking wait in this module fails by then

NUM_STEPS = 40
FIELD = np.arange(8, dtype=np.float32)


def stream_steps(transport, client_id, num_steps, step_delay=0.0, batch_size=1):
    """Run the three-call client contract, streaming ``num_steps`` messages."""
    api = ClientAPI(transport, client_id, send_batch_size=batch_size)
    api.init_communication(parameters=(1.0, 2.0), num_time_steps=num_steps, field_shape=FIELD.shape)
    for step in range(num_steps):
        api.send(step, step * 0.1, (1.0, 2.0), FIELD)
        if step_delay:
            time.sleep(step_delay)
    api.finalize_communication()


def wait_until(predicate, timeout=DEADLINE, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture
def transport():
    transport = MultiprocessTransport(num_server_ranks=1, max_queue_size=10_000)
    yield transport
    transport.shutdown()


def make_aggregator(transport, expected_clients=1):
    buffer = FIFOBuffer(capacity=10 * NUM_STEPS)
    aggregator = DataAggregator(
        rank=0,
        router=transport,
        buffer=buffer,
        expected_clients=expected_clients,
        message_log=MessageLog(),
        poll_timeout=0.02,
    )
    return aggregator, buffer


# ------------------------------------------------------- kill + restart path
def test_client_process_killed_mid_stream_then_restart_dedup(transport):
    """Kill a streaming client process; its restart resends everything and the
    server's message log discards every duplicate."""
    aggregator, _buffer = make_aggregator(transport)
    aggregator.start()
    try:
        process = _fork_mp().Process(
            target=stream_steps,
            args=(transport, 0, NUM_STEPS),
            kwargs={"step_delay": 0.01, "batch_size": 4},
            daemon=True,
        )
        process.start()
        # Let part of the stream arrive, then kill the client mid-stream.
        assert wait_until(lambda: aggregator.stats.samples_received >= 5), \
            "server never received the first samples"
        process.kill()
        process.join(DEADLINE)
        assert not process.is_alive()

        received_before_restart = aggregator.stats.samples_received
        assert received_before_restart < NUM_STEPS

        # Restart: the dead client's checkpoint died with it, so the restarted
        # run resends every step (plus hello/finished) for the server to dedup.
        restarted = _fork_mp().Process(target=stream_steps, args=(transport, 0, NUM_STEPS),
                                kwargs={"batch_size": 4}, daemon=True)
        restarted.start()
        restarted.join(DEADLINE)
        assert restarted.exitcode == 0

        assert wait_until(lambda: aggregator.reception_complete), \
            "ClientFinished never reached the aggregator"
    finally:
        aggregator.stop()

    # Every unique step was delivered exactly once; every resent duplicate of
    # the pre-kill prefix was discarded by the message log.
    assert aggregator.stats.samples_received == NUM_STEPS
    assert aggregator.stats.duplicates_discarded >= received_before_restart - 1
    assert aggregator.stats.duplicates_discarded < NUM_STEPS
    # A SIGKILL landing exactly mid-put may tear one in-flight buffer, which
    # the transport counts as a single dropped batch; more than that means
    # the accounting is wrong.
    assert transport.stats.dropped_messages <= 1


# ---------------------------------------------------------- full-queue drops
@pytest.mark.parametrize("backend", ["inproc", "mp"])
def test_full_queue_push_timeout_counts_dropped(backend):
    if backend == "inproc":
        transport = MessageRouter(1, max_queue_size=2)
    else:
        transport = MultiprocessTransport(1, max_queue_size=2)
    try:
        connection = transport.connect(client_id=0)
        message = TimeStepMessage(client_id=0, time_step=0, payload=FIELD)
        connection.send_to(0, message)
        connection.send_to(0, message)
        if backend == "mp":
            # multiprocessing queues report Full only once the feeder thread
            # has moved both buffers into the bounded pipe machinery.
            assert wait_until(lambda: transport.pending(0) == 2, timeout=5.0)

        began = time.monotonic()
        with pytest.raises(queue.Full):
            transport.push(0, message, timeout=QUEUE_DROP_TIMEOUT)
        assert time.monotonic() - began < DEADLINE  # timed out, did not hang
        assert transport.stats.dropped_messages == 1

        with pytest.raises(queue.Full):
            transport.push_many(0, [message, message], timeout=QUEUE_DROP_TIMEOUT)
        assert transport.stats.dropped_messages == 3  # whole batch dropped

        # Messages that did get through are not counted as dropped.
        assert transport.stats.messages_routed == 2
    finally:
        transport.shutdown()


@pytest.mark.parametrize("backend", ["inproc", "mp", "tcp"])
def test_push_after_close_counts_dropped(backend):
    if backend == "inproc":
        transport = MessageRouter(1)
    elif backend == "tcp":
        transport = TcpTransport(1)
    else:
        transport = MultiprocessTransport(1)
    try:
        connection = transport.connect(client_id=0)
        message = TimeStepMessage(client_id=0, time_step=0, payload=FIELD)
        connection.send_to(0, message)
        if backend == "tcp":
            # tcp accounts traffic at decode time in the server process, so
            # drain the delivered frame before sampling the counters.
            assert wait_until(lambda: bool(transport.poll_many(0, timeout=0.1)), timeout=5.0)
        transport.close()
        with pytest.raises(RouterClosed):
            connection.send_to(0, message)
        assert transport.stats.dropped_messages == 1
        assert transport.stats.messages_routed == 1
    finally:
        transport.shutdown()


# ----------------------------------------------- launcher process-mode path
def test_launcher_process_mode_restarts_failed_client(transport):
    """A client that dies mid-run in its own process is re-forked by the
    launcher; the rerun resends from step zero and the server dedups."""
    from repro.client.simulation_client import SimulationClient
    from repro.launcher.launcher import ClientSpec, Launcher, LauncherConfig

    class TinySolver:
        def iter_steps(self, params):
            for step in range(1, NUM_STEPS + 1):
                yield step, step * 0.1, FIELD

    def factory(spec):
        return SimulationClient(
            client_id=spec.client_id,
            parameters=(1.0, 2.0),
            solver=TinySolver(),
            router=transport,
            num_time_steps=NUM_STEPS,
            send_batch_size=4,
        )

    aggregator, _buffer = make_aggregator(transport)
    aggregator.start()
    try:
        specs = [ClientSpec(client_id=0, parameters=np.array([1.0, 2.0]),
                            fail_at_step=NUM_STEPS // 2)]
        launcher = Launcher(
            factory, specs,
            LauncherConfig(client_mode="process", max_restarts=2,
                process_join_timeout=DEADLINE),
        )
        report = launcher.run()
        assert report.clients_completed == 1
        assert report.clients_failed == 0
        assert report.restarts == 1
        assert report.per_client_steps[0] == NUM_STEPS
        assert wait_until(lambda: aggregator.reception_complete), \
            "restarted client never finished at the server"
    finally:
        aggregator.stop()

    # The failed attempt delivered a prefix that the restarted full run
    # duplicated; the message log discarded exactly that overlap.
    assert aggregator.stats.samples_received == NUM_STEPS
    assert aggregator.stats.duplicates_discarded > 0
    assert aggregator.stats.duplicates_discarded < NUM_STEPS


# -------------------------------------------- batching + checkpoint rewind
def test_checkpointed_restart_rewinds_below_client_buffered_steps():
    """With send batching, steps still buffered client-side at failure must be
    recomputed after a checkpointed restart — never silently skipped."""
    from repro.client.simulation_client import SimulationClient
    from repro.launcher.launcher import ClientSpec, Launcher, LauncherConfig

    transport = MessageRouter(num_server_ranks=2)

    class TinySolver:
        def iter_steps(self, params):
            for step in range(1, NUM_STEPS + 1):
                yield step, step * 0.1, FIELD

    def factory(spec):
        return SimulationClient(
            client_id=spec.client_id,
            parameters=(1.0, 2.0),
            solver=TinySolver(),
            router=transport,
            num_time_steps=NUM_STEPS,
            send_batch_size=8,  # a large undelivered tail when the fault fires
            checkpoint_enabled=True,
        )

    aggregators = []
    for rank in range(2):
        buffer = FIFOBuffer(capacity=10 * NUM_STEPS)
        aggregators.append(DataAggregator(rank=rank, router=transport, buffer=buffer,
                expected_clients=1, message_log=MessageLog(),
                poll_timeout=0.02))
    for aggregator in aggregators:
        aggregator.start()
    try:
        specs = [ClientSpec(client_id=0, parameters=np.array([1.0, 2.0]),
                            fail_at_step=NUM_STEPS - 3)]
        report = Launcher(factory, specs, LauncherConfig(max_restarts=1)).run()
        assert report.clients_completed == 1
        assert wait_until(lambda: all(a.reception_complete for a in aggregators))
    finally:
        for aggregator in aggregators:
            aggregator.stop()
        transport.shutdown()

    # Every step reached the server exactly once: the buffered tail was
    # recomputed after the restart instead of being skipped by the checkpoint.
    received = sum(a.stats.samples_received for a in aggregators)
    assert received == NUM_STEPS
    assert transport.stats.dropped_messages == 0


# ----------------------------------------------------- corrupt batch buffers
def test_corrupt_batch_buffer_is_dropped_not_fatal(transport):
    """A torn/garbage buffer on the rank queue (client killed mid-put) is
    counted as a drop and skipped; later batches still deliver."""
    transport._queues[0].put(b"garbage-not-a-packed-batch")
    message = TimeStepMessage(client_id=0, time_step=1, payload=FIELD)
    transport.push(0, message)

    assert wait_until(lambda: transport.pending(0) >= 1, timeout=5.0)
    received = []
    deadline = time.monotonic() + 5.0
    while len(received) < 1 and time.monotonic() < deadline:
        received.extend(transport.poll_many(0, timeout=0.1))
    assert received == [message]
    assert transport.stats.dropped_messages == 1


def test_buffered_records_do_not_pin_the_packed_batch(transport):
    """Aggregated samples never alias the wire buffer.

    The transport's deserialisation copies the payload block **once**
    (``unpack_many(..., copy_payloads=True)``); the aggregator then adopts
    the resulting views without further copies, so every record of the chunk
    shares one privately owned block — and none of them reference the packed
    transport buffer, which can be released immediately.
    """
    import numpy as np

    from repro.parallel.messages import pack_many, unpack_many

    aggregator, buffer = make_aggregator(transport)
    wire_buffer = pack_many(
        [TimeStepMessage(client_id=0, time_step=step, payload=FIELD)
            for step in range(4)]
    )
    batch = unpack_many(wire_buffer, copy_payloads=True)
    aggregator._handle_many(batch)
    records = buffer.get_batch(4, timeout=1.0)
    assert len(records) == 4
    wire = np.frombuffer(wire_buffer, dtype=np.uint8)
    for record in records:
        assert not np.shares_memory(record.target, wire)
    # One batched copy, not four: the records share a single adopted block.
    block = records[0].target.base
    assert block is not None
    assert all(record.target.base is block for record in records)


# ------------------------------------------------- columnar counter parity
def test_columnar_drain_keeps_dedup_and_drop_counters_identical(transport):
    """The vectorised dedup/liveness bookkeeping of the columnar path must
    count exactly like the per-message loop: same duplicates_discarded, same
    samples_received, same MessageLog totals, for the same resent stream."""
    from repro.parallel.messages import pack_many, unpack_columns, unpack_many

    steps = [
        TimeStepMessage(client_id=0, time_step=step, time_value=step * 0.1,
                        parameters=(1.0, 2.0), payload=FIELD)
        for step in range(20)
    ]
    resent = steps[:12]  # a restarted client resends a prefix
    per_record, _ = make_aggregator(transport)
    columnar, _ = make_aggregator(transport)

    per_record._handle_many(list(unpack_many(pack_many(steps), copy_payloads=True)))
    per_record._handle_many(list(unpack_many(pack_many(resent), copy_payloads=True)))
    columnar._handle_items([unpack_columns(pack_many(steps))])
    columnar._handle_items([unpack_columns(pack_many(resent))])

    assert columnar.stats.samples_received == per_record.stats.samples_received == 20
    assert columnar.stats.duplicates_discarded == per_record.stats.duplicates_discarded == 12
    assert columnar.stats.clients_seen == per_record.stats.clients_seen
    assert (columnar.message_log.duplicates_discarded
            == per_record.message_log.duplicates_discarded == 12)
    assert columnar.message_log.state() == per_record.message_log.state()


def test_columnar_drain_counts_partial_duplicates_per_key(transport):
    """A chunk mixing new and duplicate keys splits exactly like the loop
    (one duplicate counted per rejected key, the rest inserted)."""
    from repro.parallel.messages import pack_many, unpack_columns

    aggregator, buffer = make_aggregator(transport)
    first = [TimeStepMessage(client_id=1, time_step=s, payload=FIELD) for s in range(6)]
    overlap = [TimeStepMessage(client_id=1, time_step=s, payload=FIELD) for s in range(3, 9)]
    aggregator._handle_items([unpack_columns(pack_many(first))])
    aggregator._handle_items([unpack_columns(pack_many(overlap))])
    assert aggregator.stats.samples_received == 9
    assert aggregator.stats.duplicates_discarded == 3
    assert aggregator.message_log.duplicates_discarded == 3
    assert buffer.total_put == 9


# ------------------------------------------------------------ batched sends
def test_mp_round_trip_preserves_order_and_batches(transport):
    """A batched client conversation crosses the process boundary intact."""
    process = _fork_mp().Process(target=stream_steps, args=(transport, 3, 10),
        kwargs={"batch_size": 4}, daemon=True)
    process.start()
    process.join(DEADLINE)
    assert process.exitcode == 0

    received = []
    while True:
        chunk = transport.poll_many(0, max_messages=3, timeout=0.5)
        if not chunk:
            break
        assert len(chunk) <= 3  # poll budget respected across packed batches
        received.extend(chunk)
    # hello + 10 steps + finished, with time steps in send order.
    assert len(received) == 12
    steps = [m.time_step for m in received if isinstance(m, TimeStepMessage)]
    assert steps == list(range(10))
    assert transport.stats.messages_routed == 12
    # Client-side batching moved 10 steps in ceil(10/4) packed buffers, so the
    # channel saw fewer puts than messages (control messages travel alone).
    assert transport.stats.bytes_routed > 0


# -------------------------------------------------------------- tcp faults
@pytest.fixture
def tcp_transport():
    transport = TcpTransport(num_server_ranks=1, max_queue_size=10_000)
    yield transport
    transport.shutdown()


def test_tcp_client_killed_mid_stream_then_restart_dedup(tcp_transport):
    """Kill a client process mid-stream over a socket; the reconnecting
    restart resends everything and the message log discards the duplicates,
    leaving the dedup totals exactly as if nothing had died."""
    transport = tcp_transport
    aggregator, _buffer = make_aggregator(transport)
    aggregator.start()
    try:
        process = _fork_mp().Process(
            target=stream_steps,
            args=(transport, 0, NUM_STEPS),
            kwargs={"step_delay": 0.01, "batch_size": 4},
            daemon=True,
        )
        process.start()
        assert wait_until(lambda: aggregator.stats.samples_received >= 5), \
            "server never received the first samples"
        process.kill()
        process.join(DEADLINE)
        assert not process.is_alive()

        received_before_restart = aggregator.stats.samples_received
        assert received_before_restart < NUM_STEPS

        restarted = _fork_mp().Process(target=stream_steps, args=(transport, 0, NUM_STEPS),
                                       kwargs={"batch_size": 4}, daemon=True)
        restarted.start()
        restarted.join(DEADLINE)
        assert restarted.exitcode == 0

        assert wait_until(lambda: aggregator.reception_complete), \
            "ClientFinished never reached the aggregator"
    finally:
        aggregator.stop()

    # Dedup totals unchanged by the kill: every unique step exactly once,
    # every resent duplicate of the pre-kill prefix discarded.
    assert aggregator.stats.samples_received == NUM_STEPS
    assert aggregator.stats.duplicates_discarded >= received_before_restart - 1
    assert aggregator.stats.duplicates_discarded < NUM_STEPS
    # A SIGKILL landing inside one sendall may leave at most one torn frame
    # on the server side; nothing is silently dropped.
    assert transport.stats.torn_batches <= 1
    assert transport.stats.dropped_messages == 0
    # Both connections announced client 0's epoch through the handshake.
    assert 0 in transport.client_epochs()


def test_tcp_torn_frame_counted_not_fatal(tcp_transport):
    """A connection that dies inside a frame counts one torn batch; the front
    door and every later connection keep working."""
    transport = tcp_transport
    raw = socket.create_connection(transport.address, timeout=5.0)
    try:
        raw.sendall(framing.encode_hello(client_id=9, epoch=0))
        # Declare a 100-byte batch body but send only a fragment of it.
        header = framing.pack_header(framing.KIND_BATCH, 0, 0, 100, 100)
        raw.sendall(header + b"\x00" * 10)
    finally:
        raw.close()
    assert wait_until(lambda: transport.stats.torn_batches == 1, timeout=5.0), \
        "torn frame was never counted"

    # The front door is still alive: a healthy client streams normally.
    connection = transport.connect(client_id=1)
    message = TimeStepMessage(client_id=1, time_step=0, payload=FIELD)
    connection.send_to(0, message)
    received = []
    assert wait_until(
        lambda: bool(received) or bool(received.extend(transport.poll_many(0, timeout=0.1))),
        timeout=5.0,
    )
    assert received == [message]
    assert transport.stats.torn_batches == 1
    assert transport.stats.dropped_messages == 0


def test_tcp_protocol_violation_drops_connection(tcp_transport):
    """Garbage where a frame header should be counts one rejected frame and
    closes only the offending connection."""
    transport = tcp_transport
    raw = socket.create_connection(transport.address, timeout=5.0)
    try:
        raw.sendall(b"GET / HTTP/1.1\r\n\r\n")  # wrong magic, full header's worth
        raw.sendall(b"\x00" * framing.FRAME_HEADER_BYTES)
    finally:
        raw.close()
    assert wait_until(lambda: transport.stats.dropped_messages == 1, timeout=5.0), \
        "protocol violation was never counted"


@pytest.mark.parametrize("compression", [None, "zlib"])
def test_tcp_round_trip_is_byte_identical(compression):
    """Messages survive the socket + optional compression byte-identically
    (``TimeStepMessage.__eq__`` compares payload dtype and exact bytes)."""
    transport = TcpTransport(1, compression=compression)
    try:
        connection = transport.connect(client_id=2, batch_size=8)
        # Compressible payloads well past MIN_COMPRESS_BYTES so the zlib case
        # actually exercises the inflate path.
        sent = [
            TimeStepMessage(client_id=2, time_step=step, time_value=step * 0.1,
                            parameters=(1.0, 2.0),
                            payload=np.full(1024, step, dtype=np.float32))
            for step in range(8)
        ]
        for message in sent:
            connection.send_round_robin(message)
        connection.flush()

        received = []
        assert wait_until(
            lambda: len(received) >= len(sent)
            or bool(received.extend(transport.poll_many(0, max_messages=64, timeout=0.1))),
            timeout=5.0,
        ), "messages never arrived"
        assert received == sent
        if compression == "zlib":
            # The wire accounting reflects the compressed frame sizes.
            payload_bytes = sum(m.payload.nbytes for m in sent)
            assert transport.stats.bytes_routed < payload_bytes
    finally:
        transport.shutdown()


def test_tcp_frame_codec_round_trip_exact_bytes():
    """framing.encode/decode invert each other for every codec, bit-exactly."""
    from repro.parallel.messages import pack_many

    payload = pack_many(
        [TimeStepMessage(client_id=3, time_step=step,
                         payload=np.zeros(512, dtype=np.float32))
         for step in range(4)]
    )
    for compression in (None, "zlib"):
        frame = framing.encode_frame(payload, rank=0, compression=compression)
        kind, rank, decoded = framing.decode_frame(frame)
        assert (kind, rank) == (framing.KIND_BATCH, 0)
        assert decoded == payload
    compressed = framing.encode_frame(payload, rank=0, compression="zlib")
    assert len(compressed) < len(payload)  # the zero field actually shrank
