"""Property-based round-trip tests of the packed batch wire format.

For every :class:`Message` subclass, hypothesis generates random shapes,
dtypes and parameter tuples and asserts ``unpack_many(pack_many(msgs))``
reproduces the messages byte-for-byte — including empty parameter tuples,
empty payload fields and 0-step clients.  Re-packing the unpacked batch must
reproduce the exact same buffer (the format is canonical).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.parallel.messages import (
    ClientFinished,
    ClientHello,
    Heartbeat,
    Message,
    TimeStepMessage,
    WireFormatError,
    pack_many,
    pack_many_into,
    plan_many,
    unpack_many,
)

# Finite doubles survive the float64 parameter block bit-for-bit; NaN is
# excluded only because NaN != NaN would break the equality assertions.
finite_floats = st.floats(allow_nan=False, allow_infinity=True, width=64)
parameter_tuples = st.lists(finite_floats, min_size=0, max_size=8).map(tuple)
client_ids = st.integers(min_value=0, max_value=2**40)

#: The composite message strategies discard a large share of their draws for
#: min_size >= 1 lists, which can trip the filter_too_much health check on an
#: unlucky seed even though generation succeeds — suppress just that check.
_lenient = settings(max_examples=40, deadline=None,
                    suppress_health_check=[HealthCheck.filter_too_much,
        HealthCheck.too_slow])


@st.composite
def hello_messages(draw):
    return ClientHello(
        client_id=draw(client_ids),
        parameters=draw(parameter_tuples),
        num_time_steps=draw(st.integers(min_value=0, max_value=2**31)),
        field_shape=tuple(draw(st.lists(st.integers(0, 4096), max_size=4))),
        restart_count=draw(st.integers(min_value=0, max_value=64)),
    )


@st.composite
def time_step_messages(draw, dtype=np.float32):
    size = draw(st.integers(min_value=0, max_value=64))
    if np.issubdtype(np.dtype(dtype), np.floating):
        values = draw(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                    width=32), min_size=size, max_size=size))
    else:
        values = draw(st.lists(st.integers(-2**15, 2**15), min_size=size, max_size=size))
    return TimeStepMessage(
        client_id=draw(client_ids),
        time_step=draw(st.integers(min_value=0, max_value=2**31)),
        time_value=draw(finite_floats),
        parameters=draw(parameter_tuples),
        payload=np.asarray(values, dtype=dtype),
        sequence_number=draw(st.integers(min_value=0, max_value=2**31)),
    )


@st.composite
def finished_messages(draw):
    return ClientFinished(client_id=draw(client_ids), total_sent=draw(st.integers(0, 2**31)))


@st.composite
def heartbeat_messages(draw):
    return Heartbeat(client_id=draw(client_ids), timestamp=draw(finite_floats),
        progress=draw(finite_floats))


def any_message():
    return st.one_of(hello_messages(), time_step_messages(), finished_messages(),
        heartbeat_messages())


# ------------------------------------------------------------- per-subclass
@settings(max_examples=60, deadline=None)
@given(message=hello_messages())
def test_hello_round_trip(message):
    assert unpack_many(pack_many([message])) == [message]


@settings(max_examples=60, deadline=None)
@given(message=time_step_messages())
def test_time_step_round_trip_byte_for_byte(message):
    (restored,) = unpack_many(pack_many([message]))
    assert restored == message
    assert restored.payload.dtype == np.float32
    assert restored.payload.tobytes() == message.payload.tobytes()


@settings(max_examples=60, deadline=None)
@given(message=finished_messages())
def test_finished_round_trip(message):
    assert unpack_many(pack_many([message])) == [message]


@settings(max_examples=60, deadline=None)
@given(message=heartbeat_messages())
def test_heartbeat_round_trip(message):
    assert unpack_many(pack_many([message])) == [message]


# ------------------------------------------------------------ mixed batches
@settings(max_examples=40, deadline=None)
@given(messages=st.lists(any_message(), min_size=0, max_size=20))
def test_mixed_batch_round_trip_and_canonical_repack(messages):
    buffer = pack_many(messages)
    restored = unpack_many(buffer)
    assert restored == messages
    # The format is canonical: re-packing the unpacked batch reproduces the
    # exact buffer, so equality above really is byte-for-byte.
    assert pack_many(restored) == buffer


@settings(max_examples=20, deadline=None)
@given(messages=st.lists(time_step_messages(dtype=np.float64), min_size=1, max_size=8))
def test_non_float32_payloads_are_canonicalised(messages):
    """Random payload dtypes: the wire always carries float32 (client contract)."""
    restored = unpack_many(pack_many(messages))
    for out, original in zip(restored, messages, strict=True):
        assert out.payload.dtype == np.float32
        np.testing.assert_array_equal(out.payload, original.payload.astype(np.float32))


def test_zero_step_client_conversation_round_trips():
    """A client that produces no time steps still announces and finishes."""
    conversation = [
        ClientHello(client_id=9, parameters=(), num_time_steps=0, field_shape=()),
        ClientFinished(client_id=9, total_sent=0),
    ]
    assert unpack_many(pack_many(conversation)) == conversation


def test_empty_payload_and_empty_batch():
    empty = TimeStepMessage(client_id=1, payload=np.zeros(0, dtype=np.float32))
    assert unpack_many(pack_many([empty])) == [empty]
    assert unpack_many(pack_many([])) == []


def test_unpacked_payload_is_zero_copy_view():
    message = TimeStepMessage(client_id=0, payload=np.arange(32, dtype=np.float32))
    (restored,) = unpack_many(pack_many([message]))
    assert not restored.payload.flags.writeable  # view into the batch buffer
    assert restored.payload.base is not None


def test_2d_payload_is_flattened_like_the_client_api():
    message = TimeStepMessage(client_id=0, payload=np.ones((4, 4), dtype=np.float32))
    (restored,) = unpack_many(pack_many([message]))
    assert restored.payload.shape == (16,)


# -------------------------------------------------------- pack-into a buffer
@_lenient
@given(messages=st.lists(any_message(), min_size=0, max_size=20),
    offset=st.integers(min_value=0, max_value=64),
    slack=st.integers(min_value=0, max_value=32))
def test_pack_many_into_is_byte_identical_at_any_offset(messages, offset, slack):
    """Zero-copy packing writes exactly the ``pack_many`` bytes, wherever the
    caller points it inside a larger buffer (ring slots start mid-segment)."""
    reference = pack_many(messages)
    sentinel = 0xAB
    buf = bytearray([sentinel]) * (offset + len(reference) + slack)
    written = pack_many_into(messages, buf, offset=offset)
    assert written == len(reference) == plan_many(messages).nbytes
    assert bytes(buf[offset : offset + written]) == reference
    # Bytes outside the written window are untouched.
    assert all(b == sentinel for b in buf[:offset])
    assert all(b == sentinel for b in buf[offset + written :])


@_lenient
@given(messages=st.lists(any_message(), min_size=1, max_size=12),
    shortfall=st.integers(min_value=1, max_value=64))
def test_pack_many_into_rejects_undersized_buffer(messages, shortfall):
    need = plan_many(messages).nbytes
    buf = bytearray(max(need - shortfall, 0))
    with pytest.raises(ValueError, match="buffer"):
        pack_many_into(messages, buf)


@_lenient
@given(messages=st.lists(time_step_messages(), min_size=1, max_size=16),
    pieces=st.integers(min_value=2, max_value=4))
def test_split_runs_unpack_to_the_original_sequence(messages, pieces):
    """The ring transport splits oversized runs into sub-batches; packing the
    halves separately (the wraparound/slot-split case) must reproduce the
    original message sequence on concatenated unpack."""
    bounds = sorted({(i * len(messages)) // pieces for i in range(1, pieces)})
    chunks, start = [], 0
    for bound in [*bounds, len(messages)]:
        if bound > start:
            chunks.append(messages[start:bound])
            start = bound
    restored = []
    for chunk in chunks:
        buf = bytearray(plan_many(chunk).nbytes)
        nbytes = pack_many_into(chunk, buf)
        restored.extend(unpack_many(bytes(buf[:nbytes]), copy_payloads=True))
    assert restored == messages


@_lenient
@given(messages=st.lists(any_message(), min_size=0, max_size=16))
def test_copy_payloads_adopts_and_detaches_from_the_buffer(messages):
    """``copy_payloads=True`` returns equal messages whose payloads no longer
    reference the wire buffer (one shared privately owned block instead)."""
    buffer = pack_many(messages)
    borrowed = unpack_many(buffer)
    adopted = unpack_many(buffer, copy_payloads=True)
    assert adopted == borrowed == messages
    wire = np.frombuffer(buffer, dtype=np.uint8)
    for message in adopted:
        if isinstance(message, TimeStepMessage):
            assert not np.shares_memory(message.payload, wire)


def test_pack_many_into_writable_memoryview_target():
    """Ring slots hand out memoryviews, not bytearrays."""
    messages = [TimeStepMessage(client_id=3, time_step=1,
                                payload=np.arange(8, dtype=np.float32))]
    backing = bytearray(1024)
    view = memoryview(backing)[128:]
    written = pack_many_into(messages, view)
    assert bytes(view[:written]) == pack_many(messages)


# ------------------------------------------------------------------- errors
def test_unpack_rejects_bad_magic():
    buffer = pack_many([ClientFinished(client_id=0)])
    with pytest.raises(WireFormatError, match="magic"):
        unpack_many(b"XXXX" + buffer[4:])


def test_unpack_rejects_unknown_version():
    buffer = bytearray(pack_many([ClientFinished(client_id=0)]))
    buffer[4] = 99
    with pytest.raises(WireFormatError, match="version"):
        unpack_many(bytes(buffer))


def test_unpack_rejects_truncated_buffer():
    buffer = pack_many([TimeStepMessage(client_id=0,
                                        payload=np.ones(8, dtype=np.float32))])
    with pytest.raises(WireFormatError, match="truncated|too short"):
        unpack_many(buffer[: len(buffer) - 5])
    with pytest.raises(WireFormatError):
        unpack_many(buffer[:3])


def test_pack_rejects_unknown_message_type():
    class Rogue(Message):
        pass

    with pytest.raises(WireFormatError, match="Rogue"):
        pack_many([Rogue(client_id=0)])
