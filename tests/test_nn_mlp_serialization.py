"""Tests for the MLP factories and checkpoint serialization."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    MLPConfig,
    MSELoss,
    build_mlp,
    build_surrogate_mlp,
    load_checkpoint,
    save_checkpoint,
    state_dict_equal,
)
from repro.utils.exceptions import CheckpointError


def test_mlp_config_validation():
    with pytest.raises(ValueError):
        MLPConfig(in_features=0)
    with pytest.raises(ValueError):
        MLPConfig(hidden_sizes=(0,))
    with pytest.raises(ValueError):
        MLPConfig(dropout=1.5)


def test_build_mlp_shapes():
    config = MLPConfig(in_features=6, hidden_sizes=(32, 16), out_features=100, seed=1)
    model = build_mlp(config)
    out = model.forward(np.random.default_rng(0).random((4, 6)))
    assert out.shape == (4, 100)


def test_build_mlp_reproducible_by_seed():
    a = build_mlp(MLPConfig(in_features=4, hidden_sizes=(8,), out_features=3, seed=5))
    b = build_mlp(MLPConfig(in_features=4, hidden_sizes=(8,), out_features=3, seed=5))
    c = build_mlp(MLPConfig(in_features=4, hidden_sizes=(8,), out_features=3, seed=6))
    assert state_dict_equal(a.state_dict(), b.state_dict())
    assert not state_dict_equal(a.state_dict(), c.state_dict())


def test_surrogate_mlp_matches_paper_architecture():
    """Paper: input 6, two hidden layers of 256 ReLU, output = grid points."""
    model = build_surrogate_mlp(grid_points=1000, hidden_sizes=(256, 256), seed=0)
    sizes = [layer.in_features for layer in model.layers if hasattr(layer, "in_features")]
    outs = [layer.out_features for layer in model.layers if hasattr(layer, "out_features")]
    assert sizes == [6, 256, 256]
    assert outs == [256, 256, 1000]
    assert all(p.dtype == np.float32 for p in model.parameters())


def test_paper_scale_parameter_count():
    """The full-scale surrogate has hundreds of millions of parameters.

    The architecture described in the paper (6 -> 256 -> 256 -> 1e6) counts
    ~257M trainable parameters; the paper quotes 514M, which matches the same
    layer sizes counted in both weights and Adam first moments (or an output
    of 2e6 values).  We assert the analytic count of the described layers and
    that it lies in the same order of magnitude as the quoted figure.
    """
    expected = 6 * 256 + 256 + 256 * 256 + 256 + 256 * 1_000_000 + 1_000_000
    assert expected == 257_067_584
    assert 2.5e8 < expected < 5.2e8
    assert expected * 2 == pytest.approx(5.14e8, rel=0.01)


def test_checkpoint_roundtrip_model_only(tmp_path):
    model = build_mlp(MLPConfig(in_features=3, hidden_sizes=(8,), out_features=2, seed=0))
    path = save_checkpoint(tmp_path / "ckpt", model, metadata={"batches": 12})
    fresh = build_mlp(MLPConfig(in_features=3, hidden_sizes=(8,), out_features=2, seed=99))
    metadata = load_checkpoint(path, fresh)
    assert metadata["batches"] == 12
    assert state_dict_equal(model.state_dict(), fresh.state_dict())


def test_checkpoint_roundtrip_with_optimizer(tmp_path):
    rng = np.random.default_rng(0)
    model = build_mlp(MLPConfig(in_features=3, hidden_sizes=(8,), out_features=2, seed=0))
    optimizer = Adam(model.parameters(), lr=1e-3)
    loss = MSELoss()
    x, y = rng.random((16, 3)), rng.random((16, 2))
    for _ in range(5):
        model.zero_grad()
        loss.forward(model.forward(x), y)
        model.backward(loss.backward())
        optimizer.step()
    path = save_checkpoint(tmp_path / "ckpt", model, optimizer)

    fresh_model = build_mlp(MLPConfig(in_features=3, hidden_sizes=(8,), out_features=2, seed=7))
    fresh_optimizer = Adam(fresh_model.parameters(), lr=1e-3)
    load_checkpoint(path, fresh_model, fresh_optimizer)
    assert fresh_optimizer.step_count == optimizer.step_count

    # Continuing training from the checkpoint matches continuing the original.
    for mdl, opt in ((model, optimizer), (fresh_model, fresh_optimizer)):
        mdl.zero_grad()
        loss.forward(mdl.forward(x), y)
        mdl.backward(loss.backward())
        opt.step()
    assert state_dict_equal(model.state_dict(), fresh_model.state_dict(), atol=1e-12)


def test_load_checkpoint_missing_file(tmp_path):
    model = build_mlp(MLPConfig(in_features=3, hidden_sizes=(4,), out_features=2))
    with pytest.raises(CheckpointError):
        load_checkpoint(tmp_path / "missing.npz", model)


def test_load_checkpoint_without_optimizer_state(tmp_path):
    model = build_mlp(MLPConfig(in_features=3, hidden_sizes=(4,), out_features=2))
    path = save_checkpoint(tmp_path / "model-only", model)
    optimizer = Adam(model.parameters(), lr=1e-3)
    with pytest.raises(CheckpointError):
        load_checkpoint(path, model, optimizer)


def test_state_dict_equal_detects_differences():
    a = build_mlp(MLPConfig(in_features=3, hidden_sizes=(4,), out_features=2, seed=0))
    b = build_mlp(MLPConfig(in_features=3, hidden_sizes=(4,), out_features=2, seed=1))
    assert not state_dict_equal(a.state_dict(), b.state_dict())
    assert state_dict_equal(a.state_dict(), a.state_dict())
