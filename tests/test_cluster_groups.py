"""Tests for job groups and the client-series submitter."""


from repro.cluster import BatchScheduler, ClusterSpec, Job, JobGroup, JobState, NodeSpec, Partition
from repro.cluster.groups import SeriesSubmitter


def cluster(cores=8):
    spec = ClusterSpec()
    spec.add_partition(Partition("cpu", NodeSpec("cpu", cores=cores), 1))
    return spec


def client_job(name, cores=2, runtime=10.0):
    return Job(name=name, partition="cpu", cores=cores, runtime=runtime)


def test_job_group_status_flags():
    scheduler = BatchScheduler(cluster())
    group = JobGroup(name="g")
    group.add(scheduler.submit(client_job("a")))
    group.add(scheduler.submit(client_job("b")))
    assert group.num_running == 2
    assert not group.all_finished
    scheduler.run_until_idle()
    assert group.all_finished and group.all_completed


def test_series_submitter_runs_series_in_order():
    """Series i+1 only starts once series i completed (paper submission scheme)."""
    scheduler = BatchScheduler(cluster(cores=8))
    series = [
        [client_job(f"s0-{i}", cores=2, runtime=10.0) for i in range(4)],
        [client_job(f"s1-{i}", cores=2, runtime=10.0) for i in range(4)],
        [client_job(f"s2-{i}", cores=2, runtime=10.0) for i in range(2)],
    ]
    started_series = []
    submitter = SeriesSubmitter(scheduler, series, on_series_start=started_series.append)
    submitter.start()
    assert started_series == [0]
    assert submitter.current_series == 0

    # Advance through the first series.
    submitter.step(10.0)
    submitter.step(0.0)
    assert 1 in started_series
    # Second series runs.
    submitter.step(10.0)
    submitter.step(0.0)
    assert started_series == [0, 1, 2]
    submitter.step(10.0)
    assert submitter.finished
    assert scheduler.stats.completed == 10


def test_series_submitter_with_delay():
    scheduler = BatchScheduler(cluster(cores=8))
    series = [[client_job("a", runtime=5.0)], [client_job("b", runtime=5.0)]]
    submitter = SeriesSubmitter(scheduler, series, inter_series_delay=4.0)
    submitter.start()
    submitter.step(5.0)   # first series completes
    assert submitter.current_series == 0
    submitter.step(2.0)   # delay not yet elapsed
    assert submitter.current_series == 0
    submitter.step(3.0)   # delay elapsed, second series submitted
    assert submitter.current_series == 1
    submitter.step(5.0)
    assert submitter.finished


def test_series_submitter_concurrency_limited_by_resources():
    """Only as many clients run as the partition can host (inter-simulation bias)."""
    scheduler = BatchScheduler(cluster(cores=4))
    series = [[client_job(f"c{i}", cores=2, runtime=10.0) for i in range(4)]]
    submitter = SeriesSubmitter(scheduler, series)
    submitter.start()
    running = [job for group in submitter.groups for job in group.jobs
        if job.state == JobState.RUNNING]
    assert len(running) == 2  # 4 cores / 2 cores per client
    submitter.step(10.0)
    submitter.step(10.0)
    assert submitter.finished
