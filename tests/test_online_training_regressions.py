"""Regression tests for online-training data-loss and metric bugs.

Covers three bugs fixed together with the batched data path:

* a rank that drew a final (possibly partial) batch while the collective
  already agreed to stop used to silently discard those samples;
* the throughput meter's first window opened at the *completion* of the first
  batch, overestimating the first reported value by ~1/window;
* ``DataAggregator.stop()`` hung forever when the aggregator thread was
  blocked in a buffer insert on a full buffer.
"""

import time

import numpy as np
import pytest

from repro.buffers import FIFOBuffer
from repro.core.metrics import ThroughputMeter, TrainingMetrics, merge_worker_metrics
from repro.nn import Adam, MLPConfig, build_mlp
from repro.parallel.messages import TimeStepMessage
from repro.parallel.spmd import run_spmd
from repro.parallel.transport import MessageRouter
from repro.server.aggregator import DataAggregator
from repro.server.trainer import TrainerConfig, TrainingWorker
from repro.utils.timing import VirtualClock


def make_records(count, input_size=3, target_size=5, seed=0):
    rng = np.random.default_rng(seed)
    records = []
    from repro.buffers.base import SampleRecord

    for index in range(count):
        inputs = rng.random(input_size).astype(np.float32)
        target = (inputs.sum() * np.ones(target_size)).astype(np.float32)
        records.append(SampleRecord(inputs=inputs, target=target, source_id=0, time_step=index))
    return records


def time_step(client_id, step, size=6):
    return TimeStepMessage(
        client_id=client_id,
        time_step=step,
        time_value=step * 0.01,
        parameters=(100.0, 200.0, 300.0, 400.0, 500.0),
        payload=np.full(size, float(step), dtype=np.float32),
        sequence_number=step,
    )


# ------------------------------------------------------- partial final batch
def test_ddp_rank_trains_final_partial_batch_instead_of_discarding():
    """Samples drawn by a rank whose peers ran dry must still be trained.

    Rank 0 holds 6 samples and rank 1 only 4, with a batch size of 4.  On the
    second round rank 0 draws a partial batch of 2 while rank 1 draws nothing,
    so the collective agrees to stop — but rank 0's two samples were already
    consumed from its buffer and must be trained, not dropped.
    """
    per_rank_counts = {0: 6, 1: 4}

    def main(comm):
        buffer = FIFOBuffer(capacity=50)
        for record in make_records(per_rank_counts[comm.rank], seed=comm.rank):
            buffer.put(record)
        buffer.signal_reception_over()
        model = build_mlp(MLPConfig(in_features=3, hidden_sizes=(8,), out_features=5, seed=0))
        worker = TrainingWorker(
            rank=comm.rank,
            model=model,
            optimizer=Adam(model.parameters(), lr=1e-3),
            buffer=buffer,
            config=TrainerConfig(batch_size=4, get_timeout=5.0, validation_interval=0),
            comm=comm,
        )
        metrics = worker.run()
        return metrics.batches_trained, metrics.samples_trained, len(buffer)

    results = run_spmd(2, main)
    assert results[0] == (2, 6, 0)  # full batch + trained partial remainder
    assert results[1] == (1, 4, 0)
    # No consumed sample was lost across the study.
    assert sum(samples for _, samples, _ in results) == sum(per_rank_counts.values())


def test_single_rank_trains_partial_final_batch():
    buffer = FIFOBuffer(capacity=50)
    for record in make_records(7):
        buffer.put(record)
    buffer.signal_reception_over()
    model = build_mlp(MLPConfig(in_features=3, hidden_sizes=(8,), out_features=5, seed=0))
    worker = TrainingWorker(
        rank=0,
        model=model,
        optimizer=Adam(model.parameters(), lr=1e-3),
        buffer=buffer,
        config=TrainerConfig(batch_size=5, get_timeout=5.0, validation_interval=0),
    )
    metrics = worker.run()
    assert metrics.batches_trained == 2
    assert metrics.samples_trained == 7


# ------------------------------------------------------- first-window timing
class TickingClock:
    """Clock advancing a fixed interval on every observation."""

    def __init__(self, interval=0.1):
        self._clock = VirtualClock()
        self.interval = interval

    def now(self):
        self._clock.advance(self.interval)
        return self._clock.now()


def test_throughput_first_window_counts_all_intervals_when_started():
    """With start(), the first window spans `window` full batch intervals."""
    meter = ThroughputMeter(window=10, clock=TickingClock(0.1))
    meter.start()  # opens the window before the first batch runs
    for _ in range(20):
        meter.record_batch(10)
    assert len(meter.values) == 2
    # 100 samples over 10 intervals of 0.1 s -> 100 samples/s, same for both
    # windows: the first value is no longer ~11 % higher than the second.
    assert meter.values[0] == pytest.approx(100.0, rel=1e-6)
    assert meter.values[1] == pytest.approx(100.0, rel=1e-6)


def test_throughput_first_window_bias_without_start_is_documented_fallback():
    """Without start() the old first-window bias remains (fallback path)."""
    meter = ThroughputMeter(window=10, clock=TickingClock(0.1))
    for _ in range(20):
        meter.record_batch(10)
    # First window: 10 batches over 9 intervals (biased); second: 10 over 10.
    assert meter.values[0] == pytest.approx(100.0 / 0.9, rel=1e-6)
    assert meter.values[1] == pytest.approx(100.0, rel=1e-6)


def test_training_worker_starts_throughput_meter_before_first_batch():
    buffer = FIFOBuffer(capacity=50)
    for record in make_records(8):
        buffer.put(record)
    buffer.signal_reception_over()
    model = build_mlp(MLPConfig(in_features=3, hidden_sizes=(8,), out_features=5, seed=0))
    worker = TrainingWorker(
        rank=0,
        model=model,
        optimizer=Adam(model.parameters(), lr=1e-3),
        buffer=buffer,
        config=TrainerConfig(batch_size=4, get_timeout=5.0, validation_interval=0),
    )
    metrics = worker.run()
    # start() stamped the clock before the first batch completed.
    assert metrics.throughput.start_time is not None
    assert metrics.throughput.end_time > metrics.throughput.start_time


# ------------------------------------------------------ aggregator shutdown
def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def test_aggregator_stop_returns_promptly_when_buffer_full():
    """stop() must not hang when the thread waits for space in a full buffer."""
    router = MessageRouter(1)
    buffer = FIFOBuffer(capacity=2)
    aggregator = DataAggregator(
        rank=0, router=router, buffer=buffer, expected_clients=1,
        poll_timeout=0.01, put_retry_timeout=0.05,
    )
    aggregator.start()
    for step in range(1, 11):
        router.push(0, time_step(0, step))
    # The aggregator fills the buffer and then blocks waiting for space.
    assert wait_until(lambda: len(buffer) == 2)
    began = time.monotonic()
    aggregator.stop()
    elapsed = time.monotonic() - began
    assert elapsed < 5.0
    assert wait_until(lambda: not aggregator.running)
    assert aggregator.stats.samples_received == 2
    # Every sample not inserted is either counted as dropped (drained from the
    # transport before the stop) or still sits in the router queue.
    assert aggregator.stats.samples_dropped + router.pending(0) == 8
    assert len(buffer) == 2  # no training consumer ever ran


# ------------------------------------------------------------ metric naming
def test_merge_worker_metrics_reports_total_throughput_with_alias():
    def metrics_with(rank, throughput):
        metrics = TrainingMetrics(rank=rank)
        metrics.throughput.start_time = 0.0
        metrics.throughput.end_time = 10.0
        metrics.throughput.total_samples = int(throughput * 10)
        metrics.wall_time = 10.0
        return metrics

    merged = merge_worker_metrics([metrics_with(0, 100.0), metrics_with(1, 80.0)])
    assert merged["total_throughput"] == pytest.approx(180.0)
    # Deprecated alias kept for older readers of the summary dict.
    assert merged["mean_throughput"] == merged["total_throughput"]
