"""Tests for the FIFO and FIRO training buffers."""

import threading

import numpy as np
import pytest

from repro.buffers import FIFOBuffer, FIROBuffer, make_buffer
from repro.buffers.base import SampleRecord
from repro.utils.exceptions import BufferClosedError


def record(index: int) -> SampleRecord:
    return SampleRecord(
        inputs=np.array([float(index)], dtype=np.float32),
        target=np.array([float(index)], dtype=np.float32),
        source_id=index // 10,
        time_step=index % 10,
    )


def test_buffer_validation():
    with pytest.raises(ValueError):
        FIFOBuffer(capacity=0)
    with pytest.raises(ValueError):
        FIROBuffer(capacity=10, threshold=11)
    with pytest.raises(ValueError):
        FIROBuffer(capacity=10, threshold=-1)


def test_make_buffer_factory():
    assert isinstance(make_buffer("fifo", 10), FIFOBuffer)
    assert isinstance(make_buffer("firo", 10, threshold=2), FIROBuffer)
    with pytest.raises(KeyError):
        make_buffer("ring", 10)


def test_fifo_preserves_order():
    buffer = FIFOBuffer(capacity=10)
    for i in range(5):
        buffer.put(record(i))
    order = [buffer.get().inputs[0] for _ in range(5)]
    assert order == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_fifo_each_sample_seen_once():
    buffer = FIFOBuffer(capacity=100)
    for i in range(30):
        buffer.put(record(i))
    buffer.signal_reception_over()
    seen = []
    while True:
        item = buffer.get()
        if item is None:
            break
        seen.append(item.key())
    assert len(seen) == 30
    assert len(set(seen)) == 30
    assert buffer.exhausted


def test_fifo_try_put_respects_capacity():
    buffer = FIFOBuffer(capacity=2)
    assert buffer.try_put(record(0))
    assert buffer.try_put(record(1))
    assert not buffer.try_put(record(2))
    buffer.get()
    assert buffer.try_put(record(2))


def test_fifo_put_blocks_until_space():
    """A blocked producer resumes when the consumer frees a slot (back-pressure)."""
    buffer = FIFOBuffer(capacity=1)
    buffer.put(record(0))
    done = threading.Event()

    def producer():
        buffer.put(record(1), timeout=5.0)
        done.set()

    thread = threading.Thread(target=producer, daemon=True)
    thread.start()
    assert not done.wait(0.1)
    assert buffer.get() is not None
    assert done.wait(2.0)
    thread.join()


def test_fifo_get_timeout():
    buffer = FIFOBuffer(capacity=2)
    with pytest.raises(TimeoutError):
        buffer.get(timeout=0.05)


def test_get_batch_partial_when_exhausted():
    buffer = FIFOBuffer(capacity=10)
    for i in range(7):
        buffer.put(record(i))
    buffer.signal_reception_over()
    batch = buffer.get_batch(5)
    assert len(batch) == 5
    batch = buffer.get_batch(5)
    assert len(batch) == 2  # only two remained


def test_get_returns_none_when_exhausted_and_empty():
    buffer = FIFOBuffer(capacity=4)
    buffer.signal_reception_over()
    assert buffer.get(timeout=1.0) is None


def test_closed_buffer_raises_on_put_and_returns_none_on_get():
    buffer = FIFOBuffer(capacity=4)
    buffer.put(record(0))
    buffer.close()
    with pytest.raises(BufferClosedError):
        buffer.put(record(1))
    assert buffer.get(timeout=0.5) is None


def test_close_unblocks_waiting_consumer():
    buffer = FIFOBuffer(capacity=4)
    results = []

    def consumer():
        results.append(buffer.get(timeout=5.0))

    thread = threading.Thread(target=consumer, daemon=True)
    thread.start()
    buffer.close()
    thread.join(timeout=2.0)
    assert results == [None]


def test_firo_threshold_blocks_reads():
    buffer = FIROBuffer(capacity=20, threshold=5, seed=0)
    for i in range(5):
        buffer.put(record(i))
    # Population equals the threshold: reads must block.
    with pytest.raises(TimeoutError):
        buffer.get(timeout=0.05)
    buffer.put(record(5))
    assert buffer.get(timeout=1.0) is not None


def test_firo_threshold_released_at_end_of_reception():
    buffer = FIROBuffer(capacity=20, threshold=5, seed=0)
    for i in range(3):
        buffer.put(record(i))
    buffer.signal_reception_over()
    drained = [buffer.get() for _ in range(3)]
    assert all(item is not None for item in drained)
    assert buffer.get(timeout=0.5) is None


def test_firo_yields_each_sample_exactly_once():
    buffer = FIROBuffer(capacity=50, threshold=0, seed=1)
    keys = set()
    for i in range(40):
        buffer.put(record(i))
        keys.add(record(i).key())
    buffer.signal_reception_over()
    seen = []
    while True:
        item = buffer.get()
        if item is None:
            break
        seen.append(item.key())
    assert sorted(seen) == sorted(keys)


def test_firo_randomizes_order():
    buffer = FIROBuffer(capacity=100, threshold=0, seed=2)
    for i in range(60):
        buffer.put(record(i))
    buffer.signal_reception_over()
    order = []
    while True:
        item = buffer.get()
        if item is None:
            break
        order.append(item.inputs[0])
    assert order != sorted(order)


def test_snapshot_counters():
    buffer = FIROBuffer(capacity=10, threshold=2, seed=0)
    for i in range(5):
        buffer.put(record(i))
    buffer.get()
    snap = buffer.snapshot()
    assert snap["size"] == 4
    assert snap["capacity"] == 10
    assert snap["threshold"] == 2
    assert snap["total_put"] == 5
    assert snap["total_got"] == 1
    assert not snap["reception_over"]
