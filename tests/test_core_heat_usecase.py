"""Tests for the heat-equation use case wiring (factories, datasets, validation)."""

import numpy as np
import pytest

from repro.core.config import SurrogateArchitecture
from repro.core.heat_usecase import HeatSurrogateCase, HeatSurrogateSpec
from repro.offline.dataset import SimulationDataset
from repro.solvers.heat2d import HeatEquationConfig, HeatParameters


@pytest.fixture
def case():
    return HeatSurrogateCase(
        HeatSurrogateSpec(
            solver=HeatEquationConfig(nx=8, ny=8, num_steps=4),
            architecture=SurrogateArchitecture(hidden_sizes=(8,)),
            sampler="halton",
            seed=11,
        )
    )


def test_case_dimensions(case):
    assert case.field_size == 64
    assert case.input_size == 6
    assert case.solver_config.num_steps == 4


def test_model_factory_replicas_identical(case):
    a = case.model_factory()
    b = case.model_factory()
    for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters(), strict=True):
        assert np.array_equal(pa.data, pb.data)
    out = a.forward(np.zeros((2, 6), dtype=np.float32))
    assert out.shape == (2, 64)


def test_sample_parameters_within_paper_range(case):
    samples = case.sample_parameters(16)
    assert samples.shape == (16, 5)
    assert samples.min() >= 100.0 and samples.max() <= 500.0
    params = case.parameters_to_solver(samples[0])
    assert isinstance(params, HeatParameters)


def test_run_simulation_shapes(case):
    times, fields = case.run_simulation(np.array([300.0, 300.0, 300.0, 300.0, 300.0]))
    assert times.shape == (4,)
    assert fields.shape == (4, 64)
    assert fields.dtype == np.float32
    assert np.allclose(fields, 300.0, atol=1e-3)


def test_generate_validation_set_independent_of_training_design(case):
    validation = case.generate_validation_set(num_simulations=2)
    assert validation.num_samples == 2 * 4
    assert validation.inputs.shape == (8, 6)
    assert validation.targets.shape == (8, 64)
    # Validation parameters come from a shifted sampler stream: they must not
    # coincide with the first training parameters.
    training = case.sample_parameters(2)
    assert not np.allclose(validation.inputs[:1, :5], training[0])


def test_generate_store_roundtrip(case, tmp_path):
    store = case.generate_store(tmp_path / "store", num_simulations=3, workers=2)
    assert len(store) == 3
    dataset = SimulationDataset(store)
    assert len(dataset) == 12
    inputs, target = dataset[0]
    assert inputs.shape == (6,)
    assert target.shape == (64,)
    # Regeneration with explicit parameter vectors honours the given order.
    params = case.sample_parameters(2)
    store2 = case.generate_store(tmp_path / "store2", num_simulations=2,
        parameter_vectors=list(params), workers=1)
    stored = store2.simulations
    assert np.allclose(stored[0].parameters, params[0])
    assert np.allclose(stored[1].parameters, params[1])


def test_describe_contains_key_fields(case):
    description = case.describe()
    assert description["grid"] == "8x8"
    assert description["field_size"] == 64
    assert description["sampler"] == "halton"


def test_paper_scale_spec():
    spec = HeatSurrogateSpec.paper_scale()
    assert spec.solver.nx == 1000 and spec.solver.ny == 1000
    assert spec.solver.num_steps == 100
    assert tuple(spec.architecture.hidden_sizes) == (256, 256)
