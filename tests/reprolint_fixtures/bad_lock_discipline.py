"""Fixture: the mixed locked/unlocked mutation shape (POSITIVE, 3 findings).

Never imported — parsed by tests/test_reprolint_checkers.py only.
"""

import threading


class MixedCounter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.cache = {}

    def locked_increment(self) -> None:
        with self._lock:
            self.count += 1
            self.cache["last"] = self.count

    def racy_increment(self) -> None:
        self.count += 1  # finding: mutated under the lock elsewhere

    def racy_delete(self, key: str) -> None:
        del self.cache[key]  # finding: subscript delete outside the lock

    def racy_pop(self, key: str) -> None:
        self.cache.pop(key, None)  # finding: mutator call outside the lock
