"""Fixture: nested locks with one global order, plus legal reentrancy (NEGATIVE)."""

import threading


class OrderedLedger:
    def __init__(self) -> None:
        self._accounts_lock = threading.Lock()
        self._journal_lock = threading.Lock()
        self._state_lock = threading.Condition()
        self.balance = 0
        self.entries = 0

    def transfer(self) -> None:
        # Always accounts -> journal: a consistent order is acyclic.
        with self._accounts_lock:
            with self._journal_lock:
                self.balance += 1

    def audit(self) -> None:
        with self._accounts_lock:
            with self._journal_lock:
                self.entries += 1

    def wait_for_entries(self) -> None:
        # Re-acquiring a reentrant lock (Condition/RLock) is not a cycle.
        with self._state_lock:
            self._reenter()

    def _reenter(self) -> None:
        with self._state_lock:
            self._state_lock.notify_all()
