"""Fixture: every wire-layout drift shape (POSITIVE, 5 findings).

The exact bugs this rule exists for: a widened field without a bumped size
constant, native-alignment formats on the wire, pack arity drift (also via
the repo's method-alias idiom), and a header field pushed past its budget.
"""

import struct

# Field widened to q but the declared constant still says the old size (17).
_RECORD_HEADER = struct.Struct("<Bqq")
RECORD_HEADER_BYTES = 13  # finding: format packs 17 bytes

# finding: no byte-order prefix — native alignment differs across ABIs.
_NATIVE_TAG = struct.Struct("Bq")

_PAIR = struct.Struct("<qq")
pair_pack = _PAIR.pack


def write_record(buffer: bytearray) -> None:
    _RECORD_HEADER.pack_into(buffer, 0, 1, 2)  # finding: 2 values for 3 fields


def write_pair() -> bytes:
    return pair_pack(1, 2, 3)  # finding via alias: 3 values for 2 fields


# Offset family: _COUNT was widened to 16 bytes (two slots) but the budget
# constant was not bumped, so _TAIL's 8-byte field no longer fits.
_RING_HEAD = 0
_RING_COUNT = 8
_RING_TAIL = 24
RING_BYTES = 24  # finding: _RING_TAIL + 8 > 24
