"""Fixture: pragma-protocol misuse (POSITIVE: bad-pragma + unused-pragma).

A pragma without justification suppresses nothing (the defect it sits on is
still reported, plus ``bad-pragma``); a justified pragma matching no finding
is reported as ``unused-pragma`` so stale suppressions cannot accumulate.
"""

import threading


class Sloppy:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0

    def locked_increment(self) -> None:
        with self._lock:
            self.count += 1

    def racy_increment(self) -> None:
        self.count += 1  # reprolint: allow[lock-discipline]

    def fine(self) -> int:
        return self.count  # reprolint: allow[blocking-under-lock] -- stale suppression
