"""Fixture: consistent wire layout (NEGATIVE).

Mirrors the shapes in ``messages.py``/``shm_ring.py``: declared sizes match
``calcsize``, pack arity matches the format (directly and through method
aliases, including the tuple-bind idiom), and the offset family fits its
budget.  The small dense ``_T_*`` constants are message-type tags, not a
layout, and must not be mistaken for an offset family.
"""

import struct

_RECORD_HEADER = struct.Struct("<Bqq")
RECORD_HEADER_BYTES = 17

_PAIR = struct.Struct("<qq")
pair_pack = _PAIR.pack
load, store = _PAIR.unpack_from, _PAIR.pack_into

_T_HELLO = 0
_T_STEP = 1
_T_FINISHED = 2

_RING_HEAD = 0
_RING_COUNT = 8
_RING_TAIL = 16
RING_BYTES = 24


def write_record(buffer: bytearray) -> None:
    _RECORD_HEADER.pack_into(buffer, 0, 1, 2, 3)


def roundtrip_pair(buffer: bytearray) -> tuple:
    store(buffer, 0, 4, 5)
    data = pair_pack(1, 2)
    return data, load(buffer, 0)
