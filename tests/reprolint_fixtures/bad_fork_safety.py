"""Fixture: import-time synchronisation state (POSITIVE, 4 findings).

Everything below is duplicated into every forked client: a lock forked while
held stays held forever, the queue's internal state forks torn, the thread
does not exist in the child, and the shm handle leaks a mapping.
"""

import queue
import threading
from multiprocessing import shared_memory

_MODULE_LOCK = threading.Lock()  # finding
_WORK_QUEUE = queue.Queue()  # finding
_SEGMENT = shared_memory.SharedMemory(create=True, size=64)  # finding


class Worker:
    # Shared class attribute: one lock per *class*, cloned by fork.  The
    # dataclass ``field(default_factory=threading.Lock)`` idiom is the safe
    # per-instance spelling and is not flagged.
    _registry_lock = threading.Lock()  # finding
