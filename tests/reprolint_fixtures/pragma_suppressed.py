"""Fixture: a justified pragma suppresses its finding (clean after pragma).

Same defect shape as ``bad_lock_discipline.py``; the pragma documents why the
unlocked mutation is safe here, once on the flagged line and once on the
own-line form covering the line below it.
"""

import threading


class TornDown:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.cache = {}

    def locked_increment(self) -> None:
        with self._lock:
            self.count += 1
            self.cache["last"] = self.count

    def finalize(self) -> None:
        self.count += 1  # reprolint: allow[lock-discipline] -- called after every worker joined
        # reprolint: allow[lock-discipline] -- single-threaded teardown, workers already joined
        self.cache.clear()
