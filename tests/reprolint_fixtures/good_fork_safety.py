"""Fixture: per-instance synchronisation state only (NEGATIVE)."""

import queue
import threading
from dataclasses import dataclass, field

#: Plain data at module scope is fork-safe.
DEFAULT_TIMEOUT = 30.0


class Worker:
    def __init__(self) -> None:
        # Created per instance, post-fork: safe.
        self._lock = threading.Lock()
        self._queue = queue.Queue()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        self._queue.get()


@dataclass
class Monitor:
    # default_factory passes the callable: a fresh lock per instance, safe.
    timeout: float = 30.0
    _lock: threading.Lock = field(default_factory=threading.Lock)
