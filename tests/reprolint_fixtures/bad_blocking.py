"""Fixture: blocking calls while a lock is held (POSITIVE, 4 findings)."""

import queue
import threading
import time


class Wedge:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._queue = queue.Queue()
        self._worker = threading.Thread(target=lambda: None)

    def sleep_under_lock(self) -> None:
        with self._lock:
            time.sleep(0.1)  # finding: sleeps while every reader is parked

    def queue_get_under_lock(self) -> object:
        with self._lock:
            return self._queue.get()  # finding: the PR 2 mid-put wedge shape

    def queue_put_under_lock(self, item: object) -> None:
        with self._lock:
            self._queue.put(item)  # finding: blocks while the queue is full

    def join_under_lock(self) -> None:
        with self._lock:
            self._worker.join()  # finding: unbounded wait on another thread
