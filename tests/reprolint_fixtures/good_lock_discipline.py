"""Fixture: consistent lock discipline (NEGATIVE, no findings).

Covers the repo's conventions: construction-time writes in ``__init__``,
``*_locked`` caller-holds-it hooks, and attributes that are never locked.
"""

import threading


class ConsistentCounter:
    def __init__(self) -> None:
        self._lock = threading.Condition()
        self.count = 0
        self.cache = {}
        self.unguarded_stat = 0  # single-threaded: never locked anywhere

    def locked_increment(self) -> None:
        with self._lock:
            self._bump_locked()
            self.cache["last"] = self.count
            self._lock.notify_all()

    def _bump_locked(self) -> None:
        # Caller holds the lock (repo convention): counts as locked mutation.
        self.count += 1

    def single_threaded_bump(self) -> None:
        self.unguarded_stat += 1  # consistent: never mutated under a lock
