"""Fixture: non-blocking work under locks, blocking work outside (NEGATIVE).

Exercises every exemption: condition-variable waits on the held lock,
non-blocking queue variants, ``dict.get``/``str.join`` look-alikes, and
blocking calls made with no lock held.
"""

import queue
import threading
import time


class Disciplined:
    def __init__(self) -> None:
        self._lock = threading.Condition()
        self._queue = queue.Queue()
        self._items = []
        self._config = {}

    def wait_for_items(self) -> object:
        with self._lock:
            # Waiting on the held lock releases it: the CV protocol, exempt.
            self._lock.wait_for(lambda: self._items)
            return self._items.pop(0)

    def nonblocking_under_lock(self) -> None:
        with self._lock:
            value = self._config.get("key")  # dict.get: one positional arg
            label = ", ".join(["a", "b"])  # str.join: one positional arg
            try:
                self._queue.put(value, block=False)
                self._queue.get(timeout=0)
            except queue.Empty:
                pass
            self._items.append(label)
            self._lock.notify_all()

    def blocking_outside_lock(self) -> object:
        time.sleep(0.01)
        item = self._queue.get()
        with self._lock:
            self._items.append(item)
        return item
