"""Fixture: a lock-order cycle (POSITIVE).

``transfer`` takes A then B, ``refund`` takes B then A (via a helper call):
two threads interleaving these deadlock.
"""

import threading


class Ledger:
    def __init__(self) -> None:
        self._accounts_lock = threading.Lock()
        self._journal_lock = threading.Lock()
        self.balance = 0

    def transfer(self) -> None:
        with self._accounts_lock:
            with self._journal_lock:
                self.balance += 1

    def refund(self) -> None:
        with self._journal_lock:
            self._debit()

    def _debit(self) -> None:
        with self._accounts_lock:
            self.balance -= 1
