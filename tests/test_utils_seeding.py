"""Tests for the seeding utilities."""

import numpy as np

from repro.utils.seeding import (
    DEFAULT_SEED,
    SeedSequenceFactory,
    derive_rng,
    get_global_seed,
    set_global_seed,
)


def test_derive_rng_reproducible():
    a = derive_rng("component", 1, seed=42).random(5)
    b = derive_rng("component", 1, seed=42).random(5)
    assert np.array_equal(a, b)


def test_derive_rng_differs_across_tokens():
    a = derive_rng("component", 1, seed=42).random(5)
    b = derive_rng("component", 2, seed=42).random(5)
    assert not np.array_equal(a, b)


def test_derive_rng_differs_across_seeds():
    a = derive_rng("component", seed=1).random(5)
    b = derive_rng("component", seed=2).random(5)
    assert not np.array_equal(a, b)


def test_set_global_seed_changes_default_stream():
    set_global_seed(111)
    a = derive_rng("x").random(3)
    set_global_seed(222)
    b = derive_rng("x").random(3)
    set_global_seed(DEFAULT_SEED)
    assert not np.array_equal(a, b)
    assert get_global_seed() == DEFAULT_SEED


def test_factory_rng_reproducible():
    factory = SeedSequenceFactory(7)
    assert np.array_equal(factory.rng("a").random(4), SeedSequenceFactory(7).rng("a").random(4))


def test_factory_spawn_independent():
    factory = SeedSequenceFactory(7)
    child_a = factory.spawn("client", 0)
    child_b = factory.spawn("client", 1)
    assert child_a.seed != child_b.seed
    assert not np.array_equal(child_a.rng("x").random(4), child_b.rng("x").random(4))


def test_factory_integer_seed_deterministic_and_bounded():
    factory = SeedSequenceFactory(9)
    value = factory.integer_seed("sampler")
    assert value == SeedSequenceFactory(9).integer_seed("sampler")
    assert 0 <= value < 2**31 - 1
