"""Tests for the training worker (single rank, buffer-driven loop)."""

import numpy as np

from repro.buffers import FIFOBuffer, ReservoirBuffer
from repro.buffers.base import SampleRecord
from repro.nn import Adam, MLPConfig, StepLR, build_mlp
from repro.server.trainer import TrainerConfig, TrainingWorker
from repro.server.validation import ValidationSet, Validator


def make_records(count, input_size=3, target_size=5, seed=0):
    rng = np.random.default_rng(seed)
    records = []
    for index in range(count):
        inputs = rng.random(input_size).astype(np.float32)
        target = (inputs.sum() * np.ones(target_size)).astype(np.float32)
        records.append(SampleRecord(inputs=inputs, target=target, source_id=0, time_step=index))
    return records


def make_worker(buffer, max_batches=None, validator=None, batch_size=4,
                validation_interval=5, scheduler_steps=None):
    model = build_mlp(MLPConfig(in_features=3, hidden_sizes=(8,), out_features=5, seed=0))
    optimizer = Adam(model.parameters(), lr=1e-3)
    scheduler = None
    if scheduler_steps is not None:
        scheduler = StepLR(optimizer, step_size=scheduler_steps, gamma=0.5)
    config = TrainerConfig(
        batch_size=batch_size,
        validation_interval=validation_interval,
        max_batches=max_batches,
        get_timeout=5.0,
    )
    return TrainingWorker(
        rank=0,
        model=model,
        optimizer=optimizer,
        buffer=buffer,
        config=config,
        scheduler=scheduler,
        validator=validator,
    )


def test_worker_trains_until_buffer_exhausted():
    buffer = FIFOBuffer(capacity=200)
    for record in make_records(40):
        buffer.put(record)
    buffer.signal_reception_over()
    worker = make_worker(buffer, batch_size=8)
    metrics = worker.run()
    assert metrics.batches_trained == 5
    assert metrics.samples_trained == 40
    assert len(metrics.losses.train_losses) == 5
    assert metrics.wall_time > 0


def test_worker_respects_max_batches():
    buffer = ReservoirBuffer(capacity=50, threshold=0)
    for record in make_records(20):
        buffer.put(record)
    worker = make_worker(buffer, max_batches=7)
    metrics = worker.run()
    assert metrics.batches_trained == 7


def test_worker_loss_decreases_on_learnable_problem():
    buffer = ReservoirBuffer(capacity=200, threshold=0, seed=0)
    for record in make_records(100, seed=1):
        buffer.put(record)
    worker = make_worker(buffer, max_batches=150, batch_size=10)
    metrics = worker.run()
    early = np.mean(metrics.losses.train_losses[:10])
    late = np.mean(metrics.losses.train_losses[-10:])
    assert late < early


def test_worker_runs_validation_and_records_best():
    records = make_records(60, seed=2)
    buffer = FIFOBuffer(capacity=200)
    for record in records:
        buffer.put(record)
    buffer.signal_reception_over()
    inputs = np.stack([r.inputs for r in records[:10]])
    targets = np.stack([r.target for r in records[:10]])
    validator = Validator(ValidationSet(inputs, targets))
    worker = make_worker(buffer, validator=validator, batch_size=6, validation_interval=3)
    metrics = worker.run()
    assert len(metrics.losses.val_losses) >= 2
    assert np.isfinite(metrics.losses.best_validation_loss)
    assert metrics.losses.best_validation_loss <= metrics.losses.val_losses[0] + 1e-12


def test_worker_tracks_occurrences_and_population():
    buffer = ReservoirBuffer(capacity=30, threshold=0, seed=0)
    for record in make_records(10):
        buffer.put(record)
    worker = make_worker(buffer, max_batches=20, batch_size=5)
    metrics = worker.run()
    histogram = metrics.occurrence_histogram
    assert sum(histogram.values()) == 10  # every stored sample selected at least once
    assert sum(k * v for k, v in histogram.items()) == 20 * 5
    assert len(metrics.buffer_population.sizes) == 20


def test_worker_scheduler_decays_learning_rate():
    buffer = FIFOBuffer(capacity=200)
    for record in make_records(80):
        buffer.put(record)
    buffer.signal_reception_over()
    worker = make_worker(buffer, batch_size=4, scheduler_steps=10)
    initial_lr = worker.optimizer.lr
    worker.run()
    assert worker.optimizer.lr < initial_lr


def test_worker_throughput_meter_records_windows():
    buffer = FIFOBuffer(capacity=300)
    for record in make_records(120):
        buffer.put(record)
    buffer.signal_reception_over()
    worker = make_worker(buffer, batch_size=4)
    metrics = worker.run()
    # 30 batches with a window of 10 -> 3 throughput measurements.
    assert len(metrics.throughput.values) == 3
    assert metrics.throughput.mean_throughput() > 0
