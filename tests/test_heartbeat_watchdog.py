"""Heartbeat-driven unresponsive-client kill through the process launcher.

The paper's protocol: the server watches for unresponsive clients and asks
the launcher to properly kill and restart them.  Here the server side is the
:class:`HeartbeatMonitor` fed by the aggregator (any received message counts
as liveness) and the launcher side is the ``heartbeat_timeout`` watchdog in
process client mode: a client that stops making progress *without dying* —
the failure mode a runtime cap cannot catch promptly and process liveness
cannot catch at all — is killed, counted in
``TransportStats.unresponsive_kills``, restarted, and deduplicated.
"""

import time
from typing import Iterator, Tuple

import numpy as np

from repro.buffers import FIFOBuffer
from repro.client.simulation_client import SimulationClient
from repro.launcher.launcher import ClientSpec, Launcher, LauncherConfig
from repro.parallel.shm_ring import ShmRingTransport
from repro.server.aggregator import DataAggregator
from repro.server.fault import HeartbeatMonitor, MessageLog

NUM_STEPS = 8
FIELD_SIZE = 16
DEADLINE = 30.0


class TinySolver:
    """Deterministic stand-in solver: yields small fields with a step delay."""

    def __init__(self, step_delay: float = 0.01) -> None:
        self.step_delay = step_delay

    def iter_steps(self, params) -> Iterator[Tuple[int, float, np.ndarray]]:
        for step in range(1, NUM_STEPS + 1):
            time.sleep(self.step_delay)
            field = np.full(FIELD_SIZE, float(step), dtype=np.float32)
            yield step, step * 0.1, field


def make_harness(heartbeat_timeout, solver_delay=0.01, hang_at_step=None, max_restarts=2):
    """Transport + aggregator + single-client process launcher, wired up."""
    transport = ShmRingTransport(
        num_server_ranks=1, max_concurrent_clients=2, ring_slots=16, ring_slot_bytes=8192
    )
    buffer = FIFOBuffer(capacity=10 * NUM_STEPS)
    monitor = HeartbeatMonitor(timeout=heartbeat_timeout)
    aggregator = DataAggregator(
        rank=0,
        router=transport,
        buffer=buffer,
        expected_clients=1,
        message_log=MessageLog(),
        heartbeat_monitor=monitor,
        poll_timeout=0.02,
    )

    def client_factory(spec: ClientSpec) -> SimulationClient:
        return SimulationClient(
            client_id=spec.client_id,
            parameters=(1.0, 2.0),
            solver=TinySolver(step_delay=solver_delay),
            router=transport,
            num_time_steps=NUM_STEPS,
        )

    spec = ClientSpec(client_id=0, parameters=np.asarray([1.0, 2.0]), hang_at_step=hang_at_step)
    launcher = Launcher(
        client_factory,
        [spec],
        LauncherConfig(
            client_mode="process",
            heartbeat_timeout=heartbeat_timeout,
            max_restarts=max_restarts,
        ),
        heartbeat_monitor=monitor,
        transport=transport,
    )
    return transport, aggregator, launcher


def run_to_completion(transport, aggregator, launcher):
    aggregator.start()
    try:
        report = launcher.run()
        deadline = time.monotonic() + DEADLINE
        while not aggregator.reception_complete and time.monotonic() < deadline:
            time.sleep(0.02)
    finally:
        aggregator.stop()
        transport.shutdown()
    return report


def test_hanging_client_is_killed_restarted_and_deduplicated():
    transport, aggregator, launcher = make_harness(heartbeat_timeout=0.5, hang_at_step=3)
    report = run_to_completion(transport, aggregator, launcher)

    # The hang was detected and the client killed exactly once, then the
    # restarted incarnation (hang cleared) completed the stream.
    assert report.unresponsive_kills == 1
    assert report.restarts == 1
    assert report.clients_completed == 1
    assert report.clients_failed == 0
    assert transport.stats.unresponsive_kills == 1

    # Every unique step arrived exactly once; the resent prefix was dedup'd.
    assert aggregator.stats.samples_received == NUM_STEPS
    assert aggregator.stats.duplicates_discarded >= 1
    assert aggregator.reception_complete


def test_watchdog_spares_a_slow_but_alive_client():
    """Steady progress refreshes the deadline: no kill, no restart."""
    # Slow (8 steps x 80 ms), but never silent longer than the 0.4 s deadline.
    transport, aggregator, launcher = make_harness(heartbeat_timeout=0.4, solver_delay=0.08)
    report = run_to_completion(transport, aggregator, launcher)

    assert report.unresponsive_kills == 0
    assert report.restarts == 0
    assert report.clients_completed == 1
    assert transport.stats.unresponsive_kills == 0
    assert aggregator.stats.samples_received == NUM_STEPS
