"""Tests for clocks, stopwatches and timers."""

import pytest

from repro.utils.timing import Stopwatch, Timer, VirtualClock, WallClock


def test_wall_clock_monotonic():
    clock = WallClock()
    first = clock.now()
    second = clock.now()
    assert second >= first


def test_virtual_clock_advance():
    clock = VirtualClock()
    assert clock.now() == 0.0
    clock.advance(5.0)
    assert clock.now() == 5.0
    clock.advance_to(3.0)  # never goes backwards
    assert clock.now() == 5.0
    clock.advance_to(7.5)
    assert clock.now() == 7.5


def test_virtual_clock_rejects_negative_advance():
    with pytest.raises(ValueError):
        VirtualClock().advance(-1.0)


def test_virtual_clock_sleep_advances():
    clock = VirtualClock(10.0)
    clock.sleep(2.5)
    assert clock.now() == 12.5


def test_stopwatch_accumulates():
    clock = VirtualClock()
    watch = Stopwatch(clock=clock)
    watch.start()
    clock.advance(2.0)
    watch.stop()
    watch.start()
    clock.advance(3.0)
    watch.stop()
    assert watch.elapsed == pytest.approx(5.0)


def test_stopwatch_context_manager():
    clock = VirtualClock()
    watch = Stopwatch(clock=clock)
    with watch:
        clock.advance(1.5)
    assert watch.elapsed == pytest.approx(1.5)
    assert not watch.running


def test_stopwatch_reset():
    clock = VirtualClock()
    watch = Stopwatch(clock=clock)
    with watch:
        clock.advance(1.0)
    watch.reset()
    assert watch.elapsed == 0.0


def test_timer_registry_and_summary():
    clock = VirtualClock()
    timer = Timer(clock=clock)
    with timer.time("generation"):
        clock.advance(4.0)
    with timer.time("training"):
        clock.advance(6.0)
    with timer.time("training"):
        clock.advance(1.0)
    summary = timer.summary()
    assert list(summary) == ["generation", "training"]
    assert summary["generation"] == pytest.approx(4.0)
    assert summary["training"] == pytest.approx(7.0)
    assert timer.elapsed("unknown") == 0.0
