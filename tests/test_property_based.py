"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.buffers import FIFOBuffer, FIROBuffer, ReservoirBuffer
from repro.buffers.base import SampleRecord
from repro.nn import Linear, MSELoss, ReLU, Sequential, Tanh, gradient_check
from repro.parallel.partition import BlockPartition2D, best_process_grid, partition_extent
from repro.sampling import HaltonSampler, LatinHypercubeSampler, MonteCarloSampler, ParameterSpace
from repro.solvers.heat2d import HeatEquationConfig, HeatEquationSolver, HeatParameters
from repro.utils.seeding import derive_rng


def record(index: int) -> SampleRecord:
    return SampleRecord(
        inputs=np.array([index], dtype=np.float32),
        target=np.array([index], dtype=np.float32),
        source_id=0,
        time_step=index,
    )


# --------------------------------------------------------------------- buffers
@settings(max_examples=30, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=40),
    num_samples=st.integers(min_value=0, max_value=120),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_reservoir_population_never_exceeds_capacity(capacity, num_samples, seed):
    buffer = ReservoirBuffer(capacity=capacity, threshold=0, seed=seed)
    rng = derive_rng("property-reservoir", seed)
    produced = 0
    for index in range(num_samples):
        if buffer.try_put(record(index)):
            produced += 1
        assert len(buffer) <= capacity
        # Interleave reads at random so both seen and unseen lists get exercised.
        if produced and rng.random() < 0.5:
            assert buffer.get(timeout=1.0) is not None
            assert len(buffer) <= capacity


@settings(max_examples=25, deadline=None)
@given(
    capacity=st.integers(min_value=2, max_value=30),
    num_samples=st.integers(min_value=1, max_value=60),
    reads_per_put=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_reservoir_drains_every_remaining_sample(capacity, num_samples, reads_per_put, seed):
    """After reception ends, draining returns exactly the stored population."""
    buffer = ReservoirBuffer(capacity=capacity, threshold=0, seed=seed)
    for index in range(num_samples):
        buffer.try_put(record(index))
        for _ in range(reads_per_put):
            buffer.get(timeout=1.0)
    population = len(buffer)
    buffer.signal_reception_over()
    drained = 0
    while buffer.get(timeout=0.5) is not None:
        drained += 1
    assert drained == population
    assert len(buffer) == 0
    assert buffer.exhausted


@settings(max_examples=25, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=50),
    num_samples=st.integers(min_value=0, max_value=80),
    kind=st.sampled_from(["fifo", "firo"]),
    seed=st.integers(min_value=0, max_value=100),
)
def test_single_read_buffers_conserve_samples(capacity, num_samples, kind, seed):
    """FIFO/FIRO: what comes out is exactly what went in (no loss, no duplication)."""
    if kind == "fifo":
        buffer = FIFOBuffer(capacity=capacity)
    else:
        buffer = FIROBuffer(capacity=capacity, threshold=0, seed=seed)
    accepted = []
    for index in range(num_samples):
        if buffer.try_put(record(index)):
            accepted.append(index)
    buffer.signal_reception_over()
    out = []
    while True:
        item = buffer.get(timeout=0.5)
        if item is None:
            break
        out.append(item.time_step)
    assert sorted(out) == accepted


# ----------------------------------------------------------------- partitioning
@settings(max_examples=50, deadline=None)
@given(total=st.integers(min_value=1, max_value=500), parts=st.integers(min_value=1, max_value=32))
def test_partition_extent_is_a_partition(total, parts):
    parts = min(parts, total)
    extents = [partition_extent(total, parts, i) for i in range(parts)]
    covered = [i for start, stop in extents for i in range(start, stop)]
    assert covered == list(range(total))
    sizes = [stop - start for start, stop in extents]
    assert max(sizes) - min(sizes) <= 1


@settings(max_examples=30, deadline=None)
@given(
    ny=st.integers(min_value=4, max_value=64),
    nx=st.integers(min_value=4, max_value=64),
    nprocs=st.integers(min_value=1, max_value=16),
)
def test_2d_partition_tiles_grid(ny, nx, nprocs):
    try:
        py, px = best_process_grid(nprocs, ny, nx)
    except ValueError:
        return  # too many processes for this grid: nothing to check
    partition = BlockPartition2D(ny=ny, nx=nx, py=py, px=px)
    count = 0
    for rank in range(partition.nprocs):
        rows, cols = partition.local_block(rank)
        count += (rows.stop - rows.start) * (cols.stop - cols.start)
    assert count == ny * nx


# --------------------------------------------------------------------- sampling
@settings(max_examples=20, deadline=None)
@given(
    low=st.floats(min_value=-100.0, max_value=100.0),
    width=st.floats(min_value=1e-3, max_value=1000.0),
    dimension=st.integers(min_value=1, max_value=8),
    count=st.integers(min_value=1, max_value=64),
    kind=st.sampled_from(["mc", "lhs", "halton"]),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_samplers_stay_inside_box(low, width, dimension, count, kind, seed):
    space = ParameterSpace.uniform_box(low, low + width, dimension)
    sampler = {
        "mc": MonteCarloSampler,
        "lhs": LatinHypercubeSampler,
        "halton": HaltonSampler,
    }[kind](space, seed=seed)
    samples = sampler.sample(count)
    assert samples.shape == (count, dimension)
    assert space.contains(samples).all()


# ----------------------------------------------------------------------- solver
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    temps=st.lists(st.floats(min_value=100.0, max_value=500.0), min_size=5, max_size=5),
    n=st.integers(min_value=6, max_value=14),
)
def test_heat_solution_respects_maximum_principle(temps, n):
    """For any parameters in the paper's range the solution stays within bounds."""
    config = HeatEquationConfig(nx=n, ny=n, num_steps=5)
    params = HeatParameters(*temps)
    series = HeatEquationSolver(config).run(params)
    stacked = series.stack()
    assert stacked.min() >= min(temps) - 1e-6
    assert stacked.max() <= max(temps) + 1e-6
    assert np.all(np.isfinite(stacked))


# --------------------------------------------------------------------------- nn
@settings(max_examples=10, deadline=None)
@given(
    in_features=st.integers(min_value=1, max_value=6),
    hidden=st.integers(min_value=1, max_value=8),
    out_features=st.integers(min_value=1, max_value=5),
    batch=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=100),
    activation=st.sampled_from(["tanh", "relu"]),
)
def test_random_mlp_gradients_are_correct(in_features, hidden, out_features, batch, seed, activation):
    rng = np.random.default_rng(seed)
    act = Tanh() if activation == "tanh" else ReLU()
    model = Sequential(
        Linear(in_features, hidden, rng=rng),
        act,
        Linear(hidden, out_features, rng=rng),
    )
    x = rng.standard_normal((batch, in_features)) + (0.5 if activation == "relu" else 0.0)
    y = rng.standard_normal((batch, out_features))
    gradient_check(model, MSELoss(), x, y, atol=1e-4, rtol=1e-3)
