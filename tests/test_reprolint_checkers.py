"""Per-checker positive/negative fixture tests for tools/reprolint.

Each checker has a ``bad_*`` fixture that must produce findings (the test
that fails before the paired fix/pragma exists) and a ``good_*`` fixture
exercising the legitimate patterns the checker must not flag — including the
repo's own idioms (``*_locked`` hooks, condition-variable waits, struct
method aliases, dataclass ``default_factory`` locks).
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))  # ``tools`` lives at the repo root, not under src/

from tools.reprolint import CHECKERS, load_project, run  # noqa: E402
from tools.reprolint.core import parse_pragmas  # noqa: E402

FIXTURES = REPO_ROOT / "tests" / "reprolint_fixtures"


def lint(*names: str):
    project = load_project([FIXTURES / name for name in names], root=REPO_ROOT)
    return run(project, CHECKERS)


def rules_of(report) -> set:
    return {finding.rule for finding in report.findings}


# ------------------------------------------------------------ lock discipline
class TestLockDiscipline:
    def test_bad_fixture_flags_every_unlocked_mutation(self):
        report = lint("bad_lock_discipline.py")
        findings = [f for f in report.findings if f.rule == "lock-discipline"]
        assert len(findings) == 3
        messages = " ".join(f.message for f in findings)
        assert "MixedCounter.count" in messages
        assert "MixedCounter.cache" in messages

    def test_good_fixture_is_clean(self):
        assert lint("good_lock_discipline.py").clean


# ------------------------------------------------------------------ lock order
class TestLockOrder:
    def test_bad_fixture_reports_the_cycle(self):
        report = lint("bad_lock_order.py")
        findings = [f for f in report.findings if f.rule == "lock-order"]
        assert len(findings) == 1
        assert "_accounts_lock" in findings[0].message
        assert "_journal_lock" in findings[0].message

    def test_good_fixture_is_clean(self):
        assert lint("good_lock_order.py").clean


# ----------------------------------------------------------- blocking under lock
class TestBlockingUnderLock:
    def test_bad_fixture_flags_sleep_queue_ops_and_join(self):
        report = lint("bad_blocking.py")
        findings = [f for f in report.findings if f.rule == "blocking-under-lock"]
        assert len(findings) == 4
        messages = " ".join(f.message for f in findings)
        assert "sleep" in messages
        assert ".get()" in messages
        assert ".put()" in messages
        assert ".join()" in messages

    def test_good_fixture_exemptions_hold(self):
        # CV waits on the held lock, dict.get/str.join, non-blocking queue
        # variants and blocking calls outside locks must all pass.
        assert lint("good_blocking.py").clean


# ------------------------------------------------------------------ fork safety
class TestForkSafety:
    def test_bad_fixture_flags_import_time_primitives(self):
        report = lint("bad_fork_safety.py")
        findings = [f for f in report.findings if f.rule == "fork-safety"]
        assert len(findings) == 4
        messages = " ".join(f.message for f in findings)
        assert "module scope" in messages
        assert "class Worker body" in messages
        assert "SharedMemory" in messages

    def test_good_fixture_per_instance_state_is_clean(self):
        assert lint("good_fork_safety.py").clean

    def test_unreachable_module_is_not_flagged(self):
        # Linted together with a fork root that does not import it, the bad
        # module is outside the fork-visible set and must not be flagged.
        root_src = "import threading\n\ndef launch():\n    return threading.Thread\n"
        root = FIXTURES / "launcher.py"  # module part 'launcher' marks a fork root
        root.write_text(root_src, encoding="utf-8")
        try:
            report = lint("launcher.py", "bad_fork_safety.py")
            assert not [f for f in report.findings if f.rule == "fork-safety"]
        finally:
            root.unlink()


# ------------------------------------------------------------------ wire layout
class TestWireLayout:
    def test_bad_fixture_flags_every_drift_shape(self):
        report = lint("bad_wire_layout.py")
        findings = [f for f in report.findings if f.rule == "wire-layout"]
        assert len(findings) == 5
        messages = " ".join(f.message for f in findings)
        assert "packs 17 bytes" in messages  # declared 13 vs calcsize 17
        assert "no explicit byte order" in messages
        assert "4 args" in messages  # pack_into arity (buffer + offset + 2 values)
        assert "3 args" in messages  # alias pack arity
        assert "needs 32 bytes" in messages  # offset past budget

    def test_good_fixture_and_alias_idioms_are_clean(self):
        assert lint("good_wire_layout.py").clean

    def test_repo_wire_modules_stay_consistent(self):
        # The real invariants: messages.py headers and shm_ring.py offset
        # families must keep matching their declared byte sizes.
        project = load_project(
            [
                REPO_ROOT / "src" / "repro" / "parallel" / "messages.py",
                REPO_ROOT / "src" / "repro" / "parallel" / "shm_ring.py",
            ],
            root=REPO_ROOT,
        )
        report = run(project, CHECKERS, rules=["wire-layout"])
        assert report.clean, [f.render() for f in report.findings]


# --------------------------------------------------------------- pragma protocol
class TestPragmas:
    def test_justified_pragmas_suppress_inline_and_own_line(self):
        report = lint("pragma_suppressed.py")
        assert report.clean
        assert len(report.suppressed) == 2
        assert {f.rule for f in report.suppressed} == {"lock-discipline"}

    def test_unjustified_pragma_does_not_suppress(self):
        report = lint("pragma_misuse.py")
        assert rules_of(report) == {"lock-discipline", "bad-pragma", "unused-pragma"}
        assert not report.suppressed

    def test_pragmas_in_string_literals_are_ignored(self):
        text = 'DOC = "# reprolint: allow[lock-discipline] -- not a comment"\n'
        assert parse_pragmas(text) == []
        assert len(parse_pragmas("x = 1  # reprolint: allow[wire-layout] -- why\n")) == 1


# ------------------------------------------------------------------------- CLI
class TestCli:
    def test_exit_codes_and_json_report(self, tmp_path):
        from tools.reprolint.__main__ import main

        json_path = tmp_path / "report.json"
        assert main([str(FIXTURES / "good_blocking.py"), "-q"]) == 0
        assert (
            main([str(FIXTURES / "bad_blocking.py"), "-q", "--json", str(json_path)]) == 1
        )
        import json

        payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert payload["checked_files"] == 1
        assert len(payload["findings"]) == 4

    def test_rules_filter_and_unknown_rule(self, tmp_path):
        from tools.reprolint.__main__ import main

        assert main([str(FIXTURES / "bad_blocking.py"), "-q", "--rules", "wire-layout"]) == 0
        assert main([str(FIXTURES / "bad_blocking.py"), "--rules", "nonsense"]) == 2

    def test_summary_rendering(self, tmp_path):
        from tools.reprolint.__main__ import main

        summary = tmp_path / "summary.md"
        main([str(FIXTURES / "bad_wire_layout.py"), "-q", "--summary", str(summary)])
        text = summary.read_text(encoding="utf-8")
        assert "## reprolint" in text
        assert "wire-layout" in text
