"""Repo-wide gate: the tree must be reprolint-clean, with a bounded pragma budget.

This is the pytest face of the CI ``reprolint`` job: ``python -m
tools.reprolint`` over every product/tooling/test directory must exit 0, and
the repo-wide suppression budget stays at <= 5 justified pragmas — pressure
to fix findings rather than accumulate exemptions.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Everything lintable: product code, the linter itself, and the test suite
#: (the fixture corpus is excluded by the loader — it is linted file-by-file
#: from tests/test_reprolint_checkers.py instead).
LINT_PATHS = ("src", "tools", "tests", "benchmarks", "examples", "scripts")

MAX_SUPPRESSIONS = 5


def test_repo_is_reprolint_clean(tmp_path):
    report_path = tmp_path / "reprolint.json"
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "tools.reprolint",
            *LINT_PATHS,
            "--json",
            str(report_path),
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    payload = json.loads(report_path.read_text(encoding="utf-8"))
    assert result.returncode == 0, (
        "reprolint found violations:\n" + result.stdout + result.stderr
    )
    assert payload["findings"] == []
    assert payload["checked_files"] > 100  # the sweep really covered the tree
    assert len(payload["suppressed"]) <= MAX_SUPPRESSIONS, (
        f"pragma budget exceeded ({len(payload['suppressed'])} > {MAX_SUPPRESSIONS}): "
        "fix findings instead of suppressing them\n"
        + "\n".join(s["path"] + ":" + str(s["line"]) for s in payload["suppressed"])
    )
