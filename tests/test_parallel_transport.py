"""Tests for the client/server transport layer and message types."""

import numpy as np
import pytest

from repro.parallel.messages import ClientFinished, ClientHello, Heartbeat, TimeStepMessage
from repro.parallel.transport import MessageRouter, RouterClosed


def make_message(client_id=0, step=1, seq=0, size=4):
    return TimeStepMessage(
        client_id=client_id,
        time_step=step,
        time_value=step * 0.01,
        parameters=(100.0, 200.0, 300.0, 400.0, 500.0),
        payload=np.arange(size, dtype=np.float32),
        sequence_number=seq,
    )


def test_time_step_message_sample_input_appends_time():
    message = make_message(step=3)
    inputs = message.sample_input()
    assert inputs.shape == (6,)
    assert inputs[-1] == pytest.approx(0.03)
    assert inputs.dtype == np.float32


def test_time_step_message_key_and_nbytes():
    message = make_message(client_id=7, step=12, size=100)
    assert message.key() == (7, 12)
    assert message.nbytes() >= 400


def test_control_message_sizes():
    assert ClientHello(client_id=0, parameters=(1.0, 2.0)).nbytes() > 0
    assert ClientFinished(client_id=0).nbytes() > 0
    assert Heartbeat(client_id=0).nbytes() > 0


def test_router_validation():
    with pytest.raises(ValueError):
        MessageRouter(0)
    router = MessageRouter(2)
    with pytest.raises(ValueError):
        router.push(5, make_message())
    with pytest.raises(ValueError):
        router.poll(-1)


def test_round_robin_distribution_across_ranks():
    router = MessageRouter(num_server_ranks=4)
    connection = router.connect(client_id=0)
    used = [connection.send_round_robin(make_message(step=i)) for i in range(8)]
    assert used == [0, 1, 2, 3, 0, 1, 2, 3]
    assert all(router.pending(rank) == 2 for rank in range(4))


def test_round_robin_start_offset_by_client_id():
    """Clients start on different ranks so the same time step spreads out."""
    router = MessageRouter(num_server_ranks=4)
    first_ranks = [
        router.connect(client_id=cid).send_round_robin(make_message(client_id=cid))
        for cid in range(4)
    ]
    assert first_ranks == [0, 1, 2, 3]


def test_poll_returns_messages_in_order():
    router = MessageRouter(2)
    connection = router.connect(0)
    for step in range(4):
        connection.send_to(1, make_message(step=step))
    steps = [router.poll(1, timeout=None).time_step for _ in range(4)]
    assert steps == [0, 1, 2, 3]
    assert router.poll(1, timeout=0.01) is None


def test_broadcast_reaches_every_rank():
    router = MessageRouter(3)
    connection = router.connect(5)
    connection.broadcast(ClientFinished(client_id=5, total_sent=10))
    for rank in range(3):
        message = router.poll(rank, timeout=None)
        assert isinstance(message, ClientFinished)
        assert message.client_id == 5


def test_router_stats_accumulate():
    router = MessageRouter(2)
    connection = router.connect(0)
    for step in range(6):
        connection.send_round_robin(make_message(step=step, size=10))
    assert router.stats.messages_routed == 6
    assert router.stats.bytes_routed > 0
    assert router.stats.per_rank_messages == {0: 3, 1: 3}
    assert router.total_pending() == 6


def test_closed_router_rejects_pushes():
    router = MessageRouter(1)
    connection = router.connect(0)
    router.close()
    assert router.closed
    with pytest.raises(RouterClosed):
        connection.send_round_robin(make_message())
    with pytest.raises(RouterClosed):
        router.connect(1)


def test_bounded_queue_blocks_then_raises_on_timeout():
    router = MessageRouter(1, max_queue_size=2)
    connection = router.connect(0)
    connection.send_to(0, make_message(step=0))
    connection.send_to(0, make_message(step=1))
    import queue as _queue

    with pytest.raises(_queue.Full):
        router.push(0, make_message(step=2), timeout=0.05)
