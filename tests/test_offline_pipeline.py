"""Tests for the offline storage, dataset, dataloader and trainer."""

import numpy as np
import pytest

from repro.offline.dataloader import DataLoader
from repro.offline.dataset import SimulationDataset
from repro.offline.storage import SimulationStore
from repro.offline.trainer import OfflineTrainer, OfflineTrainingConfig
from repro.nn import MLPConfig, build_mlp
from repro.server.validation import ValidationSet


@pytest.fixture
def store(tmp_path):
    store = SimulationStore(tmp_path / "data")
    rng = np.random.default_rng(0)
    for sim_id in range(4):
        fields = rng.random((6, 9)).astype(np.float32)
        times = np.linspace(0.01, 0.06, 6)
        params = rng.uniform(100, 500, size=5)
        store.add_simulation(sim_id, params.tolist(), times.tolist(), fields)
    return store


def test_store_index_and_sizes(store, tmp_path):
    assert len(store) == 4
    assert store.total_samples == 24
    assert store.total_bytes == 24 * 9 * 4
    assert store.size_gigabytes() == pytest.approx(store.total_bytes / 1e9)
    # Reopening the directory reloads the index.
    reopened = SimulationStore(tmp_path / "data")
    assert len(reopened) == 4
    assert reopened.simulations[0].num_steps == 6


def test_store_load_step_matches_full_load(store):
    simulation = store.simulations[2]
    full = store.load_fields(simulation, mmap=False)
    single = store.load_step(simulation, 3)
    assert np.allclose(single, full[3])


def test_store_rejects_mismatched_times(tmp_path):
    store = SimulationStore(tmp_path)
    with pytest.raises(ValueError):
        store.add_simulation(0, [1.0] * 5, [0.01, 0.02], np.zeros((3, 4)))


def test_dataset_indexing(store):
    dataset = SimulationDataset(store)
    assert len(dataset) == 24
    assert dataset.field_size == 9
    assert dataset.input_size == 6
    inputs, target = dataset[7]
    assert inputs.shape == (6,)
    assert target.shape == (9,)
    sim_id, step = dataset.sample_identity(7)
    assert 0 <= sim_id < 4 and 0 <= step < 6
    # Input ends with the time value of that step.
    simulation = [s for s in store if s.simulation_id == sim_id][0]
    assert inputs[-1] == pytest.approx(simulation.times[step])


def test_dataset_as_arrays(store):
    dataset = SimulationDataset(store)
    inputs, targets = dataset.as_arrays()
    assert inputs.shape == (24, 6)
    assert targets.shape == (24, 9)


def test_empty_store_rejected(tmp_path):
    with pytest.raises(ValueError):
        SimulationDataset(SimulationStore(tmp_path / "empty"))


def test_dataloader_covers_dataset_once_per_epoch(store):
    dataset = SimulationDataset(store)
    loader = DataLoader(dataset, batch_size=5, shuffle=True, seed=0)
    total = 0
    for inputs, targets in loader:
        assert inputs.shape[1] == 6 and targets.shape[1] == 9
        total += inputs.shape[0]
    assert total == len(dataset)
    assert len(loader) == 5  # ceil(24 / 5)


def test_dataloader_drop_last(store):
    dataset = SimulationDataset(store)
    loader = DataLoader(dataset, batch_size=5, drop_last=True)
    batches = list(loader)
    assert len(batches) == 4
    assert all(b[0].shape[0] == 5 for b in batches)


def test_dataloader_shuffles_differently_each_epoch(store):
    dataset = SimulationDataset(store)
    loader = DataLoader(dataset, batch_size=24, shuffle=True, seed=0)
    first_epoch = next(iter(loader))[0]
    second_epoch = next(iter(loader))[0]
    assert not np.allclose(first_epoch, second_epoch)


def test_dataloader_sharding_partitions_samples(store):
    dataset = SimulationDataset(store)
    seen = []
    for rank in range(2):
        loader = DataLoader(dataset, batch_size=4, shuffle=False, rank=rank, world_size=2)
        for inputs, _ in loader:
            seen.extend(inputs[:, -1].tolist())
    assert len(seen) == 24  # equal shards, no overlap (times identify samples per sim)


def test_dataloader_prefetch_workers_match_sync_loading(store):
    dataset = SimulationDataset(store)
    sync = DataLoader(dataset, batch_size=6, shuffle=True, seed=3, num_workers=0)
    threaded = DataLoader(dataset, batch_size=6, shuffle=True, seed=3, num_workers=3)
    for (a_in, a_t), (b_in, b_t) in zip(sync, threaded, strict=True):
        assert np.allclose(a_in, b_in)
        assert np.allclose(a_t, b_t)


def test_dataloader_validation(store):
    dataset = SimulationDataset(store)
    with pytest.raises(ValueError):
        DataLoader(dataset, batch_size=0)
    with pytest.raises(ValueError):
        DataLoader(dataset, batch_size=1, rank=3, world_size=2)


def _model_factory_for(dataset):
    def factory():
        return build_mlp(
            MLPConfig(in_features=dataset.input_size, hidden_sizes=(16,),
                out_features=dataset.field_size, seed=0, dtype=np.float32)
        )

    return factory


def test_offline_trainer_single_rank(store):
    dataset = SimulationDataset(store)
    inputs, targets = dataset.as_arrays()
    validation = ValidationSet(inputs[:6], targets[:6])
    config = OfflineTrainingConfig(num_epochs=3, batch_size=6, validation_interval=2,
        lr_step_batches=50)
    trainer = OfflineTrainer(dataset, config, _model_factory_for(dataset), validation=validation)
    result = trainer.run()
    assert result.epochs_completed == 3
    assert result.metrics.batches_trained == 12  # 4 batches/epoch * 3 epochs
    assert np.isfinite(result.best_validation_loss)
    losses = result.metrics.losses.train_losses
    assert losses[-1] < losses[0]


def test_offline_trainer_multi_rank_matches_sample_budget(store):
    dataset = SimulationDataset(store)
    config = OfflineTrainingConfig(num_epochs=2, batch_size=4, num_ranks=2, lr_step_batches=50)
    trainer = OfflineTrainer(dataset, config, _model_factory_for(dataset))
    result = trainer.run()
    total_samples = sum(m.samples_trained for m in result.per_rank_metrics)
    assert total_samples == 2 * 24
    assert len(result.per_rank_metrics) == 2


def test_offline_trainer_max_batches(store):
    dataset = SimulationDataset(store)
    config = OfflineTrainingConfig(num_epochs=10, batch_size=4, max_batches=5, lr_step_batches=50)
    result = OfflineTrainer(dataset, config, _model_factory_for(dataset)).run()
    assert result.metrics.batches_trained == 5


def test_offline_config_validation():
    with pytest.raises(ValueError):
        OfflineTrainingConfig(num_epochs=0)
    with pytest.raises(ValueError):
        OfflineTrainingConfig(num_ranks=0)
