"""Tests for the discrete-event performance model."""

import pytest

from repro.simulation.costs import ClusterCostModel, IOCostModel, SolverCostModel, TrainingCostModel
from repro.simulation.pipeline import PipelineSimulator, simulate_offline_pipeline


def test_solver_cost_model_scaling():
    model = SolverCostModel(seconds_per_cell_per_core=1e-5, startup_seconds=0.0)
    base = model.step_seconds(grid_cells=10_000, cores_per_client=10)
    assert model.step_seconds(20_000, 10) == pytest.approx(2 * base)
    assert model.step_seconds(10_000, 20) == pytest.approx(base / 2)
    with pytest.raises(ValueError):
        model.step_seconds(0, 10)


def test_training_cost_model_scaling():
    model = TrainingCostModel()
    small = model.batch_seconds(num_parameters=1_000_000, batch_size=10)
    large = model.batch_seconds(num_parameters=2_000_000, batch_size=10)
    assert large > small
    assert model.samples_per_second(1_000_000, 10) == pytest.approx(10 / small)
    with pytest.raises(ValueError):
        model.batch_seconds(0, 10)


def test_io_cost_model():
    model = IOCostModel(read_bandwidth_bytes_per_s=1e8, streams=1, per_file_overhead_seconds=0.0)
    assert model.read_seconds(1e8) == pytest.approx(1.0)
    assert model.write_seconds(2e8) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        model.read_seconds(-1)


def test_cluster_cost_model_matches_paper_rates():
    model = ClusterCostModel()
    # 1 kh CPU = 6 EUR, 1 kh GPU = 360 EUR, 1 TB = 56 EUR (paper's figures).
    assert model.compute_cost(1000.0, 0.0) == pytest.approx(6.0)
    assert model.compute_cost(0.0, 1000.0) == pytest.approx(360.0)
    assert model.storage_cost(1.0) == pytest.approx(56.0)


def _simulator(buffer_kind, **overrides):
    params = dict(
        num_simulations=100,
        steps_per_simulation=50,
        grid_cells=10_000,
        cores_per_client=10,
        concurrent_clients=20,
        num_gpus=1,
        model_parameters=5_000_000,
        batch_size=10,
        buffer_kind=buffer_kind,
        buffer_capacity=1_000,
        buffer_threshold=200,
        tick=0.5,
    )
    params.update(overrides)
    return PipelineSimulator(**params)


def test_pipeline_fifo_consumes_each_sample_once():
    estimate = _simulator("fifo").run()
    total = 100 * 50
    assert estimate.samples_produced == total
    assert estimate.samples_consumed == pytest.approx(total, rel=0.01)


def test_pipeline_reservoir_throughput_at_least_fifo():
    fifo = _simulator("fifo").run()
    reservoir = _simulator("reservoir").run()
    assert reservoir.mean_throughput >= fifo.mean_throughput * 0.99
    assert reservoir.samples_consumed >= fifo.samples_consumed
    assert reservoir.gpu_busy_fraction >= fifo.gpu_busy_fraction * 0.99


def test_pipeline_reservoir_scales_with_gpus_fifo_does_not():
    """Table 1 shape: only the Reservoir benefits from more GPUs at fixed production."""
    fifo_1 = _simulator("fifo", num_gpus=1).run()
    fifo_4 = _simulator("fifo", num_gpus=4).run()
    res_1 = _simulator("reservoir", num_gpus=1).run()
    res_4 = _simulator("reservoir", num_gpus=4).run()
    fifo_scaling = fifo_4.mean_throughput / fifo_1.mean_throughput
    reservoir_scaling = res_4.mean_throughput / res_1.mean_throughput
    assert reservoir_scaling > fifo_scaling
    assert reservoir_scaling > 1.5


def test_pipeline_series_transitions_produce_throughput_dips():
    """Figure 2 shape: FIFO throughput dips during inter-series gaps."""
    estimate = _simulator(
        "fifo",
        series_sizes=(10, 10),
        concurrent_clients=10,
        inter_series_delay=60.0,
    ).run()
    values = estimate.throughput_series
    assert values.min() == 0.0  # stalled during the series transition
    assert values.max() > 0.0


def test_offline_pipeline_io_bound_at_paper_scale():
    estimate = simulate_offline_pipeline(
        num_simulations=250,
        steps_per_simulation=100,
        grid_cells=1000 * 1000,
        cores_per_client=20,
        concurrent_clients=100,
        num_gpus=4,
        model_parameters=514_000_000,
        num_epochs=100,
    )
    assert estimate.io_limited
    assert estimate.dataset_bytes == pytest.approx(100e9, rel=0.01)
    # The paper reports ~38 samples/s and ~24.5 h; the model should land in the
    # same order of magnitude.
    assert 10 < estimate.samples_per_second < 150
    assert 5 < estimate.total_hours < 100


def test_online_extrapolation_reproduces_table2_shape():
    from repro.experiments.table2 import extrapolate_table2

    extrapolation = extrapolate_table2()
    # Online processes batches much faster than the I/O-bound offline baseline...
    assert extrapolation.throughput_ratio > 3.0
    # ...and finishes the 8 TB run within the same order as the paper's ~2 h,
    # far below the offline baseline's ~24 h.
    assert extrapolation.online_total_hours < extrapolation.offline_total_hours
    assert extrapolation.online_dataset_gb == pytest.approx(8000.0, rel=0.01)
    # Storing the 8 TB dataset would cost ~448 EUR at the paper's 56 EUR/TB.
    assert extrapolation.offline_8tb_storage_cost_euros == pytest.approx(448.0, rel=0.01)
