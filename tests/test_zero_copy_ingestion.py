"""The view-based ingestion chain: adopt once, read in place everywhere else.

Pins the copy-ownership contract end to end: ``unpack_many`` adopts a packed
batch's payloads with one block copy, the aggregator builds records that
*view* shared per-chunk blocks (no per-message copies), the buffers adopt
those views as-is, and ``TrainingWorker._stack_batch`` hands an
arrival-ordered batch to the forward pass as a zero-copy strided view.
"""

import numpy as np

from repro.buffers import FIFOBuffer, FIROBuffer
from repro.buffers.base import SampleRecord, contiguous_rows
from repro.parallel.messages import TimeStepMessage, pack_many, unpack_many
from repro.parallel.transport import MessageRouter
from repro.server.aggregator import DataAggregator
from repro.server.fault import MessageLog

FIELD_LEN = 12


def make_steps(count, client_id=0, start=0):
    return [
        TimeStepMessage(
            client_id=client_id,
            time_step=start + index,
            time_value=(start + index) * 0.1,
            parameters=(1.0, 2.0, 3.0),
            payload=np.arange(FIELD_LEN, dtype=np.float32) + start + index,
            sequence_number=start + index,
        )
        for index in range(count)
    ]


def make_aggregator(buffer):
    router = MessageRouter(num_server_ranks=1)
    return DataAggregator(
        rank=0, router=router, buffer=buffer, expected_clients=1, message_log=MessageLog()
    )


# ----------------------------------------------------------------- adoption
def test_adopted_chunk_shares_one_payload_block_and_one_inputs_matrix():
    buffer = FIFOBuffer(capacity=64)
    aggregator = make_aggregator(buffer)
    steps = unpack_many(pack_many(make_steps(10)), copy_payloads=True)
    aggregator._handle_many(list(steps))
    records = buffer.get_batch(10, timeout=1.0)
    assert len(records) == 10

    target_base = records[0].target.base
    inputs_base = records[0].inputs.base
    assert target_base is not None and inputs_base is not None
    for record in records:
        assert record.target.base is target_base  # one adopted payload block
        assert record.inputs.base is inputs_base  # one vectorized inputs matrix
        assert record.inputs.dtype == np.float32
    # Content is intact through the no-copy chain.
    for index, record in enumerate(records):
        expected_target = np.arange(FIELD_LEN, dtype=np.float32) + index
        np.testing.assert_array_equal(record.target, expected_target)
        expected = np.asarray([1.0, 2.0, 3.0, index * 0.1], dtype=np.float32)
        np.testing.assert_array_equal(record.inputs, expected)


def test_aggregator_copies_defensively_when_transport_does_not_own_payloads():
    buffer = FIFOBuffer(capacity=64)
    aggregator = make_aggregator(buffer)
    aggregator._adopt_payloads = False  # a backend handing out borrowed views
    wire = pack_many(make_steps(4))
    steps = unpack_many(wire)  # borrowed: views into ``wire``
    aggregator._handle_many(list(steps))
    records = buffer.get_batch(4, timeout=1.0)
    wire_bytes = np.frombuffer(wire, dtype=np.uint8)
    for record in records:
        assert not np.shares_memory(record.target, wire_bytes)


def test_dedup_and_control_bookkeeping_survive_the_batched_path():
    buffer = FIFOBuffer(capacity=64)
    aggregator = make_aggregator(buffer)
    steps = unpack_many(pack_many(make_steps(6)), copy_payloads=True)
    aggregator._handle_many(list(steps))
    aggregator._handle_many(list(steps))  # a restarted client resends
    assert aggregator.stats.samples_received == 6
    assert aggregator.stats.duplicates_discarded == 6
    assert buffer.total_put == 6


def test_mixed_parameter_lengths_fall_back_per_message():
    buffer = FIFOBuffer(capacity=64)
    aggregator = make_aggregator(buffer)
    uneven = [
        TimeStepMessage(
            client_id=0,
            time_step=0,
            time_value=0.0,
            parameters=(1.0,),
            payload=np.ones(4, np.float32),
        ),
        TimeStepMessage(
            client_id=1,
            time_step=0,
            time_value=1.0,
            parameters=(1.0, 2.0),
            payload=np.ones(4, np.float32),
        ),
    ]
    aggregator._handle_many(uneven)
    records = buffer.get_batch(2, timeout=1.0)
    assert [record.inputs.shape for record in records] == [(2,), (3,)]


# ---------------------------------------------------------- contiguous rows
def test_contiguous_rows_detects_adjacent_views():
    block = np.arange(40, dtype=np.float32)
    rows = [block[index * 8 : (index + 1) * 8] for index in range(5)]
    stacked = contiguous_rows(rows)
    assert stacked is not None and stacked.shape == (5, 8)
    assert np.shares_memory(stacked, block)


def test_contiguous_rows_rejects_gaps_reorders_and_foreign_bases():
    block = np.arange(64, dtype=np.float32)
    assert contiguous_rows([block[0:8], block[8:16], block[24:32]]) is None  # gap
    assert contiguous_rows([block[8:16], block[0:8]]) is None  # reordered
    other = np.arange(8, dtype=np.float32)
    assert contiguous_rows([block[0:8], other]) is None  # owns its data
    assert contiguous_rows([np.arange(8, dtype=np.float32)]) is None  # no base


# -------------------------------------------------------------- stack batch
def _worker_stub():
    from repro.server.trainer import TrainerConfig, TrainingWorker

    worker = TrainingWorker.__new__(TrainingWorker)
    worker.config = TrainerConfig(batch_size=4)
    worker._batch_inputs = None
    worker._batch_targets = None
    return worker


def test_stack_batch_is_zero_copy_for_arrival_ordered_records():
    buffer = FIFOBuffer(capacity=64)
    aggregator = make_aggregator(buffer)
    steps = unpack_many(pack_many(make_steps(8)), copy_payloads=True)
    aggregator._handle_many(list(steps))
    batch = buffer.get_batch(4, timeout=1.0)

    worker = _worker_stub()
    inputs, targets = worker._stack_batch(batch)
    assert np.shares_memory(targets, batch[0].target)  # no copy happened
    assert np.shares_memory(inputs, batch[0].inputs)
    assert inputs.shape == (4, 4) and targets.shape == (4, FIELD_LEN)


def test_stack_batch_falls_back_to_staging_copy_for_shuffled_records():
    buffer = FIROBuffer(capacity=64, threshold=0, seed=3)
    aggregator = make_aggregator(buffer)
    buffer.signal_reception_over()  # FIRO draws random positions: not adjacent
    steps = unpack_many(pack_many(make_steps(8)), copy_payloads=True)
    aggregator._handle_many(list(steps))
    batch = buffer.get_batch(4, timeout=1.0)

    worker = _worker_stub()
    inputs, targets = worker._stack_batch(batch)
    assert inputs.shape == (4, 4) and targets.shape == (4, FIELD_LEN)
    for row, record in zip(range(4), batch, strict=True):
        np.testing.assert_array_equal(targets[row], record.target)
        np.testing.assert_array_equal(inputs[row], record.inputs)


def test_stack_batch_results_identical_between_fast_and_staging_paths():
    steps = unpack_many(pack_many(make_steps(6)), copy_payloads=True)
    records = [
        SampleRecord(
            inputs=np.asarray([*message.parameters, message.time_value], dtype=np.float32),
            target=np.array(message.payload),  # owns its data: staging path
            source_id=message.client_id,
            time_step=message.time_step,
        )
        for message in steps
    ]
    staged_inputs, staged_targets = _worker_stub()._stack_batch(records)

    buffer = FIFOBuffer(capacity=64)
    aggregator = make_aggregator(buffer)
    aggregator._handle_many(list(steps))
    adopted = buffer.get_batch(6, timeout=1.0)
    fast_inputs, fast_targets = _worker_stub()._stack_batch(adopted)

    np.testing.assert_array_equal(staged_inputs, fast_inputs)
    np.testing.assert_array_equal(staged_targets, fast_targets)
