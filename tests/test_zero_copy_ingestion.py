"""The view-based ingestion chain: adopt once, read in place everywhere else.

Pins the copy-ownership contract end to end for the columnar data plane:
``unpack_columns`` adopts a packed batch's payload block with one copy, the
aggregator hands the chunk to the buffer whose column store copies it exactly
once more (the insert), and ``TrainingWorker._stack_batch`` passes a drawn
:class:`ColumnBatch` to the forward pass **as-is** — its two matrices, no
per-record objects, no copy at all.  The legacy per-record path (in-process
object transports, ragged ensembles) keeps its original guarantees: shared
per-chunk blocks, defensive copies for non-owning transports, and the
``contiguous_rows`` zero-copy stacking fallback.
"""

import numpy as np

from repro.buffers import FIFOBuffer, FIROBuffer
from repro.buffers.base import SampleRecord, contiguous_rows
from repro.buffers.columns import ColumnBatch
from repro.parallel.messages import TimeStepMessage, pack_many, unpack_columns, unpack_many
from repro.parallel.transport import MessageRouter
from repro.server.aggregator import DataAggregator
from repro.server.fault import MessageLog

FIELD_LEN = 12


def make_steps(count, client_id=0, start=0):
    return [
        TimeStepMessage(
            client_id=client_id,
            time_step=start + index,
            time_value=(start + index) * 0.1,
            parameters=(1.0, 2.0, 3.0),
            payload=np.arange(FIELD_LEN, dtype=np.float32) + start + index,
            sequence_number=start + index,
        )
        for index in range(count)
    ]


def make_aggregator(buffer):
    router = MessageRouter(num_server_ranks=1)
    return DataAggregator(
        rank=0, router=router, buffer=buffer, expected_clients=1, message_log=MessageLog()
    )


# ----------------------------------------------------------------- adoption
def test_adopted_chunk_flows_to_the_store_with_one_copy():
    """wire -> ColumnBatch -> store: the chunk owns its block, the insert
    copies it exactly once into the preallocated columns."""
    buffer = FIFOBuffer(capacity=64)
    aggregator = make_aggregator(buffer)
    wire = pack_many(make_steps(10))
    chunk = unpack_columns(wire)
    assert chunk is not None and len(chunk) == 10

    # The adoption copy: the chunk's columns are private, not wire views.
    wire_bytes = np.frombuffer(wire, dtype=np.uint8)
    assert not np.shares_memory(chunk.targets, wire_bytes)
    assert not np.shares_memory(chunk.inputs, wire_bytes)

    aggregator._handle_items([chunk])
    assert aggregator.stats.samples_received == 10
    # The insert copied the rows into the store; the chunk was not adopted
    # by reference (its columns may be sliced leftovers of a shared block).
    assert not np.shares_memory(buffer._store.targets, chunk.targets)
    assert not np.shares_memory(buffer._store.inputs, chunk.inputs)

    batch = buffer.get_batch_columns(10, timeout=1.0)
    np.testing.assert_array_equal(batch.time_steps, np.arange(10))
    for index in range(10):
        np.testing.assert_array_equal(
            batch.targets[index], np.arange(FIELD_LEN, dtype=np.float32) + index
        )
        np.testing.assert_array_equal(batch.inputs[index], [1.0, 2.0, 3.0, index * 0.1])


def test_record_views_share_the_batch_columns():
    """The per-sample compatibility view costs objects, never copies."""
    buffer = FIFOBuffer(capacity=64)
    aggregator = make_aggregator(buffer)
    aggregator._handle_items([unpack_columns(pack_many(make_steps(10)))])
    records = buffer.get_batch(10, timeout=1.0)
    assert len(records) == 10

    target_base = records[0].target.base
    inputs_base = records[0].inputs.base
    assert target_base is not None and inputs_base is not None
    for record in records:
        assert record.target.base is target_base  # one gathered targets block
        assert record.inputs.base is inputs_base  # one gathered inputs matrix
        assert record.inputs.dtype == np.float64
        assert record.target.dtype == np.float32
    for index, record in enumerate(records):
        expected_target = np.arange(FIELD_LEN, dtype=np.float32) + index
        np.testing.assert_array_equal(record.target, expected_target)
        np.testing.assert_array_equal(record.inputs, [1.0, 2.0, 3.0, index * 0.1])


def test_aggregator_copies_defensively_when_transport_does_not_own_payloads():
    buffer = FIFOBuffer(capacity=64)
    aggregator = make_aggregator(buffer)
    aggregator._adopt_payloads = False  # a backend handing out borrowed views
    wire = pack_many(make_steps(4))
    steps = unpack_many(wire)  # borrowed: views into ``wire``
    aggregator._handle_many(list(steps))
    records = buffer.get_batch(4, timeout=1.0)
    wire_bytes = np.frombuffer(wire, dtype=np.uint8)
    for record in records:
        assert not np.shares_memory(record.target, wire_bytes)


def test_dedup_and_control_bookkeeping_survive_the_columnar_path():
    buffer = FIFOBuffer(capacity=64)
    aggregator = make_aggregator(buffer)
    wire = pack_many(make_steps(6))
    aggregator._handle_items([unpack_columns(wire)])
    aggregator._handle_items([unpack_columns(wire)])  # a restarted client resends
    assert aggregator.stats.samples_received == 6
    assert aggregator.stats.duplicates_discarded == 6
    assert buffer.total_put == 6


def test_mixed_parameter_lengths_fall_back_per_message():
    buffer = FIFOBuffer(capacity=64)
    aggregator = make_aggregator(buffer)
    uneven = [
        TimeStepMessage(
            client_id=0,
            time_step=0,
            time_value=0.0,
            parameters=(1.0,),
            payload=np.ones(4, np.float32),
        ),
        TimeStepMessage(
            client_id=1,
            time_step=0,
            time_value=1.0,
            parameters=(1.0, 2.0),
            payload=np.ones(4, np.float32),
        ),
    ]
    assert unpack_columns(pack_many(uneven)) is None  # ragged: no dense chunk
    aggregator._handle_many(uneven)
    records = buffer.get_batch(2, timeout=1.0)
    assert [record.inputs.shape for record in records] == [(2,), (3,)]


# ---------------------------------------------------------- contiguous rows
def test_contiguous_rows_detects_adjacent_views():
    block = np.arange(40, dtype=np.float32)
    rows = [block[index * 8 : (index + 1) * 8] for index in range(5)]
    stacked = contiguous_rows(rows)
    assert stacked is not None and stacked.shape == (5, 8)
    assert np.shares_memory(stacked, block)


def test_contiguous_rows_rejects_gaps_reorders_and_foreign_bases():
    block = np.arange(64, dtype=np.float32)
    assert contiguous_rows([block[0:8], block[8:16], block[24:32]]) is None  # gap
    assert contiguous_rows([block[8:16], block[0:8]]) is None  # reordered
    other = np.arange(8, dtype=np.float32)
    assert contiguous_rows([block[0:8], other]) is None  # owns its data
    assert contiguous_rows([np.arange(8, dtype=np.float32)]) is None  # no base


def test_contiguous_rows_accepts_equal_but_not_identical_dtypes():
    """Regression: the dtype guard must compare by equality, not identity.

    Numpy dtypes are not interned — a view carrying a metadata-annotated
    (but equal) float32 dtype fails an ``is`` comparison while describing
    the exact same memory layout.  Such rows are adjacent and stackable.
    """
    block = np.arange(16, dtype=np.float32)
    annotated = np.dtype("f4", metadata={"note": "same layout"})
    rows = [block[0:8], block[8:16].view(annotated)]
    assert rows[1].dtype is not rows[0].dtype  # identity differs ...
    assert rows[1].dtype == rows[0].dtype  # ... equality does not
    stacked = contiguous_rows(rows)
    assert stacked is not None and stacked.shape == (2, 8)
    assert np.shares_memory(stacked, block)


# -------------------------------------------------------------- stack batch
def _worker_stub():
    from repro.server.trainer import TrainerConfig, TrainingWorker

    worker = TrainingWorker.__new__(TrainingWorker)
    worker.config = TrainerConfig(batch_size=4)
    worker._batch_inputs = None
    worker._batch_targets = None
    return worker


def test_stack_batch_passes_dense_columns_through_untouched():
    """A drawn ColumnBatch IS the stacked batch: identity, not just aliasing."""
    buffer = FIROBuffer(capacity=64, threshold=0, seed=3)
    aggregator = make_aggregator(buffer)
    buffer.signal_reception_over()  # random draw order: irrelevant to columns
    aggregator._handle_items([unpack_columns(pack_many(make_steps(8)))])
    batch = buffer.get_batch_columns(4, timeout=1.0)

    inputs, targets = _worker_stub()._stack_batch(batch)
    assert inputs is batch.inputs
    assert targets is batch.targets
    assert inputs.shape == (4, 4) and targets.shape == (4, FIELD_LEN)


def test_stack_batch_is_zero_copy_for_arrival_ordered_records():
    buffer = FIFOBuffer(capacity=64)
    aggregator = make_aggregator(buffer)
    aggregator._handle_items([unpack_columns(pack_many(make_steps(8)))])
    batch = buffer.get_batch(4, timeout=1.0)  # records: row views, in order

    worker = _worker_stub()
    inputs, targets = worker._stack_batch(batch)
    assert np.shares_memory(targets, batch[0].target)  # no copy happened
    assert np.shares_memory(inputs, batch[0].inputs)
    assert inputs.shape == (4, 4) and targets.shape == (4, FIELD_LEN)


def test_stack_batch_falls_back_to_staging_copy_for_foreign_records():
    steps = make_steps(8)
    records = [
        SampleRecord(
            inputs=np.asarray([*m.parameters, m.time_value], dtype=np.float32),
            target=np.array(m.payload),  # owns its data: staging path
            source_id=m.client_id,
            time_step=m.time_step,
        )
        for m in steps
    ][:4]
    worker = _worker_stub()
    inputs, targets = worker._stack_batch(records)
    assert inputs.base is worker._batch_inputs  # staged, not viewed
    assert inputs.shape == (4, 4) and targets.shape == (4, FIELD_LEN)
    for row, record in zip(range(4), records, strict=True):
        np.testing.assert_array_equal(targets[row], record.target)
        np.testing.assert_array_equal(inputs[row], record.inputs)


def test_stack_batch_results_identical_between_columnar_and_staging_paths():
    steps = make_steps(6)
    records = [
        SampleRecord(
            inputs=np.asarray([*m.parameters, m.time_value], dtype=np.float32),
            target=np.array(m.payload),
            source_id=m.client_id,
            time_step=m.time_step,
        )
        for m in steps
    ]
    staged_inputs, staged_targets = _worker_stub()._stack_batch(records)

    buffer = FIFOBuffer(capacity=64)
    aggregator = make_aggregator(buffer)
    aggregator._handle_items([unpack_columns(pack_many(steps))])
    columns = buffer.get_batch_columns(6, timeout=1.0)
    fast_inputs, fast_targets = _worker_stub()._stack_batch(columns)

    np.testing.assert_array_equal(staged_inputs, fast_inputs.astype(np.float32))
    np.testing.assert_array_equal(staged_targets, fast_targets)


def test_stack_batch_degrades_object_mode_columns_to_records():
    ragged = ColumnBatch.from_records(
        [
            SampleRecord(np.ones(2, np.float32), np.ones(3, np.float32), 0, 0),
            SampleRecord(np.ones(4, np.float32), np.ones(3, np.float32), 0, 1),
        ]
    )
    assert not ragged.is_dense
    worker = _worker_stub()
    # Ragged inputs cannot stack into one matrix; targets still stage fine
    # when shapes agree — exercised through the record fallback.
    dense_targets = ColumnBatch.from_records(
        [
            SampleRecord(np.full(2, 5.0, np.float32), np.full(3, 7.0, np.float32), 0, 0),
            SampleRecord(np.full(2, 6.0, np.float32), np.full(3, 8.0, np.float32), 0, 1),
        ]
    )
    inputs, targets = worker._stack_batch(dense_targets)
    assert inputs.shape == (2, 2) and targets.shape == (2, 3)
    np.testing.assert_array_equal(inputs[1], [6.0, 6.0])
