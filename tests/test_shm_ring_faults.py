"""Fault-injection tests for the shared-memory ring-buffer transport.

The ring closes the documented ``mp.Queue`` limitation: a client SIGKILLed
mid-write must cost at most the one batch it was writing — never a wedged
reader or a stalled lock.  These tests pin that contract, the slow-reader
drop accounting, wraparound integrity, and the control-message ordering
(``ClientFinished`` never overtakes ring data).
"""

import queue
import time

import numpy as np
import pytest

from repro.buffers import FIFOBuffer
from repro.client.api import ClientAPI
from repro.launcher.launcher import _fork_mp
from repro.parallel.messages import ClientFinished, TimeStepMessage, WireFormatError
from repro.parallel.shm_ring import (
    _HDR_WRITER_CURSOR,
    RING_HEADER_BYTES,
    ShmRing,
    ShmRingTransport,
)
from repro.server.aggregator import DataAggregator
from repro.server.fault import MessageLog
from repro.utils.constants import QUEUE_DROP_TIMEOUT

DEADLINE = 30.0  # generous cap: every blocking wait in this module fails by then

NUM_STEPS = 40
FIELD = np.arange(8, dtype=np.float32)


def wait_until(predicate, timeout=DEADLINE, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def stream_steps(transport, client_id, num_steps, step_delay=0.0, batch_size=1):
    """Run the three-call client contract, streaming ``num_steps`` messages."""
    api = ClientAPI(transport, client_id, send_batch_size=batch_size)
    api.init_communication(parameters=(1.0, 2.0), num_time_steps=num_steps, field_shape=FIELD.shape)
    for step in range(num_steps):
        api.send(step, step * 0.1, (1.0, 2.0), FIELD)
        if step_delay:
            time.sleep(step_delay)
    api.finalize_communication()


@pytest.fixture
def transport():
    transport = ShmRingTransport(num_server_ranks=1, max_concurrent_clients=2,
        ring_slots=32, ring_slot_bytes=8192)
    yield transport
    transport.shutdown()


def make_ring(num_slots=4, slot_bytes=64):
    """A standalone ring over plain process-local memory (logic tests)."""
    buf = memoryview(bytearray(ShmRing.layout_bytes(num_slots, slot_bytes)))
    return ShmRing(buf, num_slots, slot_bytes, create=True)


# ------------------------------------------------------------- wraparound
def test_wraparound_at_slot_boundary_round_trips_byte_for_byte():
    """Many times the slot count, with varying lengths, crossing the
    wrap boundary at every lap — every buffer must come back identical."""
    ring = make_ring(num_slots=4, slot_bytes=64)
    payloads = [bytes([i % 256]) * (1 + (7 * i) % 64) for i in range(50)]
    written = 0
    for read_index in range(len(payloads)):
        while written < len(payloads) and ring.try_write(payloads[written]):
            written += 1  # fill to the boundary so every lap wraps while full
        data = ring.try_read()
        assert data == payloads[read_index], f"buffer {read_index} corrupted"
    assert written == len(payloads)
    assert ring.depth == 0
    assert ring.torn_batches == 0
    assert ring.high_water == 4  # the ring really filled to the boundary


def test_write_rejects_oversized_buffer():
    ring = make_ring(num_slots=2, slot_bytes=64)
    with pytest.raises(ValueError):
        ring.try_write(b"x" * 65)


# ------------------------------------------------------------- torn writes
def test_writer_died_mid_write_reader_survives_and_torn_batch_is_counted():
    """A write-begin marker without a commit (the exact shared state a
    SIGKILL mid-write leaves behind) is invisible to the reader; the
    restarted writer reusing the slot counts the torn batch."""
    ring = make_ring(num_slots=4, slot_bytes=64)
    assert ring.try_write(b"delivered")
    assert ring.try_read() == b"delivered"

    # Simulate the kill: the victim stored its begin marker (odd sequence)
    # and some payload bytes, but died before the commit/cursor stores.
    writer = ring._load(_HDR_WRITER_CURSOR)
    slot = RING_HEADER_BYTES + (writer % 4) * ring._stride
    ring._store(slot, 2 * writer + 1)
    ring._buf[slot + 16 : slot + 24] = b"torndata"

    assert ring.try_read() is None  # nothing published: the reader never wedges
    assert ring.depth == 0
    assert ring.torn_batches == 0  # not yet discovered

    # The restarted writer reuses the slot: the stale marker is detected,
    # counted, and the fresh batch goes through untouched.
    assert ring.try_write(b"after-restart")
    assert ring.torn_batches == 1
    assert ring.try_read() == b"after-restart"
    assert ring.try_write(b"steady-state")
    assert ring.torn_batches == 1  # counted exactly once


def test_client_process_killed_mid_stream_then_restart_dedup(transport):
    """The mp.Queue kill test, on rings: SIGKILL a streaming client process;
    the reader keeps draining, a restart resends and the server's message
    log dedups.  No locks to orphan means no wedge to tolerate."""
    buffer = FIFOBuffer(capacity=10 * NUM_STEPS)
    aggregator = DataAggregator(rank=0, router=transport, buffer=buffer,
                                expected_clients=1, message_log=MessageLog(),
                                poll_timeout=0.02)
    aggregator.start()
    try:
        process = _fork_mp().Process(
            target=stream_steps,
            args=(transport, 0, NUM_STEPS),
            kwargs={"step_delay": 0.01, "batch_size": 4},
            daemon=True,
        )
        process.start()
        assert wait_until(lambda: aggregator.stats.samples_received >= 5), \
            "server never received the first samples"
        process.kill()
        process.join(DEADLINE)
        assert not process.is_alive()

        received_before_restart = aggregator.stats.samples_received
        assert received_before_restart < NUM_STEPS

        restarted = _fork_mp().Process(target=stream_steps,
            args=(transport, 0, NUM_STEPS),
            kwargs={"batch_size": 4}, daemon=True)
        restarted.start()
        restarted.join(DEADLINE)
        assert restarted.exitcode == 0
        assert wait_until(lambda: aggregator.reception_complete), \
            "ClientFinished never reached the aggregator"
    finally:
        aggregator.stop()

    assert aggregator.stats.samples_received == NUM_STEPS
    assert aggregator.stats.duplicates_discarded >= received_before_restart - 1
    # A SIGKILL landing exactly mid-write tears at most the one in-flight
    # batch, which the restarted writer detects and counts.
    assert transport.stats.torn_batches <= 1
    assert transport.stats.dropped_messages == 0


# ------------------------------------------------------------ slow reader
def test_slow_reader_drop_accounting_matches_transport_stats():
    """With no reader draining, a bounded push times out on the full ring
    and every dropped message lands in ``TransportStats.dropped_messages``."""
    transport = ShmRingTransport(num_server_ranks=1, max_concurrent_clients=1,
        ring_slots=2, ring_slot_bytes=4096)
    try:
        message = TimeStepMessage(client_id=0, time_step=0, payload=FIELD)
        transport.push(0, message)
        transport.push(0, message)

        began = time.monotonic()
        with pytest.raises(queue.Full):
            transport.push(0, message, timeout=QUEUE_DROP_TIMEOUT)
        assert time.monotonic() - began < DEADLINE  # timed out, did not hang
        assert transport.stats.dropped_messages == 1

        with pytest.raises(queue.Full):
            transport.push_many(
                0,
                [TimeStepMessage(client_id=0, time_step=step, payload=FIELD)
                    for step in range(3)],
                timeout=QUEUE_DROP_TIMEOUT,
            )
        assert transport.stats.dropped_messages == 4  # whole batch dropped

        # Messages that did get through are not counted as dropped, and the
        # ring's high-water mark recorded the saturated depth.
        assert transport.stats.messages_routed == 2
        assert transport.stats.ring_depth_high_water == {0: 2}
    finally:
        transport.shutdown()


# --------------------------------------------------------- message routing
def test_finished_never_overtakes_ring_data(transport):
    """``ClientFinished`` rides the control queue but must be delivered only
    once the client's ring for that rank has drained."""
    steps = [TimeStepMessage(client_id=0, time_step=step, payload=FIELD) for step in range(6)]
    transport.push_many(0, steps)
    transport.push(0, ClientFinished(client_id=0, total_sent=6))

    received = []
    deadline = time.monotonic() + DEADLINE
    while len(received) < 7 and time.monotonic() < deadline:
        received.extend(transport.poll_many(0, max_messages=2, timeout=0.1))
    assert [m.time_step for m in received[:6]] == list(range(6))
    assert isinstance(received[-1], ClientFinished)


def test_oversized_batches_split_and_oversized_message_raises():
    transport = ShmRingTransport(num_server_ranks=1, max_concurrent_clients=1,
        ring_slots=8, ring_slot_bytes=512)
    try:
        big = np.arange(64, dtype=np.float32)  # 4 packed messages > 512 B
        batch = [TimeStepMessage(client_id=0, time_step=step, payload=big) for step in range(4)]
        transport.push_many(0, batch)
        received = []
        while len(received) < 4:
            chunk = transport.poll_many(0, max_messages=8, timeout=1.0)
            assert chunk, "split batch never arrived"
            received.extend(chunk)
        assert received == batch  # order and bytes survive the split

        huge = TimeStepMessage(client_id=0, time_step=9, payload=np.arange(512, dtype=np.float32))
        with pytest.raises(WireFormatError, match="ring_slot_bytes"):
            transport.push(0, huge)
        assert transport.stats.dropped_messages == 1
    finally:
        transport.shutdown()


# ------------------------------------------------------------- slot leases
def test_slot_lease_connect_finish_recycles():
    """Two lease slots serve four sequential clients: connect leases, the
    delivered finished marker releases, and the next client reuses the slot."""
    transport = ShmRingTransport(num_server_ranks=1, max_concurrent_clients=2,
        ring_slots=8, ring_slot_bytes=4096,
        lease_timeout=5.0)
    try:
        for client_id in range(4):
            connection = transport.connect(client_id)
            slot = transport._slot_of(client_id)
            assert slot is not None
            connection.send_round_robin(
                TimeStepMessage(client_id=client_id, time_step=0, payload=FIELD)
            )
            transport.push(0, ClientFinished(client_id=client_id, total_sent=1))
            received = []
            while len(received) < 2:
                received.extend(transport.poll_many(0, max_messages=8, timeout=1.0))
            assert isinstance(received[-1], ClientFinished)
            # Finished delivered on the only rank: the lease is recycled.
            assert transport._slot_of(client_id) is None
        # Four clients fit through two slots; no torn/dropped traffic.
        assert transport.stats.dropped_messages == 0
        assert transport.stats.torn_batches == 0
    finally:
        transport.shutdown()


def test_slot_lease_exhaustion_raises_actionable_error():
    transport = ShmRingTransport(num_server_ranks=1, max_concurrent_clients=1,
        ring_slots=4, ring_slot_bytes=4096,
        lease_timeout=0.2)
    try:
        transport.connect(0)
        began = time.monotonic()
        with pytest.raises(TimeoutError, match="max_concurrent_clients"):
            transport.connect(1)
        assert time.monotonic() - began < DEADLINE
    finally:
        transport.shutdown()


def test_slot_lease_killed_client_restart_reuses_its_lease(transport):
    """A client killed mid-lease still owns its slot; the restarted
    incarnation (same client id) finds and reuses it instead of leaking it."""
    process = _fork_mp().Process(
        target=stream_steps, args=(transport, 0, NUM_STEPS),
        kwargs={"step_delay": 0.01, "batch_size": 4}, daemon=True,
    )
    process.start()
    assert wait_until(lambda: transport._slot_of(0) is not None), \
        "client never leased a slot"
    slot_before = transport._slot_of(0)
    process.kill()
    process.join(DEADLINE)

    assert transport._slot_of(0) == slot_before  # lease survives the kill
    restarted = _fork_mp().Process(target=stream_steps,
        args=(transport, 0, NUM_STEPS),
        kwargs={"batch_size": 4}, daemon=True)
    restarted.start()
    restarted.join(DEADLINE)
    assert restarted.exitcode == 0
    assert transport._slot_of(0) == slot_before or transport._slot_of(0) is None

    drained: list = []
    deadline = time.monotonic() + DEADLINE
    while time.monotonic() < deadline:
        chunk = transport.poll_many(0, max_messages=64, timeout=0.1)
        drained.extend(chunk)
        if any(isinstance(m, ClientFinished) for m in chunk):
            break
    assert any(isinstance(m, ClientFinished) for m in drained)
    # Finished delivered on the single rank: the lease is recycled for good.
    assert transport._slot_of(0) is None


def test_slot_lease_force_release_recycles_a_dead_clients_slot():
    """``release_client`` (the launcher's permanent-failure path) frees the
    slot immediately, and the next client can lease it."""
    transport = ShmRingTransport(num_server_ranks=1, max_concurrent_clients=1,
        ring_slots=4, ring_slot_bytes=4096,
        lease_timeout=0.2)
    try:
        transport.connect(7)
        transport.push(0, TimeStepMessage(client_id=7, time_step=0, payload=FIELD))
        transport.release_client(7)
        assert transport._slot_of(7) is None
        transport.connect(8)  # no TimeoutError: the slot is free again
        # The dead client's undrained batch is still delivered (attribution
        # travels in the message, not the lease).
        received = transport.poll_many(0, max_messages=8, timeout=1.0)
        assert any(isinstance(m, TimeStepMessage) and m.client_id == 7 for m in received)
    finally:
        transport.shutdown()


def test_push_after_close_counts_dropped():
    transport = ShmRingTransport(num_server_ranks=1, max_concurrent_clients=1)
    try:
        message = TimeStepMessage(client_id=0, time_step=0, payload=FIELD)
        transport.push(0, message)
        transport.close()
        from repro.parallel.transport import RouterClosed

        with pytest.raises(RouterClosed):
            transport.push(0, message)
        assert transport.stats.dropped_messages == 1
        assert transport.stats.messages_routed == 1
    finally:
        transport.shutdown()
