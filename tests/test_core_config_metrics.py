"""Tests for study configuration objects, metrics and result containers."""

import numpy as np
import pytest

from repro.core.config import OfflineStudyConfig, OnlineStudyConfig, SurrogateArchitecture
from repro.core.metrics import (
    BufferPopulationSeries,
    LossHistory,
    ThroughputMeter,
    TrainingMetrics,
    merge_worker_metrics,
)
from repro.core.results import improvement_percent
from repro.utils.exceptions import ConfigurationError
from repro.utils.timing import VirtualClock


def test_online_config_validation():
    with pytest.raises(ConfigurationError):
        OnlineStudyConfig(num_simulations=0)
    with pytest.raises(ConfigurationError):
        OnlineStudyConfig(buffer_threshold=100, buffer_capacity=10)
    with pytest.raises(ConfigurationError):
        OnlineStudyConfig(batch_size=0)


def test_online_config_lr_step_scaling():
    """The LR decay period in batches scales inversely with the GPU count (paper)."""
    base = OnlineStudyConfig(lr_step_samples=10_000, batch_size=10, num_ranks=1)
    assert base.lr_step_batches == 1_000
    two = OnlineStudyConfig(lr_step_samples=10_000, batch_size=10, num_ranks=2)
    assert two.lr_step_batches == 500
    four = OnlineStudyConfig(lr_step_samples=10_000, batch_size=10, num_ranks=4)
    assert four.lr_step_batches == 250


def test_online_config_trainer_config_propagates_fields():
    config = OnlineStudyConfig(batch_size=7, validation_interval=33, max_batches=12,
        batch_compute_delay=0.01)
    trainer = config.trainer_config()
    assert trainer.batch_size == 7
    assert trainer.validation_interval == 33
    assert trainer.max_batches == 12
    assert trainer.batch_compute_delay == 0.01


def test_offline_config_validation_and_lr():
    with pytest.raises(ConfigurationError):
        OfflineStudyConfig(num_epochs=0)
    config = OfflineStudyConfig(lr_step_samples=1000, batch_size=10, num_ranks=2)
    assert config.lr_step_batches == 50


def test_surrogate_architecture_validation():
    with pytest.raises(ConfigurationError):
        SurrogateArchitecture(hidden_sizes=())
    assert SurrogateArchitecture().hidden_sizes == (256, 256)


def test_throughput_meter_windows_with_virtual_clock():
    clock = VirtualClock()

    class TickingClock:
        def now(self):
            clock.advance(0.1)
            return clock.now()

    meter = ThroughputMeter(window=5, clock=TickingClock())
    for _ in range(10):
        meter.record_batch(10)
    assert len(meter.values) == 2
    assert meter.total_samples == 100
    assert meter.total_batches == 10
    # The window spans 4 ticks (first batch opens it): 50 samples / 0.4 s.
    assert meter.values[0] == pytest.approx(125.0, rel=0.01)
    assert meter.mean_throughput() > 0


def test_throughput_meter_empty():
    meter = ThroughputMeter()
    assert meter.mean_throughput() == 0.0
    times, values = meter.series()
    assert times.size == 0 and values.size == 0


def test_loss_history_best_and_final():
    history = LossHistory()
    history.record_train(1, 10, 5.0)
    history.record_train(2, 20, 3.0)
    history.record_validation(1, 10, 4.0)
    history.record_validation(2, 20, 2.5)
    history.record_validation(3, 30, 2.8)
    assert history.best_validation_loss == 2.5
    assert history.final_validation_loss == 2.8
    assert history.final_training_loss == 3.0
    smoothed = history.smoothed_train_losses(window=2)
    assert smoothed.size == 1
    assert smoothed[0] == pytest.approx(4.0)


def test_loss_history_empty_is_nan():
    history = LossHistory()
    assert np.isnan(history.best_validation_loss)
    assert np.isnan(history.final_training_loss)


def test_buffer_population_series():
    series = BufferPopulationSeries()
    series.record(0.0, 10, unseen=4)
    series.record(1.0, 30)
    assert series.max_population() == 30
    assert series.mean_population() == pytest.approx(20.0)
    assert series.unseen == [4, 30]


def test_merge_worker_metrics_sums_throughput():
    def metrics_with(rank, throughput, batches):
        metrics = TrainingMetrics(rank=rank)
        metrics.batches_trained = batches
        metrics.samples_trained = batches * 10
        metrics.throughput.start_time = 0.0
        metrics.throughput.end_time = 10.0
        metrics.throughput.total_samples = int(throughput * 10)
        metrics.losses.record_validation(batches, batches * 10, 1.0 + rank)
        metrics.wall_time = 10.0
        return metrics

    merged = merge_worker_metrics([metrics_with(0, 100, 50), metrics_with(1, 80, 50)])
    assert merged["num_ranks"] == 2
    assert merged["total_batches"] == 100
    assert merged["mean_throughput"] == pytest.approx(180.0)
    assert merged["best_val_mse"] == 1.0  # rank-0 losses
    assert merge_worker_metrics([]) == {}


def test_training_metrics_summary_keys():
    metrics = TrainingMetrics(rank=1)
    summary = metrics.summary()
    assert {"rank", "batches_trained", "mean_throughput", "best_val_mse"} <= set(summary)


def test_improvement_percent():
    assert improvement_percent(100.0, 53.0) == pytest.approx(47.0)
    assert np.isnan(improvement_percent(0.0, 1.0))
    assert np.isnan(improvement_percent(float("nan"), 1.0))
