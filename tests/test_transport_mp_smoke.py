"""End-to-end smoke test: a tiny online study over the multi-process backend.

The paper's deployment shape — clients as real OS processes streaming packed
batches to the server — must train to completion and deliver exactly the
same sample counts as the in-process backend.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments.common import ExperimentScale, build_case, run_online_with_buffer


@pytest.fixture(scope="module")
def smoke_scale() -> ExperimentScale:
    return replace(
        ExperimentScale(),
        nx=8,
        ny=8,
        num_steps=8,
        num_simulations=2,
        hidden_sizes=(8, 8),
        buffer_capacity=32,
        buffer_threshold=4,
        client_step_delay=0.0,
        inter_series_delay=0.0,
        batch_compute_delay=0.0,
        max_concurrent_clients=2,
    )


def test_mp_study_trains_and_matches_inproc_sample_counts(smoke_scale):
    case = build_case(smoke_scale)
    expected_unique = smoke_scale.num_simulations * smoke_scale.num_steps

    mp_result = run_online_with_buffer(
        "fifo", scale=smoke_scale, case=case, use_series=False,
        transport="mp", transport_batch_size=4,
    )
    inproc_result = run_online_with_buffer(
        "fifo", scale=smoke_scale, case=case, use_series=False,
    )

    for result, label in ((mp_result, "mp"), (inproc_result, "inproc")):
        received = sum(s.samples_received for s in result.server.aggregator_stats)
        assert received == expected_unique, label
        assert result.launcher.clients_completed == smoke_scale.num_simulations, label
        assert result.launcher.clients_failed == 0, label
        assert np.isfinite(result.metrics.losses.final_training_loss), label

    assert mp_result.config_summary["transport"] == "mp"
    assert mp_result.launcher.total_steps_sent == inproc_result.launcher.total_steps_sent

    # Transport accounting: both backends routed every unique time step plus
    # the hello/finished control messages, and dropped nothing.
    stats = mp_result.server.transport_stats
    assert stats.messages_routed == expected_unique + 2 * smoke_scale.num_simulations
    assert stats.dropped_messages == 0
    assert stats.bytes_routed > 0
