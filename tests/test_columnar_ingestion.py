"""Columnar ingestion: adoption semantics and the record compatibility view.

The SoA data plane replaces per-message objects with :class:`ColumnBatch`
chunks from the wire to the forward pass.  These tests pin its two
contracts: an adopted chunk is copied **exactly once** into the column store
(``Transport.payloads_owned`` semantics carried over), and
:class:`SampleRecord` remains available everywhere as a thin view over the
columns — same fields, same ``key()``, zero extra copies for dense data.
"""

import numpy as np
import pytest

from repro.buffers import FIFOBuffer, make_buffer
from repro.buffers.columns import ColumnBatch, ColumnStore, SampleRecord
from repro.parallel.messages import (
    ClientFinished,
    ClientHello,
    TimeStepMessage,
    column_batch_to_messages,
    columnize,
    pack_many,
    unpack_columns,
    unpack_many,
)

FIELD_LEN = 6


def make_steps(count, client_id=0, start=0, field_len=FIELD_LEN):
    return [
        TimeStepMessage(
            client_id=client_id,
            time_step=start + index,
            time_value=(start + index) * 0.5,
            parameters=(1.5, -2.0),
            payload=np.arange(field_len, dtype=np.float32) * (start + index + 1),
            sequence_number=100 + start + index,
        )
        for index in range(count)
    ]


# ------------------------------------------------------------ wire decoding
def test_unpack_columns_matches_unpack_many_fieldwise():
    wire = pack_many(make_steps(9, client_id=3))
    chunk = unpack_columns(wire)
    messages = unpack_many(wire)
    assert chunk is not None and len(chunk) == len(messages)
    for row, message in enumerate(messages):
        assert chunk.source_ids[row] == message.client_id
        assert chunk.time_steps[row] == message.time_step
        assert chunk.sequence_numbers[row] == message.sequence_number
        np.testing.assert_array_equal(chunk.targets[row], message.payload)
        np.testing.assert_array_equal(
            chunk.inputs[row], [*message.parameters, message.time_value]
        )


def test_unpack_columns_owns_its_memory():
    wire = pack_many(make_steps(4))
    chunk = unpack_columns(wire)
    wire_bytes = np.frombuffer(wire, dtype=np.uint8)
    for column in (chunk.inputs, chunk.targets, chunk.source_ids, chunk.time_steps):
        assert not np.shares_memory(column, wire_bytes)
    assert chunk.inputs.dtype == np.float64
    assert chunk.targets.dtype == np.float32


def test_unpack_columns_declines_control_and_ragged_batches():
    steps = make_steps(3)
    assert unpack_columns(pack_many([ClientHello(client_id=0)])) is None
    assert unpack_columns(pack_many([*steps, ClientFinished(client_id=0)])) is None
    ragged = steps + make_steps(1, start=3, field_len=FIELD_LEN + 2)
    assert unpack_columns(pack_many(ragged)) is None


def test_columnize_and_back_round_trips_message_runs():
    steps = make_steps(5, client_id=2)
    mixed = [ClientHello(client_id=2), *steps, ClientFinished(client_id=2)]
    items = columnize(mixed)
    assert isinstance(items[0], ClientHello)
    assert isinstance(items[1], ColumnBatch) and len(items[1]) == 5
    assert isinstance(items[2], ClientFinished)
    assert column_batch_to_messages(items[1]) == steps


# ---------------------------------------------------------------- ColumnBatch
def test_column_batch_slices_are_views_not_copies():
    chunk = unpack_columns(pack_many(make_steps(8)))
    part = chunk[2:6]
    assert len(part) == 4
    assert np.shares_memory(part.inputs, chunk.inputs)
    assert np.shares_memory(part.targets, chunk.targets)
    np.testing.assert_array_equal(part.time_steps, [2, 3, 4, 5])


def test_column_batch_compress_and_concat():
    chunk = unpack_columns(pack_many(make_steps(6)))
    keep = np.array([True, False, True, True, False, True])
    kept = chunk.compress(keep)
    np.testing.assert_array_equal(kept.time_steps, [0, 2, 3, 5])
    rejoined = ColumnBatch.concat([kept[:2], kept[2:]])
    np.testing.assert_array_equal(rejoined.time_steps, kept.time_steps)
    np.testing.assert_array_equal(rejoined.targets, kept.targets)
    assert chunk.compatible_with(kept)


def test_column_batch_records_view_is_zero_copy_and_key_compatible():
    chunk = unpack_columns(pack_many(make_steps(5, client_id=7)))
    records = chunk.records()
    assert [record.key() for record in records] == chunk.keys()
    for row, record in enumerate(records):
        assert isinstance(record, SampleRecord)
        assert record.inputs.base is chunk.inputs
        assert record.target.base is chunk.targets
        assert record.source_id == 7 and record.time_step == row


def test_from_records_round_trip():
    original = unpack_columns(pack_many(make_steps(4)))
    rebuilt = ColumnBatch.from_records(original.records())
    np.testing.assert_array_equal(rebuilt.inputs, original.inputs)
    np.testing.assert_array_equal(rebuilt.targets, original.targets)
    np.testing.assert_array_equal(rebuilt.source_ids, original.source_ids)


# ----------------------------------------------------------------- ColumnStore
def test_store_insert_copies_the_chunk_exactly_once():
    """put_many(ColumnBatch) adopts by one vectorized copy into the columns;
    mutating the source afterwards must not reach the stored rows."""
    buffer = FIFOBuffer(capacity=16)
    chunk = unpack_columns(pack_many(make_steps(6)))
    assert buffer.put_many(chunk) == 6
    store = buffer._store
    assert not np.shares_memory(store.targets, chunk.targets)
    assert not np.shares_memory(store.inputs, chunk.inputs)
    chunk.targets[:] = -1.0  # the store must hold its own copy
    batch = buffer.get_batch_columns(6, timeout=1.0)
    np.testing.assert_array_equal(
        batch.targets[2], np.arange(FIELD_LEN, dtype=np.float32) * 3
    )


def test_gathered_batches_survive_slot_recycling():
    """A drawn batch owns its rows: refilling the freed slots cannot corrupt
    batches already handed to the trainer."""
    buffer = FIFOBuffer(capacity=4)
    buffer.put_many(unpack_columns(pack_many(make_steps(4))))
    first = buffer.get_batch_columns(4, timeout=1.0)
    snapshot = first.targets.copy()
    buffer.put_many(unpack_columns(pack_many(make_steps(4, start=50))))
    buffer.get_batch_columns(4, timeout=1.0)
    np.testing.assert_array_equal(first.targets, snapshot)


@pytest.mark.parametrize("kind", ["fifo", "firo", "reservoir"])
def test_column_insert_equals_record_insert(kind):
    """Inserting a chunk and inserting its record view are indistinguishable."""
    chunk = unpack_columns(pack_many(make_steps(12)))
    by_columns = make_buffer(kind, capacity=32, threshold=0, seed=11)
    by_records = make_buffer(kind, capacity=32, threshold=0, seed=11)
    assert by_columns.put_many(chunk) == 12
    assert by_records.put_many(chunk.records()) == 12
    assert by_columns.snapshot() == by_records.snapshot()
    for buffer in (by_columns, by_records):
        buffer.signal_reception_over()
    a = by_columns.get_batch_columns(12, timeout=1.0)
    b = by_records.get_batch_columns(12, timeout=1.0)
    np.testing.assert_array_equal(a.inputs, b.inputs)
    np.testing.assert_array_equal(a.targets, b.targets)
    np.testing.assert_array_equal(a.source_ids, b.source_ids)
    np.testing.assert_array_equal(a.time_steps, b.time_steps)


def test_store_migrates_to_object_rows_for_ragged_samples():
    store = ColumnStore(4)
    store.write_record(0, SampleRecord(np.ones(3), np.ones(2, np.float32), 0, 0))
    assert not store.object_rows
    # A row of a different width forces the object-rows migration; the dense
    # row written before must survive it.
    store.write_record(1, SampleRecord(np.ones(5), np.ones(2, np.float32), 0, 1))
    assert store.object_rows
    np.testing.assert_array_equal(store.record_at(0).inputs, np.ones(3))
    np.testing.assert_array_equal(store.record_at(1).inputs, np.ones(5))
    batch = store.gather(np.array([0, 1]))
    assert not batch.is_dense
    assert [row.shape for row in batch.inputs] == [(3,), (5,)]


def test_record_at_copies_dense_rows_out():
    store = ColumnStore(2)
    store.write_record(0, SampleRecord(np.ones(3), np.ones(2, np.float32), 5, 9))
    record = store.record_at(0)
    assert record.key() == (5, 9)
    store.inputs[0] = -1.0
    np.testing.assert_array_equal(record.inputs, np.ones(3))
