"""End-to-end smoke test: a tiny online study over the TCP backend.

The socket deployment shape — forked client processes dialing the server's
asyncio front door and streaming length-prefixed packed frames — must train
to completion and deliver exactly the same sample counts as the in-process
backend, with nothing dropped on the loopback path.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments.common import ExperimentScale, build_case, run_online_with_buffer
from repro.parallel.transport import TcpOptions, TransportConfig


@pytest.fixture(scope="module")
def smoke_scale() -> ExperimentScale:
    return replace(
        ExperimentScale(),
        nx=8,
        ny=8,
        num_steps=8,
        num_simulations=2,
        hidden_sizes=(8, 8),
        buffer_capacity=32,
        buffer_threshold=4,
        client_step_delay=0.0,
        inter_series_delay=0.0,
        batch_compute_delay=0.0,
        max_concurrent_clients=2,
    )


@pytest.mark.parametrize("compression", [None, "zlib"])
def test_tcp_study_trains_and_matches_inproc_sample_counts(smoke_scale, compression):
    case = build_case(smoke_scale)
    expected_unique = smoke_scale.num_simulations * smoke_scale.num_steps

    tcp_result = run_online_with_buffer(
        "fifo", scale=smoke_scale, case=case, use_series=False,
        transport=TransportConfig(
            backend="tcp", batch_size=4, tcp=TcpOptions(compression=compression)
        ),
    )
    inproc_result = run_online_with_buffer(
        "fifo", scale=smoke_scale, case=case, use_series=False,
    )

    for result, label in ((tcp_result, "tcp"), (inproc_result, "inproc")):
        received = sum(s.samples_received for s in result.server.aggregator_stats)
        assert received == expected_unique, label
        assert result.launcher.clients_completed == smoke_scale.num_simulations, label
        assert result.launcher.clients_failed == 0, label
        assert np.isfinite(result.metrics.losses.final_training_loss), label

    assert tcp_result.config_summary["transport"] == "tcp"
    assert tcp_result.launcher.total_steps_sent == inproc_result.launcher.total_steps_sent

    # Transport accounting: every unique time step plus the hello/finished
    # control messages crossed the sockets (counted at decode time in the
    # server process), and the loopback path dropped nothing.
    stats = tcp_result.server.transport_stats
    assert stats.messages_routed == expected_unique + 2 * smoke_scale.num_simulations
    assert stats.dropped_messages == 0
    assert stats.torn_batches == 0
    assert stats.bytes_routed > 0


def test_tcp_study_multi_rank(smoke_scale):
    """Two server ranks: frames route by the header's rank byte."""
    case = build_case(smoke_scale)
    expected_unique = smoke_scale.num_simulations * smoke_scale.num_steps

    result = run_online_with_buffer(
        "fifo", scale=smoke_scale, case=case, use_series=False, num_ranks=2,
        transport=TransportConfig(backend="tcp", batch_size=2),
    )

    received = sum(s.samples_received for s in result.server.aggregator_stats)
    assert received == expected_unique
    assert result.launcher.clients_failed == 0
    stats = result.server.transport_stats
    # Both ranks saw traffic and every message (steps + per-rank control
    # broadcasts) is accounted.
    assert set(stats.per_rank_messages) == {0, 1}
    assert stats.messages_routed == expected_unique + 2 * 2 * smoke_scale.num_simulations
    assert stats.dropped_messages == 0
