"""Tests for the fault-tolerance primitives (message log, heartbeats, checkpointer)."""

import pytest

from repro.nn import Adam, MLPConfig, build_mlp, state_dict_equal
from repro.server.checkpointing import ServerCheckpointer
from repro.server.fault import HeartbeatMonitor, MessageLog
from repro.utils.exceptions import CheckpointError


def test_message_log_deduplicates():
    log = MessageLog()
    assert log.register(1, 1)
    assert log.register(1, 2)
    assert not log.register(1, 1)  # duplicate after client restart
    assert log.register(2, 1)      # other client, same step index: not a duplicate
    assert log.duplicates_discarded == 1
    assert log.count(1) == 2
    assert log.received_steps(1) == {1, 2}


def test_message_log_state_roundtrip():
    log = MessageLog()
    for step in range(5):
        log.register(7, step)
    state = log.state()
    restored = MessageLog()
    restored.restore(state)
    assert restored.received_steps(7) == set(range(5))
    assert not restored.register(7, 3)


def test_heartbeat_monitor_detects_silent_clients():
    monitor = HeartbeatMonitor(timeout=10.0)
    monitor.touch(1, timestamp=0.0)
    monitor.touch(2, timestamp=5.0)
    unresponsive = monitor.unresponsive_clients(now=12.0)
    assert [cid for cid, _ in unresponsive] == [1]
    silence = dict(unresponsive)[1]
    assert silence == pytest.approx(12.0)


def test_heartbeat_monitor_ignores_finished_clients():
    monitor = HeartbeatMonitor(timeout=1.0)
    monitor.touch(1, timestamp=0.0)
    monitor.mark_finished(1)
    assert monitor.unresponsive_clients(now=100.0) == []
    assert monitor.tracked_clients() == [1]


def test_heartbeat_monitor_progress_monotone():
    monitor = HeartbeatMonitor()
    monitor.touch(3, progress=5.0, timestamp=0.0)
    monitor.touch(3, progress=2.0, timestamp=1.0)
    assert monitor._clients[3].progress == 5.0


def _model():
    return build_mlp(MLPConfig(in_features=3, hidden_sizes=(8,), out_features=4, seed=0))


def test_server_checkpointer_save_restore(tmp_path):
    model = _model()
    optimizer = Adam(model.parameters(), lr=1e-3)
    log = MessageLog()
    log.register(0, 1)
    checkpointer = ServerCheckpointer(directory=tmp_path, interval_batches=10, rank=0)
    assert not checkpointer.should_checkpoint(5)
    assert checkpointer.should_checkpoint(10)
    checkpointer.save(model, optimizer, batches_trained=10, samples_trained=100, message_log=log)

    fresh_model = build_mlp(MLPConfig(in_features=3, hidden_sizes=(8,), out_features=4, seed=9))
    fresh_optimizer = Adam(fresh_model.parameters(), lr=1e-3)
    fresh_log = MessageLog()
    metadata = ServerCheckpointer(directory=tmp_path, rank=0).restore(
        fresh_model, fresh_optimizer, fresh_log
    )
    assert metadata["batches_trained"] == 10
    assert state_dict_equal(model.state_dict(), fresh_model.state_dict())
    assert not fresh_log.register(0, 1)  # dedup state survived the restart


def test_server_checkpointer_prunes_old_generations(tmp_path):
    model = _model()
    checkpointer = ServerCheckpointer(directory=tmp_path, interval_batches=1, rank=0, keep_last=2)
    for generation in range(4):
        checkpointer.save(model, None, batches_trained=generation, samples_trained=0)
    archives = list(tmp_path.glob("*.npz"))
    assert len(archives) == 2


def test_server_checkpointer_restore_without_checkpoint(tmp_path):
    with pytest.raises(CheckpointError):
        ServerCheckpointer(directory=tmp_path, rank=0).restore(_model())


def test_server_checkpointer_per_rank_namespacing(tmp_path):
    model = _model()
    ServerCheckpointer(directory=tmp_path, rank=0).save(model, None, 1, 10)
    ServerCheckpointer(directory=tmp_path, rank=1).save(model, None, 2, 20)
    meta0 = ServerCheckpointer(directory=tmp_path, rank=0).restore(_model())
    meta1 = ServerCheckpointer(directory=tmp_path, rank=1).restore(_model())
    assert meta0["batches_trained"] == 1
    assert meta1["batches_trained"] == 2
