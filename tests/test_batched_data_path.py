"""Property tests for the vectorized batched buffer path.

``get_batch`` extracts a whole batch under a single lock acquisition with one
vectorized RNG call per chunk; ``get_batch_per_sample`` is the reference path
built from repeated ``get`` calls.  These tests assert that the two paths are
semantically identical for all three buffer kinds: same bookkeeping counters
(seen/unseen, evictions, repeated reads), same threshold blocking, same
drain-mode emptying and exhaustion contract, and the same selection
distribution.
"""

import threading

import numpy as np
import pytest

from repro.buffers import FIFOBuffer, FIROBuffer, ReservoirBuffer, make_buffer
from repro.buffers.base import SampleRecord
from repro.buffers.columns import ColumnBatch


def record(index: int) -> SampleRecord:
    return SampleRecord(
        inputs=np.array([float(index)], dtype=np.float32),
        target=np.array([float(index)], dtype=np.float32),
        source_id=index // 1000,
        time_step=index % 1000,
    )


def records(count):
    return [record(i) for i in range(count)]


def fill(buffer, count):
    for item in records(count):
        buffer.put(item)


BATCH_GETTERS = {
    "batched": lambda buf, n, **kw: buf.get_batch(n, **kw),
    "per_sample": lambda buf, n, **kw: buf.get_batch_per_sample(n, **kw),
}


# --------------------------------------------------------------- equivalence
@pytest.mark.parametrize("path", sorted(BATCH_GETTERS))
@pytest.mark.parametrize("kind", ["fifo", "firo", "reservoir"])
def test_drain_mode_yields_every_sample_exactly_once(kind, path):
    """After reception, batches empty the buffer without loss or repetition."""
    buffer = make_buffer(kind, capacity=100, threshold=0, seed=3)
    fill(buffer, 67)
    buffer.signal_reception_over()
    drawn = []
    while True:
        batch = BATCH_GETTERS[path](buffer, 10, timeout=1.0)
        if not batch:
            break
        drawn.extend(item.key() for item in batch)
    assert len(drawn) == 67
    assert len(set(drawn)) == 67
    assert len(buffer) == 0
    assert buffer.exhausted
    assert buffer.total_got == 67
    # The last batch is the short remainder, identically on both paths.
    assert len(drawn) % 10 == 7


@pytest.mark.parametrize("path", sorted(BATCH_GETTERS))
def test_fifo_batches_preserve_arrival_order(path):
    buffer = FIFOBuffer(capacity=50)
    fill(buffer, 25)
    buffer.signal_reception_over()
    drawn = []
    while True:
        batch = BATCH_GETTERS[path](buffer, 8, timeout=1.0)
        if not batch:
            break
        drawn.extend(int(item.inputs[0]) for item in batch)
    assert drawn == list(range(25))


@pytest.mark.parametrize("path", sorted(BATCH_GETTERS))
def test_firo_threshold_blocks_batches_identically(path):
    """A batch may only draw the population down to the threshold, then waits.

    Both paths draw the available ``len - threshold`` samples, wait for more
    data, and on timeout return the partial batch (never discarding drawn
    samples), leaving the population exactly at the threshold.  A timeout
    with nothing drawn raises.
    """
    buffer = FIROBuffer(capacity=50, threshold=5, seed=1)
    fill(buffer, 8)
    batch = BATCH_GETTERS[path](buffer, 10, timeout=0.05)
    assert len(batch) == 3
    assert len(buffer) == 5
    assert buffer.total_got == 3
    # Population at the threshold: a further batch times out empty-handed.
    with pytest.raises(TimeoutError):
        BATCH_GETTERS[path](buffer, 10, timeout=0.05)
    # New data re-enables extraction; reception end drains the rest.
    buffer.put(record(100))
    buffer.signal_reception_over()
    batch = BATCH_GETTERS[path](buffer, 10, timeout=1.0)
    assert len(batch) == 6


@pytest.mark.parametrize("path", sorted(BATCH_GETTERS))
def test_reservoir_threshold_blocks_batches_identically(path):
    buffer = ReservoirBuffer(capacity=50, threshold=4, seed=1)
    fill(buffer, 4)
    with pytest.raises(TimeoutError):
        BATCH_GETTERS[path](buffer, 3, timeout=0.05)
    buffer.put(record(4))
    batch = BATCH_GETTERS[path](buffer, 3, timeout=1.0)
    assert len(batch) == 3


@pytest.mark.parametrize("path", sorted(BATCH_GETTERS))
def test_reservoir_reception_bookkeeping_invariants(path):
    """Population is preserved during reception; counters match the draws.

    Every drawn-for-the-first-time sample moves unseen -> seen, and every
    other draw is a repeated read, so ``repeated_reads == total_got -
    num_seen`` on both paths.
    """
    buffer = ReservoirBuffer(capacity=100, threshold=0, seed=5)
    fill(buffer, 30)
    for _ in range(12):
        batch = BATCH_GETTERS[path](buffer, 10, timeout=1.0)
        assert len(batch) == 10
        assert len(buffer) == 30  # nothing leaves while reception is ongoing
        assert buffer.num_seen + buffer.num_unseen == 30
        assert buffer.repeated_reads == buffer.total_got - buffer.num_seen
    assert buffer.total_got == 120
    # With 120 draws over 30 samples, repetition must have occurred.
    assert buffer.repeated_reads > 0


@pytest.mark.parametrize("path", sorted(BATCH_GETTERS))
def test_reservoir_drain_mode_counts_repeated_reads_for_seen(path):
    buffer = ReservoirBuffer(capacity=60, threshold=0, seed=2)
    fill(buffer, 40)
    # Mark some samples as seen first.
    BATCH_GETTERS[path](buffer, 15, timeout=1.0)
    seen_before = buffer.num_seen
    repeated_before = buffer.repeated_reads
    buffer.signal_reception_over()
    drained = []
    while True:
        batch = BATCH_GETTERS[path](buffer, 7, timeout=1.0)
        if not batch:
            break
        drained.extend(item.key() for item in batch)
    # Drain removes each stored sample exactly once ...
    assert len(drained) == 40
    assert len(set(drained)) == 40
    assert len(buffer) == 0
    # ... and draws that hit the seen list count as repeated reads.
    assert buffer.repeated_reads == repeated_before + seen_before


def test_reservoir_put_many_evicts_only_seen_samples():
    """Bulk insertion preserves Algorithm 1's eviction rule (lines 21-26)."""
    per_sample = ReservoirBuffer(capacity=20, threshold=0, seed=9)
    batched = ReservoirBuffer(capacity=20, threshold=0, seed=9)
    for buffer in (per_sample, batched):
        fill(buffer, 20)
        while buffer.num_seen < 10:  # repeats permitting, mark 10 as seen
            buffer.get(timeout=1.0)
    assert batched.num_seen == per_sample.num_seen  # identical seeds

    fresh = [record(100 + i) for i in range(8)]
    for item in fresh:
        per_sample.put(item)
    assert batched.put_many(fresh) == 8

    for buffer in (per_sample, batched):
        assert buffer.evicted_seen == 8
        assert len(buffer) == 20
        # All fresh (unseen) samples must still be present: drain and check.
        buffer.signal_reception_over()
        keys = set()
        while True:
            batch = buffer.get_batch(10, timeout=1.0)
            if not batch:
                break
            keys.update(item.key() for item in batch)
        for item in fresh:
            assert item.key() in keys


@pytest.mark.parametrize("kind", ["fifo", "firo", "reservoir"])
def test_put_many_partial_insert_on_timeout(kind):
    buffer = make_buffer(kind, capacity=5, threshold=0, seed=0)
    inserted = buffer.put_many(records(8), timeout=0.05)
    assert inserted == 5
    assert len(buffer) == 5
    assert buffer.total_put == 5


def test_put_many_blocks_until_consumer_frees_space():
    buffer = FIFOBuffer(capacity=4)
    done = threading.Event()

    def producer():
        assert buffer.put_many(records(10), timeout=5.0) == 10
        done.set()

    thread = threading.Thread(target=producer, daemon=True)
    thread.start()
    assert not done.wait(0.1)  # blocked: capacity 4 < 10
    consumed = []
    while len(consumed) < 10:
        consumed.extend(buffer.get_batch(2, timeout=2.0))
    assert done.wait(2.0)
    thread.join()
    assert [int(item.inputs[0]) for item in consumed] == list(range(10))


@pytest.mark.parametrize("kind", ["fifo", "firo", "reservoir"])
def test_put_many_matches_per_sample_counters(kind):
    one_by_one = make_buffer(kind, capacity=300, threshold=0, seed=4)
    bulk = make_buffer(kind, capacity=300, threshold=0, seed=4)
    for item in records(150):
        one_by_one.put(item)
    assert bulk.put_many(records(150)) == 150
    assert one_by_one.snapshot() == bulk.snapshot()


# ----------------------------------------------------------- columnar parity
def assert_batches_byte_identical(a: ColumnBatch, b: ColumnBatch) -> None:
    assert a.inputs.tobytes() == b.inputs.tobytes()
    assert a.targets.tobytes() == b.targets.tobytes()
    assert a.source_ids.tobytes() == b.source_ids.tobytes()
    assert a.time_steps.tobytes() == b.time_steps.tobytes()


@pytest.mark.parametrize("kind", ["fifo", "firo", "reservoir"])
def test_columnar_ingest_yields_byte_identical_batches(kind):
    """Feeding ColumnBatch chunks and feeding their record views must be
    indistinguishable: same RNG consumption, same slots, byte-identical
    batches during reception and through the drain."""
    by_columns = make_buffer(kind, capacity=64, threshold=0, seed=7)
    by_records = make_buffer(kind, capacity=64, threshold=0, seed=7)
    items = records(48)
    for start in range(0, 48, 12):
        chunk = ColumnBatch.from_records(items[start : start + 12])
        assert by_columns.put_many(chunk) == 12
        assert by_records.put_many(items[start : start + 12]) == 12
    for _ in range(4):  # reception-mode draws consume identical RNG streams
        a = by_columns.get_batch_columns(10, timeout=1.0)
        b = by_records.get_batch_columns(10, timeout=1.0)
        assert_batches_byte_identical(a, b)
    assert by_columns.snapshot() == by_records.snapshot()
    by_columns.signal_reception_over()
    by_records.signal_reception_over()
    while True:
        a = by_columns.get_batch_columns(10, timeout=1.0)
        b = by_records.get_batch_columns(10, timeout=1.0)
        assert_batches_byte_identical(a, b)
        if not len(a):
            break
    assert by_columns.snapshot() == by_records.snapshot()


def test_fifo_wraparound_preserves_columnar_arrival_order():
    """Ring-index wraparound: chunks inserted across the capacity boundary
    come back out in exact arrival order on both insert paths."""
    by_columns = FIFOBuffer(capacity=10)
    by_records = FIFOBuffer(capacity=10)
    items = records(30)
    cursor = 0
    drawn_cols, drawn_recs = [], []
    for put_count, get_count in [(10, 7), (7, 6), (6, 8), (7, 9)]:
        chunk = ColumnBatch.from_records(items[cursor : cursor + put_count])
        assert by_columns.put_many(chunk) == put_count
        assert by_records.put_many(items[cursor : cursor + put_count]) == put_count
        cursor += put_count
        a = by_columns.get_batch_columns(get_count, timeout=1.0)
        b = by_records.get_batch_columns(get_count, timeout=1.0)
        assert_batches_byte_identical(a, b)
        drawn_cols.extend(a.keys())
        drawn_recs.extend(b.keys())
    assert drawn_cols == drawn_recs == [r.key() for r in items[: len(drawn_cols)]]


def test_reservoir_columnar_eviction_matches_per_record():
    """Algorithm 1's evict-only-seen rule is pure index arithmetic now; the
    chunk insert must pick the same victims as the record insert."""
    by_columns = ReservoirBuffer(capacity=20, threshold=0, seed=9)
    by_records = ReservoirBuffer(capacity=20, threshold=0, seed=9)
    for buffer in (by_columns, by_records):
        fill(buffer, 20)
        while buffer.num_seen < 10:
            buffer.get(timeout=1.0)
    fresh = [record(100 + i) for i in range(8)]
    assert by_columns.put_many(ColumnBatch.from_records(fresh)) == 8
    assert by_records.put_many(fresh) == 8
    assert by_columns.evicted_seen == by_records.evicted_seen == 8
    assert by_columns.snapshot() == by_records.snapshot()
    for buffer in (by_columns, by_records):
        buffer.signal_reception_over()
    a = by_columns.get_batch_columns(20, timeout=1.0)
    b = by_records.get_batch_columns(20, timeout=1.0)
    assert_batches_byte_identical(a, b)
    survivors = set(a.keys())
    for item in fresh:  # unseen samples are never evicted
        assert item.key() in survivors


# -------------------------------------------------------------- distribution
def selection_frequencies(kind, path, population, batch_size, trials, seed_base):
    """Empirical per-key selection frequency of the first batch drawn."""
    counts = {record(i).key(): 0 for i in range(population)}
    for trial in range(trials):
        buffer = make_buffer(kind, capacity=population, threshold=0, seed=seed_base + trial)
        fill(buffer, population)
        batch = BATCH_GETTERS[path](buffer, batch_size, timeout=1.0)
        assert len(batch) == batch_size
        for item in batch:
            counts[item.key()] += 1
    total = batch_size * trials
    return np.array([counts[record(i).key()] for i in range(population)]) / total


@pytest.mark.parametrize("kind", ["firo", "reservoir"])
def test_batched_selection_distribution_matches_per_sample(kind):
    """Both paths select uniformly over the population (same distribution).

    With 400 trials of batch 8 over 16 samples, each key's expected selection
    share is 1/16; both paths must sit within the same tolerance band, and
    their per-key frequencies must agree closely with each other.
    """
    population, batch_size, trials = 16, 8, 400
    freq = {
        path: selection_frequencies(kind, path, population, batch_size, trials,
                                    seed_base=1000)
        for path in BATCH_GETTERS
    }
    expected = 1.0 / population
    for path, values in freq.items():
        assert values.min() > 0.5 * expected, (kind, path)
        assert values.max() < 1.6 * expected, (kind, path)
    # Cross-path agreement: same uniform distribution.
    assert np.abs(freq["batched"] - freq["per_sample"]).max() < 0.5 * expected
