"""Tests for the finite-difference stencils."""

import numpy as np
import pytest

from repro.solvers.stencil import (
    apply_laplacian_field,
    boundary_contribution,
    build_laplacian,
    embed_interior,
    interior_shape,
)


def test_build_laplacian_shape_and_symmetry():
    ny, nx = 8, 6
    lap = build_laplacian(ny, nx, dx=0.1, dy=0.2)
    n = (ny - 2) * (nx - 2)
    assert lap.shape == (n, n)
    dense = lap.toarray()
    assert np.allclose(dense, dense.T)


def test_laplacian_negative_semidefinite():
    lap = build_laplacian(7, 7, dx=0.2, dy=0.2).toarray()
    eigenvalues = np.linalg.eigvalsh(lap)
    assert np.all(eigenvalues < 0.0)  # Dirichlet Laplacian is negative definite


def test_laplacian_matches_direct_stencil_application():
    """The assembled sparse operator equals the hand-written stencil + boundary terms."""
    rng = np.random.default_rng(0)
    ny, nx, dx, dy = 9, 7, 0.15, 0.25
    west, east, south, north = 100.0, 200.0, 300.0, 400.0
    interior = rng.random((ny - 2, nx - 2))
    field = embed_interior(interior, ny, nx, west, east, south, north)

    direct = apply_laplacian_field(field, dx, dy)
    lap = build_laplacian(ny, nx, dx, dy)
    boundary = boundary_contribution(ny, nx, dx, dy, west, east, south, north)
    assembled = (lap @ interior.ravel() + boundary).reshape(ny - 2, nx - 2)
    assert np.allclose(direct, assembled)


def test_laplacian_of_linear_field_is_zero():
    """The 5-point stencil is exact for affine fields."""
    ny, nx = 10, 12
    y, x = np.mgrid[0:ny, 0:nx]
    field = 2.0 + 3.0 * x + 4.0 * y
    lap = apply_laplacian_field(field, dx=1.0, dy=1.0)
    assert np.allclose(lap, 0.0, atol=1e-10)


def test_laplacian_of_quadratic_field():
    """Laplacian of x^2 + y^2 is exactly 4 for the 5-point stencil."""
    ny, nx = 10, 10
    y, x = np.mgrid[0:ny, 0:nx].astype(float)
    field = x**2 + y**2
    lap = apply_laplacian_field(field, dx=1.0, dy=1.0)
    assert np.allclose(lap, 4.0)


def test_boundary_contribution_only_touches_edges():
    ny, nx = 8, 8
    contribution = boundary_contribution(ny, nx, 0.1, 0.1, 1.0, 2.0, 3.0, 4.0).reshape(ny - 2, nx - 2)
    assert np.all(contribution[1:-1, 1:-1] == 0.0)
    assert np.all(contribution[:, 0] != 0.0)
    assert np.all(contribution[0, :] != 0.0)


def test_embed_interior_sets_boundaries():
    interior = np.zeros((3, 3))
    field = embed_interior(interior, 5, 5, west=1.0, east=2.0, south=3.0, north=4.0)
    assert field.shape == (5, 5)
    assert np.all(field[1:-1, 0] == 1.0)
    assert np.all(field[1:-1, -1] == 2.0)
    assert np.all(field[0, 1:-1] == 3.0)
    assert np.all(field[-1, 1:-1] == 4.0)
    assert field[0, 0] == pytest.approx(2.0)  # corner = mean of adjacent edges


def test_build_laplacian_validation():
    with pytest.raises(ValueError):
        build_laplacian(2, 5, 0.1, 0.1)


def test_interior_shape_helper():
    assert interior_shape(10, 7) == (8, 5)
