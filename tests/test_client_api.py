"""Tests for the client API and the simulation client."""

import numpy as np
import pytest

from repro.client.api import ClientAPI
from repro.client.simulation_client import ClientRunResult, SimulationClient, SimulationFailure
from repro.parallel.messages import ClientFinished, ClientHello, Heartbeat, TimeStepMessage
from repro.parallel.transport import MessageRouter
from repro.solvers.heat2d import HeatEquationConfig, HeatEquationSolver, HeatParameters


def drain(router: MessageRouter, rank: int):
    messages = []
    while True:
        message = router.poll(rank, timeout=0.01)
        if message is None:
            return messages
        messages.append(message)


def test_client_api_lifecycle_and_messages():
    router = MessageRouter(2)
    api = ClientAPI(router, client_id=3)
    api.init_communication(parameters=(1.0, 2.0, 3.0, 4.0, 5.0), num_time_steps=4,
        field_shape=(4, 4))
    for step in range(1, 4):
        api.send(step, step * 0.01, (1.0, 2.0, 3.0, 4.0, 5.0), np.ones((4, 4)) * step)
    api.send_heartbeat(timestamp=1.0, progress=0.5)
    api.finalize_communication()

    rank0 = drain(router, 0)
    rank1 = drain(router, 1)
    all_messages = rank0 + rank1
    assert sum(isinstance(m, ClientHello) for m in all_messages) == 2  # broadcast
    assert sum(isinstance(m, ClientFinished) for m in all_messages) == 2
    assert sum(isinstance(m, Heartbeat) for m in all_messages) == 1
    time_steps = [m for m in all_messages if isinstance(m, TimeStepMessage)]
    assert len(time_steps) == 3
    assert all(m.payload.dtype == np.float32 for m in time_steps)
    assert api.messages_sent == 3


def test_client_api_round_robin_starts_at_client_id():
    router = MessageRouter(4)
    api = ClientAPI(router, client_id=2)
    api.init_communication((0.0,), 1, ())
    rank = None
    # The first time step of client 2 must land on rank 2.
    for candidate in range(4):
        if router.pending(candidate):
            drain(router, candidate)
    api.send(1, 0.01, (0.0,), np.zeros(2))
    for candidate in range(4):
        pending = drain(router, candidate)
        if any(isinstance(m, TimeStepMessage) for m in pending):
            rank = candidate
    assert rank == 2


def test_client_api_misuse_raises():
    router = MessageRouter(1)
    api = ClientAPI(router, client_id=0)
    with pytest.raises(RuntimeError):
        api.send(1, 0.01, (0.0,), np.zeros(2))
    api.init_communication((0.0,), 1, ())
    with pytest.raises(RuntimeError):
        api.init_communication((0.0,), 1, ())
    api.finalize_communication()
    with pytest.raises(RuntimeError):
        api.send(1, 0.01, (0.0,), np.zeros(2))


def make_client(router, client_id=0, num_steps=4, fail_at_step=None, checkpoint=True):
    config = HeatEquationConfig(nx=8, ny=8, num_steps=num_steps)
    params = HeatParameters(200.0, 300.0, 250.0, 350.0, 150.0)
    return SimulationClient(
        client_id=client_id,
        parameters=params.as_tuple(),
        solver=HeatEquationSolver(config),
        router=router,
        num_time_steps=num_steps,
        fail_at_step=fail_at_step,
        checkpoint_enabled=checkpoint,
    ), params


def test_simulation_client_streams_every_step():
    router = MessageRouter(2)
    client, params = make_client(router, num_steps=5)
    result = client.run(solver_params=params)
    assert isinstance(result, ClientRunResult)
    assert result.completed and result.steps_sent == 5
    messages = drain(router, 0) + drain(router, 1)
    steps = sorted(m.time_step for m in messages if isinstance(m, TimeStepMessage))
    assert steps == [1, 2, 3, 4, 5]
    finished = [m for m in messages if isinstance(m, ClientFinished)]
    assert len(finished) == 2


def test_simulation_client_fault_injection_and_checkpointed_restart():
    router = MessageRouter(1)
    client, params = make_client(router, num_steps=6, fail_at_step=3)
    with pytest.raises(SimulationFailure):
        client.run(solver_params=params)
    # Restart: with checkpointing the client resumes after step 3.
    client.prepare_restart()
    result = client.run(solver_params=params)
    assert result.completed
    assert result.restarted_from_step == 3
    assert result.steps_sent == 3  # only steps 4..6 are re-sent
    messages = [m for m in drain(router, 0) if isinstance(m, TimeStepMessage)]
    assert sorted(m.time_step for m in messages) == [1, 2, 3, 4, 5, 6]
    assert client.restart_count == 1


def test_simulation_client_restart_without_checkpoint_resends_everything():
    router = MessageRouter(1)
    client, params = make_client(router, num_steps=4, fail_at_step=2, checkpoint=False)
    with pytest.raises(SimulationFailure):
        client.run(solver_params=params)
    client.prepare_restart()
    result = client.run(solver_params=params)
    assert result.steps_sent == 4  # everything re-sent; the server deduplicates
    messages = [m for m in drain(router, 0) if isinstance(m, TimeStepMessage)]
    steps = [m.time_step for m in messages]
    assert sorted(steps) == [1, 1, 2, 2, 3, 4]
