"""Tests for the distributed CG solver and the domain-decomposed heat solver."""

import numpy as np
import pytest

from repro.parallel.spmd import run_spmd
from repro.solvers.cg import distributed_cg, jacobi_smoother
from repro.solvers.heat2d import HeatEquationConfig, HeatEquationSolver, HeatParameters
from repro.solvers.heat2d_parallel import ParallelHeatSolver


def test_serial_cg_solves_spd_system(rng):
    n = 30
    raw = rng.random((n, n))
    matrix = raw @ raw.T + n * np.eye(n)
    rhs = rng.random(n)
    result = distributed_cg(lambda x: matrix @ x, rhs, tol=1e-12, max_iter=500)
    assert result.converged
    assert np.allclose(matrix @ result.solution, rhs, atol=1e-8)


def test_serial_cg_zero_rhs_short_circuits():
    result = distributed_cg(lambda x: x, np.zeros(5))
    assert result.converged and result.iterations == 0
    assert np.allclose(result.solution, 0.0)


def test_cg_reports_non_convergence(rng):
    n = 20
    raw = rng.random((n, n))
    matrix = raw @ raw.T + 0.1 * np.eye(n)
    result = distributed_cg(lambda x: matrix @ x, rng.random(n), tol=1e-14, max_iter=2)
    assert not result.converged
    assert result.iterations == 2


def test_jacobi_smoother_converges_on_diagonally_dominant(rng):
    n = 25
    matrix = np.diag(np.full(n, 5.0)) + rng.random((n, n)) * 0.1
    matrix = 0.5 * (matrix + matrix.T)
    rhs = rng.random(n)
    result = jacobi_smoother(lambda x: matrix @ x, np.diag(matrix), rhs, tol=1e-10, max_iter=5000)
    assert result.converged
    assert np.allclose(matrix @ result.solution, rhs, atol=1e-6)


def test_distributed_cg_matches_serial(rng):
    """Row-partitioned CG across 3 ranks equals the serial solution."""
    n = 24
    raw = rng.random((n, n))
    matrix = raw @ raw.T + n * np.eye(n)
    rhs = rng.random(n)
    serial = np.linalg.solve(matrix, rhs)

    def main(comm):
        rows = comm.split_workload(n)
        local_rows = matrix[rows.start : rows.stop, :]

        def matvec(local_x):
            full_x = np.concatenate(comm.allgather(local_x))
            return local_rows @ full_x

        result = distributed_cg(matvec, rhs[rows.start : rows.stop], comm=comm, tol=1e-12,
                                max_iter=500)
        assert result.converged
        return result.solution

    pieces = run_spmd(3, main)
    assert np.allclose(np.concatenate(pieces), serial, atol=1e-7)


@pytest.mark.parametrize("num_ranks", [1, 2, 3])
def test_parallel_heat_solver_matches_sequential(num_ranks, heat_params):
    config = HeatEquationConfig(nx=10, ny=12, num_steps=4)
    sequential = HeatEquationSolver(config).run(heat_params)
    parallel = ParallelHeatSolver(config, num_ranks=num_ranks).run(heat_params)
    assert len(parallel) == len(sequential)
    for (t_seq, f_seq), (t_par, f_par) in zip(sequential, parallel, strict=True):
        assert t_seq == pytest.approx(t_par)
        assert np.allclose(f_seq, f_par, atol=1e-6)


def test_parallel_solver_constant_solution():
    config = HeatEquationConfig(nx=10, ny=10, num_steps=3)
    params = HeatParameters(300.0, 300.0, 300.0, 300.0, 300.0)
    series = ParallelHeatSolver(config, num_ranks=2).run(params)
    assert np.allclose(series.final(), 300.0, atol=1e-6)


def test_parallel_solver_on_step_callback(heat_params):
    config = HeatEquationConfig(nx=10, ny=10, num_steps=3)
    seen = []
    ParallelHeatSolver(config, num_ranks=2).run(heat_params, on_step=lambda s, t, f: seen.append(s))
    assert seen == [1, 2, 3]


def test_parallel_solver_validation():
    config = HeatEquationConfig(nx=10, ny=10, num_steps=2)
    with pytest.raises(ValueError):
        ParallelHeatSolver(config, num_ranks=0)
    with pytest.raises(ValueError):
        ParallelHeatSolver(config, num_ranks=100)
