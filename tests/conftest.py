"""Shared fixtures for the test suite."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.heat_usecase import HeatSurrogateCase, HeatSurrogateSpec
from repro.core.config import SurrogateArchitecture
from repro.experiments.common import ExperimentScale, build_case
from repro.solvers.heat2d import HeatEquationConfig, HeatParameters


@pytest.fixture
def tiny_scale() -> ExperimentScale:
    """Very small experiment scale so integration tests stay fast."""
    return replace(
        ExperimentScale(),
        nx=10,
        ny=10,
        num_steps=8,
        num_simulations=6,
        series_sizes=(3, 3),
        hidden_sizes=(16, 16),
        buffer_capacity=24,
        buffer_threshold=6,
        validation_simulations=2,
        validation_interval=10,
        client_step_delay=0.001,
        inter_series_delay=0.05,
        batch_compute_delay=0.001,
        offline_io_delay_per_sample=0.0,
        max_concurrent_clients=3,
    )


@pytest.fixture
def tiny_case(tiny_scale: ExperimentScale) -> HeatSurrogateCase:
    return build_case(tiny_scale)


@pytest.fixture
def small_solver_config() -> HeatEquationConfig:
    return HeatEquationConfig(nx=10, ny=10, num_steps=5)


@pytest.fixture
def heat_params() -> HeatParameters:
    return HeatParameters(t_ic=250.0, t_x1=400.0, t_y1=120.0, t_x2=330.0, t_y2=180.0)


@pytest.fixture
def tiny_surrogate_case() -> HeatSurrogateCase:
    """A minimal heat surrogate case independent of the experiment scale."""
    spec = HeatSurrogateSpec(
        solver=HeatEquationConfig(nx=8, ny=8, num_steps=5),
        architecture=SurrogateArchitecture(hidden_sizes=(8, 8)),
        seed=3,
    )
    return HeatSurrogateCase(spec)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
