"""End-to-end integration tests of the online and offline studies."""

import numpy as np
import pytest

from repro.core.config import OfflineStudyConfig
from repro.core.study import OfflineStudy, OnlineStudy
from repro.experiments.common import build_validation, online_config, run_offline_baseline, run_online_with_buffer


@pytest.mark.parametrize("buffer_kind", ["fifo", "firo", "reservoir"])
def test_online_study_end_to_end_single_rank(tiny_scale, tiny_case, buffer_kind):
    result = run_online_with_buffer(buffer_kind, scale=tiny_scale, num_ranks=1, case=tiny_case)
    expected_unique = tiny_scale.num_simulations * tiny_scale.num_steps
    assert result.unique_samples == expected_unique
    # Every unique sample was received by the server exactly once.
    received = sum(stats.samples_received for stats in result.server.aggregator_stats)
    assert received == expected_unique
    assert result.launcher.clients_completed == tiny_scale.num_simulations
    assert result.total_batches > 0
    assert result.mean_throughput > 0
    assert np.isfinite(result.metrics.losses.final_training_loss)
    # FIFO/FIRO consume each sample at most once; Reservoir may repeat samples.
    trained_samples = int(result.server.summary["total_samples"])
    if buffer_kind in ("fifo", "firo"):
        assert trained_samples <= expected_unique
    else:
        assert trained_samples >= expected_unique


def test_online_study_with_validation_records_losses(tiny_scale, tiny_case):
    validation = build_validation(tiny_case, tiny_scale)
    result = run_online_with_buffer("reservoir", scale=tiny_scale, num_ranks=1,
                                    case=tiny_case, validation=validation)
    assert len(result.metrics.losses.val_losses) >= 1
    assert np.isfinite(result.best_validation_loss)


def test_online_study_multi_rank_distributes_data(tiny_scale, tiny_case):
    result = run_online_with_buffer("reservoir", scale=tiny_scale, num_ranks=2, case=tiny_case)
    expected_unique = tiny_scale.num_simulations * tiny_scale.num_steps
    received = sum(stats.samples_received for stats in result.server.aggregator_stats)
    assert received == expected_unique
    per_rank = [stats.samples_received for stats in result.server.aggregator_stats]
    # Round-robin distribution balances data between the two ranks.
    assert abs(per_rank[0] - per_rank[1]) <= expected_unique * 0.2
    assert len(result.server.per_rank_metrics) == 2
    # Replicas run in lockstep while the collective continues; at termination
    # a rank may train one extra (possibly partial) final batch sync-free
    # rather than discarding samples it already drew from its buffer.
    batches = [m.batches_trained for m in result.server.per_rank_metrics]
    assert abs(batches[0] - batches[1]) <= 1


def test_online_study_respects_max_batches(tiny_scale, tiny_case):
    config = online_config(tiny_scale, "reservoir", num_ranks=1, use_series=False, max_batches=5)
    study = OnlineStudy(tiny_case, config)
    result = study.run()
    assert result.metrics.batches_trained == 5


def test_offline_study_end_to_end(tiny_scale, tiny_case, tmp_path):
    result = run_offline_baseline(scale=tiny_scale, num_epochs=2, num_ranks=1, case=tiny_case,
        store_dir=tmp_path / "offline-store")
    expected_unique = tiny_scale.num_simulations * tiny_scale.num_steps
    assert result.unique_samples == expected_unique
    assert result.generation_elapsed > 0
    assert (tmp_path / "offline-store" / "index.json").exists()
    assert result.metrics.batches_trained > 0
    losses = result.metrics.losses.train_losses
    assert losses[-1] < losses[0] * 2  # training is at least not diverging


def test_offline_study_reuses_existing_store(tiny_scale, tiny_case, tmp_path):
    first = run_offline_baseline(scale=tiny_scale, num_epochs=1, case=tiny_case,
        store_dir=tmp_path / "store")
    # Re-run training on the already generated store: no regeneration cost.
    from repro.offline.storage import SimulationStore

    store = SimulationStore(tmp_path / "store")
    config = OfflineStudyConfig(num_simulations=tiny_scale.num_simulations, num_epochs=1,
                                batch_size=tiny_scale.batch_size, seed=tiny_scale.seed)
    study = OfflineStudy(tiny_case, config, store=store)
    second = study.run()
    assert second.generation_elapsed == 0.0
    assert second.unique_samples == first.unique_samples


def test_online_and_offline_see_same_unique_sample_budget(tiny_scale):
    """Both settings are built from the same ensemble size (paper's comparison basis)."""
    from repro.experiments.common import build_case

    online = run_online_with_buffer("firo", scale=tiny_scale, case=build_case(tiny_scale))
    offline = run_offline_baseline(scale=tiny_scale, num_epochs=1, case=build_case(tiny_scale))
    assert online.unique_samples == offline.unique_samples


def test_online_study_table_row_fields(tiny_scale, tiny_case):
    result = run_online_with_buffer("reservoir", scale=tiny_scale, case=tiny_case)
    row = result.table_row("online")
    assert row["setting"] == "online"
    assert row["unique_samples"] == result.unique_samples
    assert row["dataset_gb"] == pytest.approx(result.dataset_gigabytes)
