"""Tests for the Reservoir buffer (paper Algorithm 1)."""

import threading

import numpy as np
import pytest

from repro.buffers import ReservoirBuffer
from repro.buffers.base import SampleRecord


def record(index: int) -> SampleRecord:
    return SampleRecord(
        inputs=np.array([float(index)], dtype=np.float32),
        target=np.array([float(index)], dtype=np.float32),
        source_id=index // 100,
        time_step=index % 100,
    )


def test_reservoir_counts_seen_and_unseen():
    buffer = ReservoirBuffer(capacity=10, threshold=0, seed=0)
    for i in range(4):
        buffer.put(record(i))
    assert buffer.num_unseen == 4
    assert buffer.num_seen == 0
    buffer.get()
    assert buffer.num_unseen == 3
    assert buffer.num_seen == 1  # freshly read samples move to the seen list
    assert len(buffer) == 4      # nothing leaves while reception is ongoing


def test_reservoir_can_repeat_samples():
    """Unlike FIFO/FIRO, consumption can exceed production (sample repetition)."""
    buffer = ReservoirBuffer(capacity=10, threshold=0, seed=0)
    for i in range(3):
        buffer.put(record(i))
    reads = [buffer.get() for _ in range(20)]
    assert all(item is not None for item in reads)
    assert buffer.repeated_reads > 0
    keys = {item.key() for item in reads}
    assert keys == {record(i).key() for i in range(3)}


def test_reservoir_never_evicts_unseen_samples():
    """Eviction on write only removes *seen* samples (no unseen data is lost)."""
    buffer = ReservoirBuffer(capacity=5, threshold=0, seed=0)
    for i in range(5):
        buffer.put(record(i))
    # Buffer full of unseen data: a further put must block (try via timeout).
    with pytest.raises(TimeoutError):
        buffer.put(record(99), timeout=0.05)
    # Read two samples (they become seen), then new puts evict seen ones only.
    buffer.get()
    buffer.get()
    buffer.put(record(5))
    buffer.put(record(6))
    assert buffer.evicted_seen >= 1
    assert len(buffer) <= 5
    # All unseen keys must still be retrievable eventually.
    buffer.signal_reception_over()
    remaining_keys = set()
    while True:
        item = buffer.get(timeout=0.5)
        if item is None:
            break
        remaining_keys.add(item.key())
    for fresh in (5, 6):
        assert record(fresh).key() in remaining_keys


def test_reservoir_threshold_blocks_until_population():
    buffer = ReservoirBuffer(capacity=20, threshold=4, seed=0)
    for i in range(4):
        buffer.put(record(i))
    with pytest.raises(TimeoutError):
        buffer.get(timeout=0.05)
    buffer.put(record(4))
    assert buffer.get(timeout=1.0) is not None


def test_reservoir_threshold_lifted_after_reception_over():
    buffer = ReservoirBuffer(capacity=20, threshold=10, seed=0)
    buffer.put(record(0))
    buffer.signal_reception_over()
    assert buffer.get(timeout=1.0) is not None
    assert buffer.get(timeout=0.5) is None  # drained
    assert buffer.exhausted


def test_reservoir_drains_after_reception_over():
    """Once reception is over, reads remove samples until the buffer empties."""
    buffer = ReservoirBuffer(capacity=50, threshold=0, seed=3)
    for i in range(30):
        buffer.put(record(i))
    # Interleave some reads so both seen and unseen items exist at drain time.
    for _ in range(10):
        buffer.get()
    buffer.signal_reception_over()
    drained = 0
    while True:
        item = buffer.get(timeout=0.5)
        if item is None:
            break
        drained += 1
    assert drained == 30  # 30 samples were still stored (reads kept them around)
    assert len(buffer) == 0


def test_reservoir_every_unique_sample_is_seen_at_least_once_when_slow_producer():
    """With capacity >= unique samples, every sample appears in some batch."""
    buffer = ReservoirBuffer(capacity=100, threshold=0, seed=0)
    expected = set()
    for i in range(50):
        buffer.put(record(i))
        expected.add(record(i).key())
    seen_keys = set()
    for _ in range(400):
        seen_keys.add(buffer.get().key())
    buffer.signal_reception_over()
    while True:
        item = buffer.get(timeout=0.2)
        if item is None:
            break
        seen_keys.add(item.key())
    assert expected.issubset(seen_keys)


def test_reservoir_uniformity_of_selection():
    """Selections are roughly uniform over the stored population."""
    buffer = ReservoirBuffer(capacity=64, threshold=0, seed=7)
    n = 32
    for i in range(n):
        buffer.put(record(i))
    counts = {record(i).key(): 0 for i in range(n)}
    draws = 6400
    for _ in range(draws):
        counts[buffer.get().key()] += 1
    frequencies = np.array(list(counts.values())) / draws
    assert frequencies.min() > 0.5 / n
    assert frequencies.max() < 2.0 / n


def test_reservoir_sample_without_replacement():
    buffer = ReservoirBuffer(capacity=20, threshold=0, seed=0)
    assert buffer.sample_without_replacement(4) is None  # not enough samples yet
    for i in range(10):
        buffer.put(record(i))
    batch = buffer.sample_without_replacement(6)
    assert batch is not None
    keys = [item.key() for item in batch]
    assert len(keys) == len(set(keys)) == 6
    with pytest.raises(ValueError):
        buffer.sample_without_replacement(0)


def test_reservoir_put_unblocks_when_reader_consumes():
    buffer = ReservoirBuffer(capacity=3, threshold=0, seed=0)
    for i in range(3):
        buffer.put(record(i))
    unblocked = threading.Event()

    def producer():
        buffer.put(record(3), timeout=5.0)
        unblocked.set()

    thread = threading.Thread(target=producer, daemon=True)
    thread.start()
    assert not unblocked.wait(0.1)
    buffer.get()  # moves one sample to 'seen', making room for the new one
    assert unblocked.wait(2.0)
    thread.join()


def test_reservoir_snapshot_fields():
    buffer = ReservoirBuffer(capacity=8, threshold=2, seed=0)
    for i in range(4):
        buffer.put(record(i))
    buffer.get()
    snap = buffer.snapshot()
    assert snap["num_seen"] == 1
    assert snap["num_unseen"] == 3
    assert snap["size"] == 4
    assert "evicted_seen" in snap and "repeated_reads" in snap


def test_reservoir_deterministic_given_seed():
    def run(seed):
        buffer = ReservoirBuffer(capacity=16, threshold=0, seed=seed)
        for i in range(10):
            buffer.put(record(i))
        return [buffer.get().key() for _ in range(20)]

    assert run(5) == run(5)
    assert run(5) != run(6)
