"""Tests for the sequential heat-equation solver."""

import numpy as np
import pytest

from repro.solvers.analytic import constant_solution, separable_mode_decay, steady_state
from repro.solvers.heat2d import (
    ExplicitHeatSolver,
    HeatEquationConfig,
    HeatEquationSolver,
    HeatParameters,
    explicit_step_stable_dt,
)


def test_config_validation():
    with pytest.raises(ValueError):
        HeatEquationConfig(nx=2, ny=10)
    with pytest.raises(ValueError):
        HeatEquationConfig(dt=0.0)
    with pytest.raises(ValueError):
        HeatEquationConfig(alpha=-1.0)


def test_config_derived_quantities():
    config = HeatEquationConfig(nx=11, ny=21, length_x=1.0, length_y=2.0, num_steps=7)
    assert config.dx == pytest.approx(0.1)
    assert config.dy == pytest.approx(0.1)
    assert config.grid_shape == (21, 11)
    assert config.num_points == 231
    assert config.num_interior == 19 * 9
    assert len(config.times()) == 7


def test_parameters_roundtrip_and_validation():
    params = HeatParameters(200.0, 300.0, 400.0, 150.0, 250.0)
    assert HeatParameters.from_array(params.as_array()) == params
    assert params.as_tuple() == (200.0, 300.0, 400.0, 150.0, 250.0)
    with pytest.raises(ValueError):
        HeatParameters.from_array(np.zeros(4))
    with pytest.raises(ValueError):
        HeatParameters(50.0, 300.0, 300.0, 300.0, 300.0).validate_range()


def test_constant_temperature_is_fixed_point(small_solver_config):
    """IC equal to all boundary temperatures must stay constant (round-off only)."""
    solver = HeatEquationSolver(small_solver_config)
    params = HeatParameters(321.0, 321.0, 321.0, 321.0, 321.0)
    series = solver.run(params)
    expected = constant_solution(small_solver_config, 321.0)
    for _, field in series:
        assert np.allclose(field, expected, atol=1e-9)


def test_solution_bounded_by_extremes(small_solver_config, heat_params):
    """Maximum principle: the temperature stays within [min, max] of IC and BCs."""
    solver = HeatEquationSolver(small_solver_config)
    series = solver.run(heat_params)
    low = min(heat_params.as_tuple())
    high = max(heat_params.as_tuple())
    stacked = series.stack()
    assert stacked.min() >= low - 1e-8
    assert stacked.max() <= high + 1e-8


def test_long_time_convergence_to_steady_state(heat_params):
    config = HeatEquationConfig(nx=12, ny=12, dt=0.05, num_steps=400)
    solver = HeatEquationSolver(config)
    final = solver.run(heat_params).final()
    stationary = steady_state(config, heat_params)
    assert np.allclose(final, stationary, atol=1e-3)


def test_series_metadata(small_solver_config, heat_params):
    solver = HeatEquationSolver(small_solver_config)
    series = solver.run(heat_params)
    assert len(series) == small_solver_config.num_steps
    times = series.times
    assert times[0] == pytest.approx(small_solver_config.dt)
    assert times[-1] == pytest.approx(small_solver_config.dt * small_solver_config.num_steps)
    assert series.stack().shape == (small_solver_config.num_steps, *small_solver_config.grid_shape)


def test_iter_steps_streams_in_order(small_solver_config, heat_params):
    solver = HeatEquationSolver(small_solver_config)
    steps = [step for step, _, _ in solver.iter_steps(heat_params)]
    assert steps == list(range(1, small_solver_config.num_steps + 1))


def test_cg_solver_matches_lu(heat_params):
    lu_config = HeatEquationConfig(nx=10, ny=10, num_steps=5, linear_solver="lu")
    cg_config = HeatEquationConfig(nx=10, ny=10, num_steps=5, linear_solver="cg")
    lu_final = HeatEquationSolver(lu_config).run(heat_params).final()
    cg_final = HeatEquationSolver(cg_config).run(heat_params).final()
    assert np.allclose(lu_final, cg_final, atol=1e-6)


def test_explicit_solver_requires_stable_dt(heat_params):
    config = HeatEquationConfig(nx=20, ny=20, dt=0.01, num_steps=3)
    assert explicit_step_stable_dt(config) < 0.01
    with pytest.raises(ValueError):
        ExplicitHeatSolver(config)


def test_explicit_and_implicit_agree_for_small_dt(heat_params):
    stable_config = HeatEquationConfig(nx=14, ny=14, dt=5e-4, num_steps=40)
    assert stable_config.dt <= explicit_step_stable_dt(stable_config)
    implicit = HeatEquationSolver(stable_config).run(heat_params).final()
    explicit = ExplicitHeatSolver(stable_config).run(heat_params).final()
    # Both are first-order in time; they agree to O(dt) on the interior (the
    # two solvers use different cosmetic conventions for the corner nodes).
    assert np.allclose(implicit[1:-1, 1:-1], explicit[1:-1, 1:-1], rtol=0.0, atol=2.0)


def test_implicit_euler_decay_rate_first_order():
    """A single Laplacian eigenmode decays at the implicit-Euler rate 1/(1+dt*lambda)."""
    config = HeatEquationConfig(nx=33, ny=33, dt=1e-3, num_steps=10, alpha=1.0)
    initial, rate = separable_mode_decay(config, amplitude=1.0)
    solver = HeatEquationSolver(config)

    # Manually run the implicit stepping on the eigenmode initial condition.
    interior = initial[1:-1, 1:-1].ravel().copy()
    boundary = np.zeros_like(interior)
    for _ in range(config.num_steps):
        interior = solver._lu.solve(interior + config.dt * config.alpha * boundary)

    # Discrete eigenvalue of the 5-point Laplacian for mode (1, 1).
    kx = np.pi / config.length_x
    ky = np.pi / config.length_y
    lam = (4.0 / config.dx**2) * np.sin(kx * config.dx / 2.0) ** 2 + (
        4.0 / config.dy**2
    ) * np.sin(ky * config.dy / 2.0) ** 2
    expected_factor = (1.0 / (1.0 + config.dt * lam)) ** config.num_steps
    measured_factor = np.abs(interior).max() / np.abs(initial[1:-1, 1:-1]).max()
    assert measured_factor == pytest.approx(expected_factor, rel=1e-6)
    assert expected_factor == pytest.approx(np.exp(-rate * config.dt * config.num_steps), rel=0.05)


def test_steady_state_harmonic_mean_value():
    """The steady state with equal boundaries is that constant everywhere."""
    config = HeatEquationConfig(nx=10, ny=10, num_steps=2)
    params = HeatParameters(100.0, 250.0, 250.0, 250.0, 250.0)
    stationary = HeatEquationSolver(config).steady_state(params)
    assert np.allclose(stationary, 250.0, atol=1e-8)


def test_field_size_property():
    config = HeatEquationConfig(nx=16, ny=12, num_steps=2)
    assert HeatEquationSolver(config).field_size == 16 * 12
