"""Tests for the Module/Parameter base machinery."""

import numpy as np
import pytest

from repro.nn import Linear, ReLU, Sequential
from repro.nn.module import Parameter


def build_net(seed: int = 0) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 3, rng=rng))


def test_parameter_shapes_and_zero_grad():
    param = Parameter(np.ones((3, 2)))
    assert param.shape == (3, 2)
    assert param.size == 6
    param.grad += 5.0
    param.zero_grad()
    assert np.all(param.grad == 0.0)


def test_parameter_copy_shape_mismatch():
    param = Parameter(np.ones((2, 2)))
    with pytest.raises(ValueError):
        param.copy_(Parameter(np.ones((3, 2))))


def test_named_parameters_and_count():
    net = build_net()
    names = [name for name, _ in net.named_parameters()]
    assert names == ["layers.0.weight", "layers.0.bias", "layers.2.weight", "layers.2.bias"]
    assert net.num_parameters() == 4 * 8 + 8 + 8 * 3 + 3


def test_state_dict_roundtrip():
    net = build_net(seed=1)
    other = build_net(seed=2)
    assert not np.allclose(net.layers[0].weight.data, other.layers[0].weight.data)
    other.load_state_dict(net.state_dict())
    for (_, a), (_, b) in zip(net.named_parameters(), other.named_parameters(), strict=True):
        assert np.array_equal(a.data, b.data)


def test_load_state_dict_rejects_missing_keys():
    net = build_net()
    state = net.state_dict()
    state.pop("layers.0.bias")
    with pytest.raises(KeyError):
        net.load_state_dict(state)


def test_load_state_dict_rejects_bad_shape():
    net = build_net()
    state = net.state_dict()
    state["layers.0.weight"] = np.zeros((2, 2))
    with pytest.raises(ValueError):
        net.load_state_dict(state)


def test_train_eval_propagates():
    net = build_net()
    net.eval()
    assert all(not layer.training for layer in net.layers)
    net.train()
    assert all(layer.training for layer in net.layers)


def test_flat_gradients_roundtrip():
    net = build_net()
    x = np.random.default_rng(0).random((5, 4))
    out = net.forward(x)
    net.backward(np.ones_like(out))
    flat = net.flat_gradients()
    assert flat.shape == (net.num_parameters(),)
    net2 = build_net()
    net2.set_flat_gradients(flat)
    assert np.allclose(net2.flat_gradients(), flat)


def test_set_flat_gradients_rejects_wrong_size():
    net = build_net()
    with pytest.raises(ValueError):
        net.set_flat_gradients(np.zeros(3))


def test_astype_converts_parameters():
    net = build_net().astype(np.float32)
    assert all(param.dtype == np.float32 for param in net.parameters())


def test_zero_grad_clears_all():
    net = build_net()
    x = np.random.default_rng(0).random((2, 4))
    out = net.forward(x)
    net.backward(np.ones_like(out))
    assert any(np.any(param.grad != 0) for param in net.parameters())
    net.zero_grad()
    assert all(np.all(param.grad == 0) for param in net.parameters())
