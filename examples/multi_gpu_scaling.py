#!/usr/bin/env python
"""Data-parallel scaling of the online training server (paper Fig. 5 / Table 1).

Runs the Reservoir and FIFO studies with 1, 2 and 4 server ranks (the paper's
"GPUs") on the same ensemble and reports throughput and validation MSE.  Only
the Reservoir scales its throughput with the rank count because it can repeat
samples when the per-rank share of fresh data shrinks.

Run with::

    python examples/multi_gpu_scaling.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.common import build_case, build_validation, default_scale, run_online_with_buffer
from repro.experiments.reporting import format_rows


def main() -> None:
    scale = replace(default_scale(), num_simulations=16, series_sizes=(8, 8), num_steps=15)
    case = build_case(scale)
    validation = build_validation(case, scale)

    rows = []
    for num_ranks in (1, 2, 4):
        for buffer_kind in ("fifo", "reservoir"):
            result = run_online_with_buffer(
                buffer_kind,
                scale=scale,
                num_ranks=num_ranks,
                case=build_case(scale),
                validation=validation,
            )
            rows.append(
                {
                    "buffer": buffer_kind,
                    "ranks": num_ranks,
                    "mean_throughput_samples_s": result.mean_throughput,
                    "total_batches": result.total_batches,
                    "best_val_mse": result.best_validation_loss,
                    "wall_time_s": result.total_elapsed,
                }
            )

    print(format_rows(rows, title="Multi-GPU scaling (paper Figure 5 / Table 1, scaled down)"))
    reservoir = {row["ranks"]: row["mean_throughput_samples_s"]
        for row in rows if row["buffer"] == "reservoir"}
    fifo = {row["ranks"]: row["mean_throughput_samples_s"]
            for row in rows if row["buffer"] == "fifo"}
    print(f"\nReservoir throughput scaling 1 -> 4 ranks: {reservoir[4] / reservoir[1]:.2f}x")
    print(f"FIFO throughput scaling 1 -> 4 ranks:      {fifo[4] / fifo[1]:.2f}x")
    print("Expected shape: only the Reservoir increases its throughput with more ranks.")


if __name__ == "__main__":
    main()
