#!/usr/bin/env python
"""Fault tolerance: client failures, restarts and server-side deduplication.

The paper's framework restarts failed clients; the server keeps a per-client
log of received messages so a restarted client's duplicates are discarded, and
the server itself checkpoints its model/optimizer state so it can resume after
a crash.  This example exercises both mechanisms on a small ensemble.

Run with::

    python examples/fault_tolerance_demo.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core import HeatSurrogateCase, HeatSurrogateSpec
from repro.core.config import SurrogateArchitecture
from repro.launcher.launcher import ClientSpec, Launcher, LauncherConfig
from repro.client.simulation_client import SimulationClient
from repro.nn import Adam, state_dict_equal
from repro.parallel.transport import MessageRouter
from repro.server.checkpointing import ServerCheckpointer
from repro.server.server import ServerConfig, TrainingServer
from repro.solvers.heat2d import HeatEquationConfig


def main() -> None:
    case = HeatSurrogateCase(
        HeatSurrogateSpec(
            solver=HeatEquationConfig(nx=12, ny=12, num_steps=12),
            architecture=SurrogateArchitecture(hidden_sizes=(32, 32)),
            seed=1,
        )
    )
    num_clients = 8
    parameters = case.sample_parameters(num_clients)

    router = MessageRouter(num_server_ranks=1, max_queue_size=100_000)
    checkpoint_dir = Path(tempfile.mkdtemp(prefix="repro-ckpt-"))

    # --- server with periodic checkpointing -------------------------------
    server = TrainingServer(
        config=ServerConfig(
            num_ranks=1,
            buffer_kind="reservoir",
            buffer_capacity=64,
            buffer_threshold=16,
            expected_clients=num_clients,
            learning_rate=1e-3,
            lr_step_batches=200,
            checkpoint_dir=checkpoint_dir,
            checkpoint_interval=50,
        ),
        model_factory=case.model_factory,
        router=router,
    )

    # --- launcher with two clients that fail mid-run -----------------------
    def client_factory(spec: ClientSpec) -> SimulationClient:
        return SimulationClient(
            client_id=spec.client_id,
            parameters=tuple(float(p) for p in np.asarray(spec.parameters).ravel()),
            solver=case.solver_factory(),
            router=router,
            num_time_steps=case.solver_config.num_steps,
            step_delay=0.002,
            checkpoint_enabled=False,   # restarts resend everything -> server deduplicates
        )

    specs = [
        ClientSpec(
            client_id=index,
            parameters=row,
            solver_params=case.parameters_to_solver(row),
            fail_at_step=6 if index in (2, 5) else None,   # inject two failures
        )
        for index, row in enumerate(parameters)
    ]
    launcher = Launcher(client_factory, specs,
                        LauncherConfig(max_concurrent_clients=4, max_restarts=2))

    launcher.start()
    result = server.run()
    report = launcher.join()

    print("=== fault-tolerant online run ===")
    print(f"clients completed          : {report.clients_completed}/{num_clients}")
    print(f"client restarts            : {report.restarts}")
    print(f"duplicate messages dropped : {result.duplicates_discarded}")
    received = sum(stats.samples_received for stats in result.aggregator_stats)
    expected = num_clients * case.solver_config.num_steps
    print(f"unique samples trained from: {received} (expected {expected})")
    assert received == expected, "deduplication must restore the exact unique-sample budget"

    # --- server restart from the last checkpoint ---------------------------
    checkpointer = ServerCheckpointer(directory=checkpoint_dir, rank=0)
    restored_model = case.model_factory()
    restored_optimizer = Adam(restored_model.parameters(), lr=1e-3)
    metadata = checkpointer.restore(restored_model, restored_optimizer)
    print(f"restored server checkpoint from batch {metadata['batches_trained']}")
    same = state_dict_equal(restored_model.state_dict(), result.model.state_dict())
    print("restored weights equal final weights:", same,
        "(False is expected when training continued after the last checkpoint)")


if __name__ == "__main__":
    main()
