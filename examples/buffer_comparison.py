#!/usr/bin/env python
"""Compare the FIFO, FIRO and Reservoir training buffers (paper Figures 2 and 4).

Runs the same scaled-down ensemble three times, changing only the training
buffer, and prints the throughput / buffer population / validation quality of
each policy — the single-node equivalent of the paper's Section 4.3-4.4.

Run with::

    python examples/buffer_comparison.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.common import build_case, build_validation, default_scale, run_online_with_buffer
from repro.experiments.reporting import format_rows, format_series


def main() -> None:
    scale = replace(
        default_scale(),
        num_simulations=16,
        series_sizes=(8, 8),
        num_steps=15,
        inter_series_delay=0.25,
    )
    case = build_case(scale)
    validation = build_validation(case, scale)

    rows = []
    for buffer_kind in ("fifo", "firo", "reservoir"):
        result = run_online_with_buffer(
            buffer_kind,
            scale=scale,
            num_ranks=1,
            case=build_case(scale),   # same experimental design for every run
            validation=validation,
        )
        metrics = result.metrics
        rows.append(
            {
                "buffer": buffer_kind,
                "mean_throughput_samples_s": result.mean_throughput,
                "batches": result.total_batches,
                "max_buffer_population": metrics.buffer_population.max_population(),
                "best_val_mse": result.best_validation_loss,
                "wall_time_s": result.total_elapsed,
            }
        )
        times, values = metrics.throughput.series()
        print(format_series(times, values, label=f"throughput[{buffer_kind}] (samples/s)"))

    print()
    print(format_rows(rows, title="Buffer comparison (paper Figures 2 & 4, scaled down)"))
    print(
        "\nExpected shape: FIFO/FIRO throughput tracks the data-production rate and dips"
        "\nbetween client series; the Reservoir stays GPU-bound, keeps its buffer full and"
        "\nreaches the lowest validation MSE."
    )


if __name__ == "__main__":
    main()
