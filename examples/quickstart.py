#!/usr/bin/env python
"""Quickstart: train a heat-equation surrogate online with the Reservoir buffer.

This is the smallest end-to-end use of the framework: an ensemble of
heat-equation simulations is run by the launcher, each time step is streamed
to the training server, and an MLP surrogate is trained concurrently with the
data generation — no file is ever written.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import HeatSurrogateCase, HeatSurrogateSpec, OnlineStudy, OnlineStudyConfig
from repro.core.config import SurrogateArchitecture
from repro.solvers.heat2d import HeatEquationConfig, HeatParameters


def main() -> None:
    # 1. Describe the use case: solver discretisation + surrogate architecture.
    #    (The paper uses a 1000x1000 grid and a 256x256 MLP; this quickstart is
    #    scaled down so it runs in a few seconds on a laptop.)
    case = HeatSurrogateCase(
        HeatSurrogateSpec(
            solver=HeatEquationConfig(nx=16, ny=16, num_steps=20, dt=0.01, alpha=1.0),
            architecture=SurrogateArchitecture(hidden_sizes=(64, 64)),
            sampler="latin_hypercube",
            seed=42,
        )
    )

    # 2. Generate a small held-out validation set (never seen during training).
    validation = case.generate_validation_set(num_simulations=3)

    # 3. Configure the online study: how many simulations, how they are
    #    submitted, which training buffer, how many server ranks ("GPUs").
    config = OnlineStudyConfig(
        num_simulations=24,
        series_sizes=(12, 12),        # two successive series of clients
        max_concurrent_clients=4,
        num_ranks=1,
        buffer_kind="reservoir",      # the paper's contribution
        buffer_capacity=120,
        buffer_threshold=30,
        batch_size=10,
        validation_interval=50,
        learning_rate=1e-3,
        lr_step_samples=2_000,
        seed=42,
    )

    # 4. Run: launcher + clients + server all live in this process.
    result = OnlineStudy(case, config, validation=validation).run()

    # 5. Inspect the outcome.
    print("=== online Reservoir training ===")
    print(f"simulations run           : {result.launcher.clients_completed}")
    print(f"unique samples streamed   : {result.unique_samples}")
    print(f"batches trained           : {result.total_batches}")
    print(f"mean throughput           : {result.mean_throughput:.1f} samples/s")
    print(f"best validation MSE       : {result.best_validation_loss:.4f}")
    print(f"total wall time           : {result.total_elapsed:.1f} s")

    # 6. Use the trained surrogate: predict the field for new parameters and a
    #    given time, and compare against the solver.
    model = result.server.model
    params = HeatParameters(t_ic=300.0, t_x1=450.0, t_y1=150.0, t_x2=250.0, t_y2=350.0)
    solver_series = case.solver_factory().run(params)
    time_value = solver_series.times[-1]
    surrogate_input = np.asarray([[*params.as_tuple(), time_value]], dtype=np.float32)
    prediction = model.forward(surrogate_input).reshape(case.solver_config.grid_shape)
    reference = solver_series.final()
    rel_error = np.linalg.norm(prediction - reference) / np.linalg.norm(reference)
    print(f"surrogate vs solver (t={time_value:.2f}s) relative L2 error: {rel_error:.3f}")


if __name__ == "__main__":
    main()
