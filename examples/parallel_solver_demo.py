#!/usr/bin/env python
"""The domain-decomposed heat solver on its own (the paper's MPI solver substrate).

Runs the same simulation with the sequential sparse solver and with the
SPMD/domain-decomposed solver (halo exchanges + distributed conjugate
gradient) on 1, 2 and 4 ranks, verifies they agree, and reports the timing.

Run with::

    python examples/parallel_solver_demo.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.reporting import format_rows
from repro.solvers.heat2d import HeatEquationConfig, HeatEquationSolver, HeatParameters
from repro.solvers.heat2d_parallel import ParallelHeatSolver


def main() -> None:
    config = HeatEquationConfig(nx=48, ny=48, num_steps=20, dt=0.01, alpha=1.0)
    params = HeatParameters(t_ic=300.0, t_x1=450.0, t_y1=120.0, t_x2=250.0, t_y2=380.0)

    start = time.perf_counter()
    reference = HeatEquationSolver(config).run(params)
    sequential_time = time.perf_counter() - start

    rows = [{
        "solver": "sequential (sparse LU)",
        "ranks": 1,
        "seconds": sequential_time,
        "max_abs_diff_vs_reference": 0.0,
    }]
    for ranks in (1, 2, 4):
        start = time.perf_counter()
        series = ParallelHeatSolver(config, num_ranks=ranks).run(params)
        elapsed = time.perf_counter() - start
        diff = max(
            float(np.abs(f_par - f_ref).max())
            for (_, f_par), (_, f_ref) in zip(series, reference, strict=True)
        )
        rows.append({
            "solver": "domain-decomposed (distributed CG)",
            "ranks": ranks,
            "seconds": elapsed,
            "max_abs_diff_vs_reference": diff,
        })

    print(format_rows(rows, title="Sequential vs domain-decomposed heat solver"))
    print("\nThe decomposed solver reproduces the sequential solution to solver tolerance;"
        "\nits thread-based ranks stand in for the paper's MPI processes (the Python GIL"
        "\nmeans wall-clock speedup is not the point — the communication structure is).")
    print(f"\nFinal field statistics: min={reference.final().min():.1f} K, "
        f"max={reference.final().max():.1f} K, mean={reference.final().mean():.1f} K")


if __name__ == "__main__":
    main()
