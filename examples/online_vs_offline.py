#!/usr/bin/env python
"""Online streamed training vs the classical offline pipeline (paper Fig. 6 / Table 2).

The offline baseline generates a dataset on disk once and trains on it for
several epochs; the online run streams a larger ensemble through the Reservoir
exactly once.  At equal wall-clock order, online training sees far more unique
data and generalises better — the paper's headline 47 % MSE improvement.

Run with::

    python examples/online_vs_offline.py
"""

from __future__ import annotations

import tempfile
from dataclasses import replace
from pathlib import Path

from repro.core.results import improvement_percent
from repro.experiments.common import (
    build_case,
    build_validation,
    default_scale,
    run_offline_baseline,
    run_online_with_buffer,
)
from repro.experiments.reporting import format_rows


def main() -> None:
    scale = replace(default_scale(), num_simulations=12, num_steps=15,
                    offline_io_delay_per_sample=0.002)
    case = build_case(scale)
    validation = build_validation(case, scale)

    with tempfile.TemporaryDirectory(prefix="repro-offline-") as tmp:
        offline = run_offline_baseline(
            scale=scale,
            num_epochs=6,
            num_ranks=1,
            case=build_case(scale),
            validation=validation,
            store_dir=Path(tmp) / "store",
        )
    online = run_online_with_buffer(
        "reservoir",
        scale=scale,
        num_ranks=1,
        case=build_case(scale),
        validation=validation,
        use_series=False,
        num_simulations=scale.num_simulations * 4,   # online streams 4x more simulations
    )

    rows = [offline.table_row("offline (6 epochs on fixed dataset)"),
            online.table_row("online (Reservoir, 4x more simulations)")]
    print(format_rows(rows, title="Online vs offline (paper Figure 6 / Table 2, scaled down)"))
    improvement = improvement_percent(offline.best_validation_loss, online.best_validation_loss)
    ratio = online.mean_throughput / max(offline.mean_throughput, 1e-9)
    print(f"\nvalidation-MSE improvement of online over offline: {improvement:.1f}% (paper: 47%)")
    print(f"batch-throughput ratio online/offline: {ratio:.1f}x (paper: ~12.5x)")
    print(f"offline dataset written to disk: {offline.dataset_gigabytes * 1000:.1f} MB "
        f"(the online run stored nothing)")


if __name__ == "__main__":
    main()
