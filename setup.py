"""Setup shim for environments without the ``wheel`` package.

The project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e . --no-use-pep517`` (legacy editable install) works on
machines where PEP 517 build isolation is unavailable (e.g. air-gapped nodes).
"""

from setuptools import setup

setup()
