"""Multi-client contention benchmark: many rings vs one contended queue.

The paper's deployment has hundreds of clients streaming concurrently.  On
the ``mp`` backend they all funnel into one ``mp.Queue`` per rank — every
producer's feeder thread serialises on the queue's shared pipe lock — while
the ``shm`` backend gives each concurrent client its own SPSC ring, so
producers never touch a shared lock on the data path.

N forked producers stream disjoint client streams to one server rank
through both backends; the measured number is the end-to-end drain rate
with all producers live.  The ratio is recorded to the benchmark report
(``record_bench_result``) and asserted for *delivery* (every message
arrives, nothing dropped, nothing torn); the wall-clock ratio itself is
informational, because on a small box the single drain thread — not the
producer-side contention — bounds both backends.
"""

import time

from transport_fixture import BATCH_SIZE, make_batch

from repro.launcher.launcher import _fork_mp
from repro.parallel.mp_transport import MultiprocessTransport
from repro.parallel.shm_ring import ShmRingTransport
from repro.utils.constants import record_bench_result

PRODUCERS = 4
BATCHES_PER_PRODUCER = 80
MESSAGES_TOTAL = PRODUCERS * BATCHES_PER_PRODUCER * BATCH_SIZE
RING_SLOT_BYTES = 16_384

STREAMS = {
    client_id: [
        make_batch(index * BATCH_SIZE, client_id=client_id)
        for index in range(BATCHES_PER_PRODUCER)
    ]
    for client_id in range(PRODUCERS)
}


def _producer(transport, client_id):
    for batch in STREAMS[client_id]:
        transport.push_many(0, batch)


def _pump(transport) -> float:
    """Drain rate with all N producers live (best of 3 runs)."""
    best = float("inf")
    for _ in range(3):
        processes = [
            _fork_mp().Process(target=_producer, args=(transport, client_id), daemon=True)
            for client_id in range(PRODUCERS)
        ]
        began = time.perf_counter()
        for process in processes:
            process.start()
        drained = 0
        while drained < MESSAGES_TOTAL:
            chunk = transport.poll_many(0, max_messages=256, timeout=5.0)
            assert chunk, "transport stalled while draining"
            drained += len(chunk)
        elapsed = time.perf_counter() - began
        for process in processes:
            process.join(10)
        best = min(best, elapsed)
    return MESSAGES_TOTAL / best


def test_contended_queue_vs_per_client_rings():
    mp_transport = MultiprocessTransport(1, max_queue_size=MESSAGES_TOTAL)
    try:
        queue_rate = _pump(mp_transport)
        assert mp_transport.stats.dropped_messages == 0
        assert mp_transport.stats.messages_routed == 3 * MESSAGES_TOTAL
    finally:
        mp_transport.shutdown()

    shm_transport = ShmRingTransport(
        1,
        max_concurrent_clients=PRODUCERS,
        ring_slots=BATCHES_PER_PRODUCER + 8,
        ring_slot_bytes=RING_SLOT_BYTES,
    )
    try:
        ring_rate = _pump(shm_transport)
        stats = shm_transport.stats
        assert stats.dropped_messages == 0
        assert stats.torn_batches == 0
        assert stats.messages_routed == 3 * MESSAGES_TOTAL
    finally:
        shm_transport.shutdown()

    ratio = ring_rate / queue_rate
    print(
        f"\n[contention] {PRODUCERS} producers: mp.Queue {queue_rate:,.0f} msg/s, "
        f"shm rings {ring_rate:,.0f} msg/s ({ratio:.2f}x)"
    )
    record_bench_result(
        "shm_ring.contention_vs_mp_queue",
        ratio,
        batch_size=BATCH_SIZE,
        producers=PRODUCERS,
        mp_msgs_per_s=round(queue_rate),
        shm_msgs_per_s=round(ring_rate),
    )
