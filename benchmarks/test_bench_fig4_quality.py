"""Benchmark reproducing Figure 4: training quality per buffer vs 1-epoch offline.

Paper result: FIFO shows a low training loss but a high validation loss
(overfitting to the streamed ordering); FIRO mitigates the bias; the Reservoir
reaches a validation loss on par with the uniformly shuffled offline epoch.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig4_quality import run_fig4_quality
from repro.experiments.reporting import format_rows


def test_fig4_quality(benchmark, bench_scale):
    result = run_once(benchmark, run_fig4_quality, bench_scale)

    print()
    print(format_rows(result.summary_rows(),
            title="Figure 4 — best validation MSE per training setting"))
    for setting in result.curves:
        gap = result.generalization_gap(setting)
        print(f"generalization gap ({setting}): {gap:.4g}")

    # Paper-shape assertions: every setting trained, Reservoir generalises at
    # least as well as FIFO (streaming order hurts FIFO's validation loss).
    for curve in result.curves.values():
        assert curve.train_losses.size > 0
    assert result.best_val("reservoir") <= result.best_val("fifo") * 1.25
    # Reservoir's extra optimisation steps keep it within reach of (or better
    # than) the offline shuffled reference.
    assert result.best_val("reservoir") <= result.best_val("offline") * 2.0
