"""Ablation benchmarks of the Reservoir design choices (see DESIGN.md §6).

* eviction-on-write (Reservoir) vs eviction-on-read (FIRO) under a production
  stall — isolates the mechanism behind the Figure 2 gap;
* buffer capacity / threshold sensitivity;
* batch selection with vs without replacement.

These are pure-buffer micro-benchmarks (no solver, no network training) so the
numbers reflect the data structures themselves.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.buffers import FIROBuffer, ReservoirBuffer
from repro.buffers.base import SampleRecord
from repro.experiments.reporting import format_rows


def _record(index: int) -> SampleRecord:
    return SampleRecord(
        inputs=np.array([index], dtype=np.float32),
        target=np.zeros(16, dtype=np.float32),
        source_id=index // 100,
        time_step=index % 100,
    )


def _stall_scenario(buffer, produce_first: int, stall_reads: int, batch_size: int = 10):
    """Produce a burst, then stop production and count batches still deliverable."""
    for index in range(produce_first):
        if not buffer.try_put(_record(index)):
            break
    delivered = 0
    for _ in range(stall_reads):
        batch = []
        for _ in range(batch_size):
            try:
                item = buffer.get(timeout=0.001)
            except TimeoutError:
                item = None
            if item is None:
                break
            batch.append(item)
        if len(batch) == batch_size:
            delivered += 1
    return delivered


def test_ablation_eviction_policy_under_stall(benchmark):
    """Reservoir keeps delivering batches during a production stall; FIRO stops."""

    def run():
        reservoir = ReservoirBuffer(capacity=200, threshold=50, seed=0)
        firo = FIROBuffer(capacity=200, threshold=50, seed=0)
        return {
            "reservoir": _stall_scenario(reservoir, produce_first=150, stall_reads=100),
            "firo": _stall_scenario(firo, produce_first=150, stall_reads=100),
        }

    delivered = run_once(benchmark, run)
    print()
    print(format_rows(
        [{"buffer": kind, "full_batches_during_stall": count} for kind, count in delivered.items()],
        title="Ablation — batches deliverable during a production stall",
    ))
    assert delivered["reservoir"] == 100      # GPU never starves
    assert delivered["firo"] < delivered["reservoir"]


def test_ablation_threshold_sensitivity(benchmark):
    """A higher threshold delays the first batch but does not limit steady state."""

    def run():
        results = []
        for threshold in (0, 50, 150):
            buffer = ReservoirBuffer(capacity=200, threshold=threshold, seed=0)
            produced = 0
            first_batch_at = None
            delivered = 0
            for index in range(400):
                buffer.try_put(_record(index))
                produced += 1
                batch = buffer.sample_without_replacement(10)
                if batch is not None:
                    delivered += 1
                    if first_batch_at is None:
                        first_batch_at = produced
            results.append({
                "threshold": threshold,
                "first_batch_after_samples": first_batch_at,
                "batches_delivered": delivered,
            })
        return results

    rows = run_once(benchmark, run)
    print()
    print(format_rows(rows, title="Ablation — Reservoir threshold sensitivity"))
    first = {row["threshold"]: row["first_batch_after_samples"] for row in rows}
    assert first[0] <= first[50] <= first[150]
    delivered = {row["threshold"]: row["batches_delivered"] for row in rows}
    assert delivered[150] > 0


def test_ablation_with_vs_without_replacement(benchmark):
    """Without-replacement batches contain no duplicates but cost more per draw."""

    def run():
        buffer = ReservoirBuffer(capacity=500, threshold=0, seed=0)
        for index in range(500):
            buffer.put(_record(index))
        import time

        start = time.perf_counter()
        with_replacement = [buffer.get_batch(50) for _ in range(100)]
        with_time = time.perf_counter() - start

        start = time.perf_counter()
        without_replacement = [buffer.sample_without_replacement(50) for _ in range(100)]
        without_time = time.perf_counter() - start
        return with_replacement, without_replacement, with_time, without_time

    with_rep, without_rep, with_time, without_time = run_once(benchmark, run)
    duplicate_batches_with = sum(
        1 for batch in with_rep if len({r.key() for r in batch}) < len(batch)
    )
    duplicate_batches_without = sum(
        1 for batch in without_rep if batch and len({r.key() for r in batch}) < len(batch)
    )
    print()
    print(format_rows(
        [
            {"mode": "with replacement", "batches_with_duplicates": duplicate_batches_with,
                    "seconds_per_100_batches": with_time},
            {"mode": "without replacement", "batches_with_duplicates": duplicate_batches_without,
                    "seconds_per_100_batches": without_time},
        ],
        title="Ablation — batch selection with vs without replacement",
    ))
    assert duplicate_batches_without == 0
