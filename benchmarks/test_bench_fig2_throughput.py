"""Benchmark reproducing Figure 2: buffer population and training throughput.

Paper result: FIFO and FIRO throughput follows the client data-production rate
and drops at the transitions between client series; the Reservoir keeps the
GPU busy by repeating samples and its buffer population stays at capacity.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig2_throughput import run_fig2_throughput
from repro.experiments.reporting import format_rows, format_series


def test_fig2_throughput(benchmark, bench_scale):
    result = run_once(benchmark, run_fig2_throughput, bench_scale)

    rows = result.summary_rows()
    print()
    print(format_rows(rows, title="Figure 2 — mean training throughput per buffer"))
    for kind, series in result.series.items():
        print(format_series(series.throughput_times, series.throughput_values,
                            label=f"throughput[{kind}] (samples/s)"))
        print(format_series(series.population_times, series.population_values,
                            label=f"population[{kind}]"))
    print(f"Reservoir / FIFO mean-throughput ratio: {result.reservoir_speedup_over_fifo():.2f}x "
        "(paper: Reservoir constantly higher, ~1.3-4.8x depending on GPU count)")

    # Paper-shape assertions.
    assert result.mean_throughput("reservoir") > result.mean_throughput("fifo")
    assert result.mean_throughput("reservoir") > result.mean_throughput("firo")
    assert result.series["reservoir"].max_population >= bench_scale.buffer_capacity * 0.75
