"""Benchmark: shared-memory ring vs the ``mp.Queue`` packed-batch channel.

PR 2's multi-process transport moves every hot-path packed batch through a
``multiprocessing.Queue``: pickle of the buffer, a feeder-thread handoff and
two pipe syscalls per batch.  The shm ring carries the *same* packed buffers
with two memcpys and no locks, threads or syscalls.  The asserted number is
that channel round trip at the paper's batch size of 10 — the component the
ring replaces — which must be at least ``SHM_RING_MIN_SPEEDUP`` (2x) faster
locally (measured ~4-5x; CI lowers the floor to 1.3 via
``REPRO_BENCH_MIN_SPEEDUP`` because shared runners are noisy).

The end-to-end transport comparison (pack + channel + unpack, forked
producer) is reported as well but asserted only for delivery: ``pack_many``
dominates both backends there, and the queue's feeder thread pipelines its
serialisation off the producer's critical path, so the end-to-end ratio
hovers near 1x on an idle two-core box.  What the ring buys end to end is
robustness (a SIGKILL mid-write can no longer wedge a rank channel) and the
removal of per-queue feeder threads, not single-stream message rate.
"""

import gc
import multiprocessing
import time

from transport_fixture import BATCH_SIZE, BATCHES, NUM_BATCHES, REPEATS

from repro.buffers.columns import ColumnBatch
from repro.launcher.launcher import _fork_mp
from repro.parallel.messages import pack_many
from repro.parallel.mp_transport import MultiprocessTransport
from repro.parallel.shm_ring import ShmRing, ShmRingTransport
from repro.utils.constants import (
    SHM_RING_MIN_SPEEDUP,
    bench_min_speedup,
    record_bench_result,
)

RING_SLOT_BYTES = 16_384
MIN_SPEEDUP = bench_min_speedup(SHM_RING_MIN_SPEEDUP)

PACKED = [pack_many(batch) for batch in BATCHES]


def time_mp_queue_channel() -> float:
    """Round-trip the packed buffers through one ``mp.Queue`` (the PR 2 path)."""
    best = float("inf")
    for _ in range(REPEATS):
        channel = multiprocessing.Queue(maxsize=NUM_BATCHES + 8)
        began = time.perf_counter()
        for buffer in PACKED:
            channel.put(buffer)
        for _ in PACKED:
            assert channel.get(timeout=5.0) is not None
        best = min(best, time.perf_counter() - began)
        channel.cancel_join_thread()
        channel.close()
    return best


def time_shm_ring_channel() -> float:
    """Round-trip the same buffers through one shm ring."""
    view = memoryview(bytearray(ShmRing.layout_bytes(NUM_BATCHES + 8, RING_SLOT_BYTES)))
    ring = ShmRing(view, NUM_BATCHES + 8, RING_SLOT_BYTES, create=True)
    best = float("inf")
    for _ in range(REPEATS):
        began = time.perf_counter()
        for buffer in PACKED:
            assert ring.try_write(buffer)
        for _ in PACKED:
            assert ring.try_read() is not None
        best = min(best, time.perf_counter() - began)
    return best


def test_ring_channel_at_least_2x_mp_queue_packed_path():
    queue_elapsed = time_mp_queue_channel()
    ring_elapsed = time_shm_ring_channel()
    speedup = queue_elapsed / ring_elapsed
    per_batch_queue = queue_elapsed / NUM_BATCHES * 1e6
    per_batch_ring = ring_elapsed / NUM_BATCHES * 1e6
    print(
        f"\n[ring] mp.Queue {per_batch_queue:.2f} us/batch, "
        f"shm ring {per_batch_ring:.2f} us/batch, speedup {speedup:.2f}x"
    )
    record_bench_result(
        "shm_ring.channel_vs_mp_queue",
        speedup,
        floor=MIN_SPEEDUP,
        batch_size=BATCH_SIZE,
        us_per_batch_queue=round(per_batch_queue, 2),
        us_per_batch_ring=round(per_batch_ring, 2),
    )
    assert speedup >= MIN_SPEEDUP, (
        f"shm ring only {speedup:.2f}x faster than the mp.Queue packed-batch path"
    )


def test_shm_transport_end_to_end_forked_producer():
    """Study-shaped end-to-end rate through both backends (informational).

    A forked client pushes every batch while the server thread drains; the
    assertion is delivery accounting only — see the module docstring for why
    the wall-clock ratio is not a floor here.
    """
    messages_total = NUM_BATCHES * BATCH_SIZE

    def producer(transport) -> None:
        for batch in BATCHES:
            transport.push_many(0, batch)

    def pump(transport) -> float:
        # Best-of-5: each rep pays a full fork (3-10 ms of the ~20 ms run on
        # a small box), so the max over a few reps is the stable estimator.
        # Collect before each rep so a generational GC pass triggered by the
        # previous rep's message churn does not land inside the timed window
        # (applied identically to both backends).
        best = float("inf")
        for _ in range(5):
            gc.collect()
            process = _fork_mp().Process(target=producer, args=(transport,), daemon=True)
            began = time.perf_counter()
            process.start()
            drained = 0
            while drained < messages_total:
                # Columnar drain: whole chunks per wire batch, each counting
                # its sample rows against the budget (what the server runs).
                items = transport.poll_batches(0, max_messages=256, timeout=2.0)
                assert items, "transport stalled while draining"
                drained += sum(
                    len(item) if isinstance(item, ColumnBatch) else 1 for item in items
                )
            elapsed = time.perf_counter() - began
            process.join(10)
            best = min(best, elapsed)
        return messages_total / best

    mp_transport = MultiprocessTransport(1, max_queue_size=NUM_BATCHES + 8)
    try:
        queue_rate = pump(mp_transport)
        assert mp_transport.stats.dropped_messages == 0
    finally:
        mp_transport.shutdown()

    shm_transport = ShmRingTransport(1, max_concurrent_clients=1, ring_slots=64,
        ring_slot_bytes=RING_SLOT_BYTES)
    try:
        ring_rate = pump(shm_transport)
        stats = shm_transport.stats
        assert stats.dropped_messages == 0
        assert stats.torn_batches == 0
    finally:
        shm_transport.shutdown()

    ratio = ring_rate / queue_rate
    print(
        f"\n[ring] end-to-end mp {queue_rate:,.0f} msg/s, "
        f"shm {ring_rate:,.0f} msg/s ({ratio:.2f}x)"
    )
    record_bench_result(
        "shm_ring.end_to_end_vs_mp",
        ratio,
        batch_size=BATCH_SIZE,
        mp_msgs_per_s=round(queue_rate),
        shm_msgs_per_s=round(ring_rate),
    )
