"""Benchmark: the columnar batched buffer path vs the per-sample path.

The training buffer's ``get``/``put`` path is the system's hot path: it is
what lets online training keep the GPU saturated while clients stream data in
(paper Section 3.2).  ``get_batch_columns`` — what the training loop actually
calls — draws the whole batch under a single lock acquisition with one
vectorized RNG call per chunk and gathers it straight out of the column
store as two matrices; the reference ``get_batch_per_sample`` path acquires
the lock and calls the scalar RNG once per sample.  This benchmark asserts
the batched path is at least 3x faster at the paper's batch size of 10 on
the two randomized policies (FIRO and Reservoir), and that bulk insertion of
a :class:`ColumnBatch` chunk (what the columnar transport drain delivers)
beats per-sample ``put``.
"""

import time

import numpy as np
import pytest

from repro.buffers import FIFOBuffer, FIROBuffer, ReservoirBuffer
from repro.buffers.base import SampleRecord
from repro.buffers.columns import ColumnBatch
from repro.utils.constants import bench_min_speedup, record_bench_result

BATCH_SIZE = 10
NUM_BATCHES = 200
CAPACITY = 4_000
REPEATS = 7
# Required batched-vs-per-sample speedup on FIRO/Reservoir.  The default (3x,
# measured ~4x locally) is the acceptance bar; CI on shared runners sets
# REPRO_BENCH_MIN_SPEEDUP lower because wall-clock ratios are noisy there.
MIN_SPEEDUP = bench_min_speedup()
# The FIFO (no RNG) and put_many floors scale with the same noise margin.
NOISE_SCALE = MIN_SPEEDUP / 3.0

RECORDS = [
    SampleRecord(
        inputs=np.zeros(6, dtype=np.float32),
        target=np.zeros(16, dtype=np.float32),
        source_id=0,
        time_step=index,
    )
    for index in range(CAPACITY)
]
# The same samples as one columnar chunk — the shape in which the transport
# drain hands them to the aggregator (built outside every timed region).
CHUNK = ColumnBatch.from_records(RECORDS)


def make_buffer(kind):
    cls = {"fifo": FIFOBuffer, "firo": FIROBuffer, "reservoir": ReservoirBuffer}[kind]
    if kind == "fifo":
        buffer = cls(capacity=CAPACITY)
    else:
        buffer = cls(capacity=CAPACITY, threshold=0, seed=1)
    buffer.put_many(RECORDS)
    return buffer


def time_extraction(kind, batched):
    """Seconds to draw NUM_BATCHES batches of BATCH_SIZE (best of REPEATS)."""
    best = float("inf")
    for _ in range(REPEATS):
        buffer = make_buffer(kind)
        extract = buffer.get_batch_columns if batched else buffer.get_batch_per_sample
        began = time.perf_counter()
        for _ in range(NUM_BATCHES):
            batch = extract(BATCH_SIZE, timeout=5.0)
            assert len(batch) == BATCH_SIZE
        best = min(best, time.perf_counter() - began)
    return best


@pytest.mark.parametrize("kind", ["firo", "reservoir"])
def test_batched_extraction_at_least_3x_faster(kind):
    per_sample = time_extraction(kind, batched=False)
    batched = time_extraction(kind, batched=True)
    speedup = per_sample / batched
    per_batch = batched / NUM_BATCHES * 1e6
    print(
        f"\n[{kind}] per-sample {per_sample / NUM_BATCHES * 1e6:.1f} us/batch, "
        f"batched {per_batch:.1f} us/batch, speedup {speedup:.2f}x"
    )
    record_bench_result(f"buffer.batched_get_{kind}", speedup, floor=MIN_SPEEDUP,
                        batch_size=BATCH_SIZE)
    assert speedup >= MIN_SPEEDUP, (
        f"batched get_batch only {speedup:.2f}x faster than per-sample on {kind}"
    )


def test_batched_extraction_faster_on_fifo():
    """FIFO has no RNG, so the win is smaller but must not regress."""
    per_sample = time_extraction("fifo", batched=False)
    batched = time_extraction("fifo", batched=True)
    speedup = per_sample / batched
    print(f"\n[fifo] speedup {speedup:.2f}x")
    assert speedup >= 1.5 * NOISE_SCALE


@pytest.mark.parametrize("kind", ["fifo", "firo", "reservoir"])
def test_put_many_faster_than_per_sample_put(kind):
    def time_put(bulk):
        best = float("inf")
        # More repeats than the extraction benches: the measured ratio is
        # ~60-130x, so scheduler noise on either side moves it by tens of
        # percent and the best-of estimate needs more draws to settle.
        for _ in range(2 * REPEATS):
            cls = {"fifo": FIFOBuffer, "firo": FIROBuffer, "reservoir": ReservoirBuffer}[kind]
            buffer = cls(capacity=CAPACITY) if kind == "fifo" else cls(
                capacity=CAPACITY, threshold=0, seed=1)
            began = time.perf_counter()
            if bulk:
                inserted = buffer.put_many(CHUNK)
                assert inserted == CAPACITY
            else:
                for record in RECORDS:
                    buffer.put(record)
            best = min(best, time.perf_counter() - began)
        return best

    per_sample = time_put(bulk=False)
    bulk = time_put(bulk=True)
    speedup = per_sample / bulk
    print(f"\n[{kind}] put_many speedup {speedup:.2f}x")
    record_bench_result(f"buffer.put_many_{kind}", speedup, floor=2.0 * NOISE_SCALE)
    assert speedup >= 2.0 * NOISE_SCALE
