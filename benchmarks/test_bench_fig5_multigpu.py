"""Benchmark reproducing Figure 5: multi-GPU scaling of the training buffers.

Paper result: FIFO and FIRO fail to provide higher throughput when GPUs are
added (production-limited); only the Reservoir scales, and it consistently
reaches the lowest validation loss at every GPU count.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig5_multigpu import run_fig5_multigpu
from repro.experiments.reporting import format_rows


def test_fig5_multigpu(benchmark, bench_scale):
    result = run_once(
        benchmark,
        run_fig5_multigpu,
        bench_scale,
        gpu_counts=(1, 2, 4),
        buffer_kinds=("fifo", "firo", "reservoir"),
    )

    print()
    print(format_rows(result.summary_rows(), title="Figure 5 / Table 1 — buffers x GPU count"))
    print(f"Reservoir throughput scaling 1->4 GPUs: {result.throughput_scaling('reservoir'):.2f}x")
    print(f"FIFO throughput scaling 1->4 GPUs:      {result.throughput_scaling('fifo'):.2f}x")

    # Paper-shape assertions.
    assert result.throughput("reservoir", 4) > result.throughput("fifo", 4)
    assert result.throughput_scaling("reservoir") >= result.throughput_scaling("fifo") * 0.9
    for gpus in (1, 2, 4):
        assert result.best_val("reservoir", gpus) <= result.best_val("fifo", gpus) * 1.25
