"""Shared fixtures of the benchmark harness.

Every benchmark runs one of the paper's experiments at the scaled-down
configuration defined here (see DESIGN.md for the mapping to the paper's
full-scale parameters) and prints the same rows/series the paper reports.
Benchmarks are wall-clock heavy (they run full online studies), so each one
uses a single pytest-benchmark round.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.common import ExperimentScale, default_scale


def pytest_addoption(parser):
    parser.addoption(
        "--repro-full-scale",
        action="store_true",
        default=False,
        help="Run the benchmarks at the larger (slower) reference scale.",
    )


@pytest.fixture(scope="session")
def bench_scale(request) -> ExperimentScale:
    """Experiment scale used by the benchmarks.

    The default keeps every benchmark in the seconds range; ``--repro-full-scale``
    switches to a larger configuration that takes minutes but produces smoother
    curves (still far below the paper's supercomputer scale).
    """
    if request.config.getoption("--repro-full-scale"):
        return replace(
            default_scale(),
            nx=24,
            ny=24,
            num_steps=30,
            num_simulations=36,
            series_sizes=(16, 16, 4),
            buffer_capacity=256,
            buffer_threshold=64,
            hidden_sizes=(64, 64),
        )
    return replace(
        default_scale(),
        nx=12,
        ny=12,
        num_steps=12,
        num_simulations=12,
        series_sizes=(6, 4, 2),
        buffer_capacity=48,
        buffer_threshold=12,
        hidden_sizes=(32, 32),
        validation_simulations=2,
        validation_interval=15,
        inter_series_delay=0.2,
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
