"""Benchmark: columnar drained-chunk ingest vs the per-record path.

The full server-side hot path — drained wire batch → dedup/liveness
bookkeeping → training buffer → ``_stack_batch`` — used to materialise one
``SampleRecord`` (plus an inputs row and a payload view) per message.  The
columnar plane moves whole :class:`ColumnBatch` chunks instead: one
structured header parse per batch, one adoption copy into the column store,
vectorized dedup over the id/step vectors, and a drawn batch that *is* the
stacked forward-pass input.  This benchmark runs both paths over identical
packed wire batches at the paper's batch size of 10 and asserts the columnar
path ingests at least 1.5x faster (measured ~2-3x locally; CI relaxes the
floor through ``REPRO_BENCH_MIN_SPEEDUP`` on noisy shared runners).
"""

import time

from transport_fixture import BATCH_SIZE, BATCHES, NUM_BATCHES, REPEATS

from repro.buffers import FIFOBuffer
from repro.parallel.messages import pack_many, unpack_columns, unpack_many
from repro.parallel.transport import MessageRouter
from repro.server.aggregator import DataAggregator
from repro.server.fault import MessageLog
from repro.server.trainer import TrainerConfig, TrainingWorker
from repro.utils.constants import bench_min_speedup, record_bench_result

MIN_SPEEDUP = bench_min_speedup(1.5)

PACKED = [pack_many(batch) for batch in BATCHES]
MESSAGES_TOTAL = NUM_BATCHES * BATCH_SIZE


def make_pipeline():
    """A fresh aggregator + buffer + trainer stub (state resets per repeat)."""
    buffer = FIFOBuffer(capacity=4 * BATCH_SIZE)
    aggregator = DataAggregator(
        rank=0,
        router=MessageRouter(num_server_ranks=1),
        buffer=buffer,
        expected_clients=1,
        message_log=MessageLog(),
    )
    worker = TrainingWorker.__new__(TrainingWorker)
    worker.config = TrainerConfig(batch_size=BATCH_SIZE)
    worker._batch_inputs = None
    worker._batch_targets = None
    return aggregator, buffer, worker


def time_ingest(columnar: bool) -> float:
    """Seconds to move every packed batch wire → buffer → stacked batch."""
    best = float("inf")
    for _ in range(REPEATS):
        aggregator, buffer, worker = make_pipeline()
        began = time.perf_counter()
        for wire in PACKED:
            if columnar:
                chunk = unpack_columns(wire)
                aggregator._handle_items([chunk])
                batch = buffer.get_batch_columns(BATCH_SIZE, timeout=5.0)
            else:
                messages = unpack_many(wire, copy_payloads=True)
                aggregator._handle_many(messages)
                batch = buffer.get_batch(BATCH_SIZE, timeout=5.0)
            inputs, targets = worker._stack_batch(batch)
            assert len(inputs) == BATCH_SIZE and len(targets) == BATCH_SIZE
        best = min(best, time.perf_counter() - began)
        assert aggregator.stats.samples_received == MESSAGES_TOTAL
        assert aggregator.stats.duplicates_discarded == 0
    return best


def test_columnar_ingest_at_least_1_5x_per_record():
    per_record = time_ingest(columnar=False)
    columnar = time_ingest(columnar=True)
    speedup = per_record / columnar
    per_record_rate = MESSAGES_TOTAL / per_record
    columnar_rate = MESSAGES_TOTAL / columnar
    print(
        f"\n[columnar] per-record {per_record_rate:,.0f} msg/s, "
        f"columnar {columnar_rate:,.0f} msg/s, speedup {speedup:.2f}x"
    )
    record_bench_result(
        "columnar.drain_vs_per_record",
        speedup,
        floor=MIN_SPEEDUP,
        batch_size=BATCH_SIZE,
        per_record_msgs_per_s=round(per_record_rate),
        columnar_msgs_per_s=round(columnar_rate),
    )
    assert speedup >= MIN_SPEEDUP, (
        f"columnar ingest only {speedup:.2f}x faster than the per-record path"
    )
