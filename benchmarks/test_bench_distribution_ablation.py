"""Ablation: round-robin client->server-rank distribution vs single-rank streaming.

The paper distributes each client's time steps round-robin over all server
ranks (offset by the client id) "to limit having all clients sending the same
time step to the same GPU" and to balance the data received per rank.  This
benchmark measures the per-rank balance and the time-step mixing achieved by
round-robin compared with sending every message of a client to one rank.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.reporting import format_rows
from repro.parallel.messages import TimeStepMessage
from repro.parallel.transport import MessageRouter


def _simulate_distribution(num_ranks: int, num_clients: int, steps: int, round_robin: bool):
    router = MessageRouter(num_ranks, max_queue_size=1_000_000)
    connections = [router.connect(cid) for cid in range(num_clients)]
    for step in range(1, steps + 1):
        for cid, connection in enumerate(connections):
            message = TimeStepMessage(client_id=cid, time_step=step,
                payload=np.zeros(1, dtype=np.float32))
            if round_robin:
                connection.send_round_robin(message)
            else:
                connection.send_to(cid % num_ranks, message)
    per_rank_counts = [router.pending(rank) for rank in range(num_ranks)]
    # Mixing metric: how many distinct time-step indices each rank received.
    per_rank_steps = []
    for rank in range(num_ranks):
        seen = set()
        while True:
            message = router.poll(rank, timeout=None)
            if message is None:
                break
            seen.add(message.time_step)
        per_rank_steps.append(len(seen))
    return per_rank_counts, per_rank_steps


def test_distribution_ablation(benchmark):
    num_ranks, num_clients, steps = 4, 6, 40

    def run():
        return {
            "round_robin": _simulate_distribution(num_ranks, num_clients, steps, True),
            "per_client_rank": _simulate_distribution(num_ranks, num_clients, steps, False),
        }

    results = run_once(benchmark, run)
    rows = []
    for mode, (counts, distinct_steps) in results.items():
        rows.append({
            "mode": mode,
            "per_rank_samples": str(counts),
            "imbalance": max(counts) - min(counts),
            "min_distinct_time_steps": min(distinct_steps),
        })
    print()
    print(format_rows(rows, title="Ablation — client->rank data distribution"))

    rr_counts, rr_steps = results["round_robin"]
    single_counts, single_steps = results["per_client_rank"]
    # Round-robin balances sample counts at least as well...
    assert max(rr_counts) - min(rr_counts) <= max(single_counts) - min(single_counts)
    # ...and exposes every rank to (nearly) the full range of time steps,
    # which reduces the intra-simulation bias of each rank's buffer.
    assert min(rr_steps) >= min(single_steps)
    assert min(rr_steps) >= steps * 0.75
