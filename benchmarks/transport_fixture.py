"""Shared message fixture of the transport benchmarks.

Both the wire-format benchmark (`test_bench_transport.py`) and the shm ring
benchmark (`test_bench_shm_ring.py`) must measure the *same* payloads or
their cross-backend speedups stop being comparable; the batch shape lives
here once.
"""

import numpy as np

from repro.parallel.messages import TimeStepMessage

BATCH_SIZE = 10
NUM_BATCHES = 300
FIELD_SIZE = 256  # scaled-down flattened field, same order as the tiny studies
REPEATS = 7


def make_batch(start_step: int, client_id: int = 0):
    return [
        TimeStepMessage(
            client_id=client_id,
            time_step=start_step + index,
            time_value=(start_step + index) * 0.01,
            parameters=(100.0, 200.0, 300.0, 400.0, 500.0),
            payload=np.arange(FIELD_SIZE, dtype=np.float32),
            sequence_number=start_step + index,
        )
        for index in range(BATCH_SIZE)
    ]


BATCHES = [make_batch(batch * BATCH_SIZE) for batch in range(NUM_BATCHES)]
