"""Sharded scale-out benchmark: forked-client stress + calibrated scaling.

Two measurements, honestly separated:

1. **Real stress study.**  Eight forked client processes stream disjoint
   batched streams through the real sharded front door (hash ring over shm
   ring transports) at 1, 2 and 4 shards.  Delivery is asserted exactly —
   every message lands on the shard the ring owns it to, nothing dropped,
   nothing torn — and the measured single-shard drain rate calibrates the
   model below.  The raw aggregate rates are recorded as detail; on a small
   box one drain loop bounds all shard counts, so the *measured* wall-clock
   ratio says nothing about scale-out.
2. **Calibrated saturation model.**  The recorded ``sharding.scale_2x`` /
   ``sharding.scale_4x`` numbers come from
   :func:`~repro.server.sharding.estimate_sharded_throughput` over the real
   ring assignment of 256 virtual clients offering ~4.5x one shard's
   measured capacity, capped by the real
   :func:`~repro.server.sharding.place_shards` concurrency on a
   ``jean_zay_like`` GPU partition — each shard serves
   ``min(offered, per_shard_rate)``.  The detail fields label the mode so
   the report never passes a model number off as a wall-clock one.
"""

import time

from transport_fixture import BATCH_SIZE, make_batch

from repro.cluster.resources import jean_zay_like
from repro.launcher.launcher import _fork_mp
from repro.parallel.shm_ring import ShmRingTransport
from repro.server.sharding import (
    HashRing,
    ShardedTransport,
    estimate_sharded_throughput,
    place_shards,
)
from repro.utils.constants import record_bench_result

BATCHES_PER_PRODUCER = 40
REPEATS = 2
RING_SLOT_BYTES = 16_384

#: Producer client ids chosen so the 4-shard ring assigns two to every shard
#: (ids are deterministic: the ring is a pure hash).  The same ids also load
#: both shards of the 2-shard ring.
CLIENT_IDS = (0, 1, 2, 3, 4, 10, 14, 16)
MESSAGES_TOTAL = len(CLIENT_IDS) * BATCHES_PER_PRODUCER * BATCH_SIZE

#: Saturation-model inputs: virtual ensemble size and offered load relative
#: to one shard's measured capacity (the paper regime: the ensemble offers
#: several times what one server can drain).
VIRTUAL_CLIENTS = 256
OVERLOAD_FACTOR = 4.5

STREAMS = {
    client_id: [
        make_batch(index * BATCH_SIZE, client_id=client_id)
        for index in range(BATCHES_PER_PRODUCER)
    ]
    for client_id in CLIENT_IDS
}


def _producer(router, client_id):
    for batch in STREAMS[client_id]:
        router.push_many(0, batch)


def _build_router(num_shards: int) -> ShardedTransport:
    shards = [
        ShmRingTransport(
            num_server_ranks=1,
            max_concurrent_clients=len(CLIENT_IDS),
            ring_slots=BATCHES_PER_PRODUCER + 8,
            ring_slot_bytes=RING_SLOT_BYTES,
        )
        for _ in range(num_shards)
    ]
    return ShardedTransport(shards, HashRing(num_shards))


def _pump(router) -> float:
    """Aggregate drain rate with all producers live (best of REPEATS runs)."""
    best = float("inf")
    for _ in range(REPEATS):
        processes = [
            _fork_mp().Process(target=_producer, args=(router, client_id), daemon=True)
            for client_id in CLIENT_IDS
        ]
        began = time.perf_counter()
        for process in processes:
            process.start()
        drained = 0
        while drained < MESSAGES_TOTAL:
            chunk = router.poll_many(0, max_messages=256, timeout=5.0)
            assert chunk, "sharded transport stalled while draining"
            drained += len(chunk)
        elapsed = time.perf_counter() - began
        for process in processes:
            process.join(10)
        best = min(best, elapsed)
    return MESSAGES_TOTAL / best


def _stress(num_shards: int) -> float:
    """Run the forked-client stress study at ``num_shards`` shards."""
    router = _build_router(num_shards)
    try:
        rate = _pump(router)
        # Exact delivery, shard by shard: every client's whole stream landed
        # on the shard the ring owns it to, nothing dropped, nothing torn.
        assignment = router.ring.partition(CLIENT_IDS)
        per_stream = REPEATS * BATCHES_PER_PRODUCER * BATCH_SIZE
        for shard, transport in enumerate(router.shards):
            expected = len(assignment[shard]) * per_stream
            assert transport.stats.messages_routed == expected, (shard, num_shards)
        stats = router.stats
        assert stats.messages_routed == REPEATS * MESSAGES_TOTAL
        assert stats.dropped_messages == 0
        assert stats.torn_batches == 0
    finally:
        router.shutdown()
    return rate


def _model_aggregate(num_shards: int, per_shard_rate: float) -> float:
    """Saturation-model aggregate msg/s at ``num_shards`` shards."""
    ring = HashRing(num_shards)
    per_client = OVERLOAD_FACTOR * per_shard_rate / VIRTUAL_CLIENTS
    rates = {client_id: per_client for client_id in range(VIRTUAL_CLIENTS)}
    plan = place_shards(jean_zay_like(gpu_nodes=1), num_shards)
    estimate = estimate_sharded_throughput(
        ring, rates, per_shard_rate, concurrent_shards=plan.concurrent_shards
    )
    return estimate.aggregate


def test_sharded_scale_out():
    measured = {num_shards: _stress(num_shards) for num_shards in (1, 2, 4)}
    per_shard_rate = measured[1]

    aggregate = {
        num_shards: _model_aggregate(num_shards, per_shard_rate)
        for num_shards in (1, 2, 4)
    }
    scale_2x = aggregate[2] / aggregate[1]
    scale_4x = aggregate[4] / aggregate[1]

    print(
        f"\n[sharding] measured 1-shard drain {per_shard_rate:,.0f} msg/s; "
        f"saturated aggregate 2 shards {aggregate[2]:,.0f} msg/s ({scale_2x:.2f}x), "
        f"4 shards {aggregate[4]:,.0f} msg/s ({scale_4x:.2f}x)"
    )

    detail = {
        "mode": "calibrated_saturation_model",
        "per_shard_rate_msgs_per_s": round(per_shard_rate),
        "virtual_clients": VIRTUAL_CLIENTS,
        "overload_factor": OVERLOAD_FACTOR,
        "stress_1shard_msgs_per_s": round(measured[1]),
        "stress_2shard_msgs_per_s": round(measured[2]),
        "stress_4shard_msgs_per_s": round(measured[4]),
    }
    record_bench_result(
        "sharding.scale_2x", scale_2x, floor=1.7,
        aggregate_msgs_per_s=round(aggregate[2]), **detail,
    )
    record_bench_result(
        "sharding.scale_4x", scale_4x, floor=3.0,
        aggregate_msgs_per_s=round(aggregate[4]), **detail,
    )

    assert scale_2x >= 1.7
    assert scale_4x >= 3.0
