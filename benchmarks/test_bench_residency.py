"""Benchmark reproducing Appendix A: expected residency time in the Reservoir.

Paper result: with random-overwrite insertion into a container of capacity n,
the expected number of insertions an item survives is n - 1.
"""

from benchmarks.conftest import run_once
from repro.experiments.appendix_residency import run_residency_experiment
from repro.experiments.reporting import format_rows


def test_residency(benchmark):
    result = run_once(benchmark, run_residency_experiment,
        capacities=(16, 64, 256, 1024), insertions_per_capacity=500)

    print()
    print(format_rows(result.summary_rows(),
            title="Appendix A — measured vs analytic residency time (n-1)"))

    assert result.max_relative_error() < 0.1
    for capacity in (16, 64, 256, 1024):
        assert result.analytic_means[capacity] == capacity - 1
