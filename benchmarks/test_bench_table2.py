"""Benchmark reproducing Table 2: large-scale online vs offline comparison.

Two parts, as described in DESIGN.md:

* a *measured* scaled-down run of both settings with the real framework
  (online sees several times more unique simulations at a comparable wall
  clock, with a higher throughput and a better MSE);
* an *extrapolated* full-scale estimate using the discrete-event performance
  model with the paper's parameters (20 000 simulations, 8 TB, 4 GPUs), which
  reproduces the shape of the published numbers: offline ~38 samples/s and
  ~24 h total vs online ~477 samples/s and ~2 h.
"""

from benchmarks.conftest import run_once
from repro.experiments.reporting import format_rows
from repro.experiments.table2 import extrapolate_table2, run_table2


def test_table2_measured(benchmark, bench_scale):
    result = run_once(
        benchmark,
        run_table2,
        bench_scale,
        offline_epochs=4,
        online_simulation_factor=3,
        num_ranks=2,
        offline_io_delay_per_sample=0.002,
    )

    print()
    print(format_rows(result.rows(), title="Table 2 (measured, scaled down)"))
    print(f"throughput ratio online/offline: {result.throughput_ratio:.1f}x (paper: ~12.5x)")
    print(f"MSE improvement online vs offline: {result.mse_improvement_pct:.1f}% (paper: ~47%)")

    assert result.online.unique_samples > result.offline.unique_samples
    assert result.throughput_ratio > 1.5
    assert result.online.mse <= result.offline.mse * 1.2


def test_table2_extrapolated_full_scale(benchmark):
    extrapolation = run_once(benchmark, extrapolate_table2)

    rows = [
        {
            "setting": "offline (model)",
            "total_hours": extrapolation.offline_total_hours,
            "throughput": extrapolation.offline_throughput,
            "dataset_gb": extrapolation.offline_dataset_gb,
            "cost_eur": extrapolation.offline_cost_euros,
        },
        {
            "setting": "online reservoir (model)",
            "total_hours": extrapolation.online_total_hours,
            "throughput": extrapolation.online_throughput,
            "dataset_gb": extrapolation.online_dataset_gb,
            "cost_eur": extrapolation.online_cost_euros,
        },
    ]
    print()
    print(format_rows(rows, title="Table 2 (extrapolated to the paper's full scale)"))
    print(f"8 TB storage cost if done offline: {extrapolation.offline_8tb_storage_cost_euros:.0f} EUR "
        "(paper: 480 EUR)")

    # Paper-shape assertions: who wins and by roughly what factor.
    assert extrapolation.online_throughput > 3 * extrapolation.offline_throughput
    assert extrapolation.online_total_hours < extrapolation.offline_total_hours
    assert 5.0 < extrapolation.offline_total_hours < 100.0
    assert 0.5 < extrapolation.online_total_hours < 20.0
    assert extrapolation.online_dataset_gb == 8000.0
