"""Benchmark reproducing Figure 3: sample-occurrence histogram of the Reservoir.

Paper result: most samples appear in training batches a couple of times (at
most ~8), and the repetition rate grows with the number of GPUs because each
rank's buffer receives fewer fresh samples while consuming more.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig3_occurrences import run_fig3_occurrences
from repro.experiments.reporting import format_histogram, format_rows


def test_fig3_occurrences(benchmark, bench_scale):
    result = run_once(benchmark, run_fig3_occurrences, bench_scale, gpu_counts=(1, 2, 4))

    print()
    print(format_rows(result.summary_rows(), title="Figure 3 — sample repetitions (Reservoir)"))
    for gpus, histogram in result.histograms.items():
        print(format_histogram(histogram, title=f"occurrences with {gpus} GPU(s)"))

    for gpus in (1, 2, 4):
        assert sum(result.histograms[gpus].values()) > 0
        assert result.mean_occurrences[gpus] >= 1.0
    # Repetition does not decrease when adding GPUs at fixed data production.
    assert result.mean_occurrences[4] >= result.mean_occurrences[1] * 0.8
