"""Benchmark: packed-batch wire format vs the per-message serialisation path.

The multi-process transport crosses a real process boundary, so every
time-step message pays a serialise/deserialise round trip.  The per-message
path is what a plain ``multiprocessing.Queue`` does — one pickle per message
— while the packed path (`pack_many`/`unpack_many`) serialises a whole batch
into one buffer with two contiguous numeric blocks.  This benchmark asserts
the packed round trip is at least 3x the per-message throughput at the
paper's batch size of 10, and reports the end-to-end effect of client-side
batching through a live :class:`MultiprocessTransport`.
"""

import pickle
import time

from transport_fixture import BATCH_SIZE, BATCHES, NUM_BATCHES, REPEATS

from repro.parallel.messages import pack_many, unpack_many
from repro.parallel.mp_transport import MultiprocessTransport
from repro.utils.constants import bench_min_speedup, record_bench_result

# Required packed-vs-per-message speedup (measured ~4x locally).  CI on shared
# runners sets REPRO_BENCH_MIN_SPEEDUP lower because wall-clock is noisy there.
MIN_SPEEDUP = bench_min_speedup()


def time_per_message_pickle():
    """One pickle per message — what multiprocessing.Queue does natively."""
    best = float("inf")
    for _ in range(REPEATS):
        began = time.perf_counter()
        for batch in BATCHES:
            for message in batch:
                restored = pickle.loads(pickle.dumps(message, pickle.HIGHEST_PROTOCOL))
            assert restored.time_step >= 0
        best = min(best, time.perf_counter() - began)
    return best


def time_packed_batches():
    """One packed buffer per batch."""
    best = float("inf")
    for _ in range(REPEATS):
        began = time.perf_counter()
        for batch in BATCHES:
            restored = unpack_many(pack_many(batch))
            assert len(restored) == BATCH_SIZE
        best = min(best, time.perf_counter() - began)
    return best


def test_packed_batch_serialisation_at_least_3x_per_message():
    per_message = time_per_message_pickle()
    packed = time_packed_batches()
    speedup = per_message / packed
    messages = NUM_BATCHES * BATCH_SIZE
    print(
        f"\n[wire] per-message {per_message / messages * 1e6:.2f} us/msg, "
        f"packed {packed / messages * 1e6:.2f} us/msg, speedup {speedup:.2f}x"
    )
    record_bench_result("wire.packed_vs_pickle", speedup, floor=MIN_SPEEDUP,
                        batch_size=BATCH_SIZE)
    assert speedup >= MIN_SPEEDUP, (
        f"packed batch round trip only {speedup:.2f}x faster than per-message pickling"
    )


def test_packed_batch_is_smaller_than_pickles():
    """The packed buffer also beats per-message pickles on wire size."""
    batch = BATCHES[0]
    packed_size = len(pack_many(batch))
    pickled_size = sum(len(pickle.dumps(m, pickle.HIGHEST_PROTOCOL)) for m in batch)
    print(f"\n[wire] packed {packed_size} B/batch vs pickled {pickled_size} B/batch")
    assert packed_size < pickled_size


def test_mp_transport_batched_push_throughput():
    """End-to-end messages/s through a live mp queue, batched vs unbatched.

    Informational for the Figure 2 transport budget: asserts only that the
    batched path moves every message (throughput ratios through a kernel pipe
    are too noisy on shared runners for a hard floor).
    """
    messages = [message for batch in BATCHES[:50] for message in batch]

    def pump(batch_size: int) -> float:
        transport = MultiprocessTransport(num_server_ranks=1, max_queue_size=100_000)
        try:
            connection = transport.connect(client_id=0, batch_size=batch_size)
            began = time.perf_counter()
            for message in messages:
                connection.send_round_robin(message)
            connection.flush()
            drained = 0
            while drained < len(messages):
                chunk = transport.poll_many(0, max_messages=256, timeout=1.0)
                assert chunk, "mp transport stalled while draining"
                drained += len(chunk)
            elapsed = time.perf_counter() - began
            assert transport.stats.messages_routed == len(messages)
            return len(messages) / elapsed
        finally:
            transport.shutdown()

    unbatched = pump(batch_size=1)
    batched = pump(batch_size=BATCH_SIZE)
    print(
        f"\n[mp] unbatched {unbatched:,.0f} msg/s, "
        f"batched(x{BATCH_SIZE}) {batched:,.0f} msg/s "
        f"({batched / unbatched:.2f}x)"
    )
    record_bench_result("mp.batched_vs_unbatched_push", batched / unbatched,
                        batch_size=BATCH_SIZE,
                        unbatched_msgs_per_s=round(unbatched),
                        batched_msgs_per_s=round(batched))


def test_tcp_loopback_throughput():
    """End-to-end messages/s through the tcp front door on loopback.

    Informational for the serving-tier budget: asserts only delivery and
    accounting (loopback wall-clock on shared runners is too noisy for a
    hard floor).  Also reports the zlib wire-size ratio, which *is* stable:
    the arange payload compresses, so the compressed run must move fewer
    bytes for the same messages.
    """
    from repro.parallel.tcp_transport import TcpTransport

    messages = [message for batch in BATCHES[:50] for message in batch]

    def pump(compression) -> tuple:
        transport = TcpTransport(num_server_ranks=1, max_queue_size=100_000,
                                 compression=compression)
        try:
            connection = transport.connect(client_id=0, batch_size=BATCH_SIZE)
            began = time.perf_counter()
            for message in messages:
                connection.send_round_robin(message)
            connection.flush()
            drained = 0
            while drained < len(messages):
                chunk = transport.poll_many(0, max_messages=256, timeout=1.0)
                assert chunk, "tcp transport stalled while draining"
                drained += len(chunk)
            elapsed = time.perf_counter() - began
            assert transport.stats.messages_routed == len(messages)
            assert transport.stats.dropped_messages == 0
            return len(messages) / elapsed, transport.stats.bytes_routed
        finally:
            transport.shutdown()

    plain_rate, plain_bytes = pump(compression=None)
    zlib_rate, zlib_bytes = pump(compression="zlib")
    print(
        f"\n[tcp] loopback {plain_rate:,.0f} msg/s ({plain_bytes:,} B), "
        f"zlib {zlib_rate:,.0f} msg/s ({zlib_bytes:,} B, "
        f"{plain_bytes / zlib_bytes:.2f}x smaller)"
    )
    record_bench_result("tcp.loopback_push", plain_rate / zlib_rate, unit="x",
                        plain_msgs_per_s=round(plain_rate),
                        zlib_msgs_per_s=round(zlib_rate),
                        plain_bytes=plain_bytes,
                        zlib_bytes=zlib_bytes)
    assert zlib_bytes < plain_bytes, "zlib run moved no fewer bytes on the wire"
