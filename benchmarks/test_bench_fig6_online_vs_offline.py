"""Benchmark reproducing Figure 6: online (large ensemble) vs multi-epoch offline.

Paper result: the offline baseline overfits (validation plateaus while training
loss keeps dropping); online Reservoir training on a much larger streamed
ensemble keeps improving and ends with a markedly lower validation loss (47 %
in the paper's full-scale run).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.fig6_online_vs_offline import run_fig6_online_vs_offline
from repro.experiments.reporting import format_rows


def test_fig6_online_vs_offline(benchmark, bench_scale):
    result = run_once(
        benchmark,
        run_fig6_online_vs_offline,
        bench_scale,
        offline_epochs=6,
        online_simulation_factor=4,
    )

    rows = [
        {
            "setting": "offline (multi-epoch)",
            "unique_samples": result.offline_unique_samples,
            "epochs": result.offline_epochs,
            "best_val_mse": result.offline_best_val,
            "overfit_gap": result.offline_overfit_gap,
        },
        {
            "setting": "online (Reservoir)",
            "unique_samples": result.online_unique_samples,
            "epochs": 1,
            "best_val_mse": result.online_best_val,
            "overfit_gap": result.online_overfit_gap,
        },
    ]
    print()
    print(format_rows(rows, title="Figure 6 — online vs multi-epoch offline"))
    print(f"validation-MSE improvement of online over offline: {result.improvement_pct:.1f}% "
        "(paper: 47%)")

    # Paper-shape assertions: online sees more unique data and generalises at
    # least as well; the offline baseline shows the larger overfitting gap.
    assert result.online_unique_samples > result.offline_unique_samples
    assert result.online_best_val <= result.offline_best_val * 1.1
    if np.isfinite(result.offline_overfit_gap) and np.isfinite(result.online_overfit_gap):
        assert result.online_overfit_gap <= result.offline_overfit_gap * 1.5 + 1e3
