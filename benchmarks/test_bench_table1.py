"""Benchmark reproducing Table 1: buffers x GPU counts (MSE, throughput, hours).

Paper result (250 simulations, 25 000 unique samples): online buffers remove
the separate generation phase; the Reservoir reaches the lowest validation MSE
of the online settings and is the only one whose throughput grows with the
number of GPUs (147 -> 476 samples/s from 1 to 4 GPUs), while offline training
is an order of magnitude slower end to end.
"""

from benchmarks.conftest import run_once
from repro.experiments.reporting import format_rows
from repro.experiments.table1 import run_table1


def test_table1(benchmark, bench_scale):
    rows = run_once(benchmark, run_table1, bench_scale, gpu_counts=(1, 2),
                    settings=("offline", "fifo", "firo", "reservoir"))

    print()
    print(format_rows([row.as_dict() for row in rows],
            title="Table 1 — training and throughput per buffer and GPU count"))

    by_key = {(row.buffer, row.gpus): row for row in rows}
    # Online settings have no separate generation phase.
    for (buffer_kind, _gpus), row in by_key.items():
        if buffer_kind != "offline":
            assert row.generation_hours == 0.0
    # Offline pays generation + I/O-bound training: lowest throughput of all.
    for gpus in (1, 2):
        assert by_key[("offline", gpus)].mean_throughput < by_key[("reservoir", gpus)].mean_throughput
        assert by_key[("reservoir", gpus)].mean_throughput >= by_key[("fifo", gpus)].mean_throughput
    # Reservoir throughput grows with the GPU count (FIFO's does not have to).
    assert by_key[("reservoir", 2)].mean_throughput > by_key[("reservoir", 1)].mean_throughput * 1.1
