"""Checker: struct formats, size constants and header offset families must agree.

Invariants encoded (the wire contracts of ``messages.py`` / ``shm_ring.py``):

1. Every ``struct.Struct`` format is explicit about byte order (``<``, ``>``,
   ``=`` or ``!``): native-alignment formats change layout across ABIs, which
   for a cross-process ring is a torn header.
2. A header struct named ``_X_HEADER`` must have a declared ``X_HEADER_BYTES``
   constant equal to ``calcsize(fmt)`` — widening a field without bumping the
   constant becomes a lint error instead of a torn batch.
3. ``pack``/``pack_into`` call arity must match the format's field count,
   including through the repo's method-alias idiom
   (``step_pack = _STEP_HEADER.pack``; ``load, store = _U64.unpack_from,
   _U64.pack_into``).
4. Offset-constant families (``_HDR_*``, ``_SLOT_*`` — module-level int
   constants sharing a ``_PREFIX_`` and starting at 0) must be unique,
   8-aligned, declared in increasing order, and fit inside the smallest
   ``*_BYTES`` budget constant, leaving room for the final 8-byte field.
"""

from __future__ import annotations

import ast
import re
import struct
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from tools.reprolint.core import Finding, Module, Project
from tools.reprolint.locks import call_name

RULE = "wire-layout"

_BYTE_ORDER_PREFIXES = ("<", ">", "=", "!")
_OFFSET_NAME = re.compile(r"^_([A-Z][A-Z0-9]*)_([A-Z0-9_]+)$")
_FIELD_BYTES = 8  # every offset family in this repo stores 8-byte slots

_STRUCT_METHODS = {"pack", "pack_into", "unpack", "unpack_from"}


class _StructSpec:
    def __init__(self, name: str, fmt: str, line: int) -> None:
        self.name = name
        self.fmt = fmt
        self.line = line
        self.size: Optional[int] = None
        self.nfields: Optional[int] = None
        try:
            compiled = struct.Struct(fmt)
        except struct.error:
            return
        self.size = compiled.size
        self.nfields = len(compiled.unpack(bytes(compiled.size)))


def _collect_structs(module: Module) -> Dict[str, _StructSpec]:
    specs: Dict[str, _StructSpec] = {}
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        value = node.value
        if (
            isinstance(target, ast.Name)
            and isinstance(value, ast.Call)
            and call_name(value).split(".")[-1] == "Struct"
            and value.args
            and isinstance(value.args[0], ast.Constant)
            and isinstance(value.args[0].value, str)
        ):
            specs[target.id] = _StructSpec(target.id, value.args[0].value, node.lineno)
    return specs


def _collect_int_constants(module: Module) -> Dict[str, Tuple[int, int]]:
    """Module-level ``NAME = <int literal>`` constants, as name -> (value, line)."""
    out: Dict[str, Tuple[int, int]] = {}
    for node in module.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, int)
            and not isinstance(node.value.value, bool)
        ):
            out[node.targets[0].id] = (node.value.value, node.lineno)
    return out


def _struct_method_aliases(
    module: Module, specs: Dict[str, _StructSpec]
) -> Dict[str, Tuple[str, str]]:
    """alias name -> (struct name, method) for ``x = NAME.pack`` style bindings."""
    aliases: Dict[str, Tuple[str, str]] = {}

    def bind(target: ast.expr, value: ast.expr) -> None:
        if (
            isinstance(target, ast.Name)
            and isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id in specs
            and value.attr in _STRUCT_METHODS
        ):
            aliases[target.id] = (value.value.id, value.attr)

    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, (ast.Tuple, ast.List)) and isinstance(
                node.value, (ast.Tuple, ast.List)
            ):
                for sub_target, sub_value in zip(target.elts, node.value.elts, strict=False):
                    bind(sub_target, sub_value)
            else:
                bind(target, node.value)
    return aliases


def _check_formats(module: Module, specs: Dict[str, _StructSpec]) -> List[Finding]:
    findings = []
    for spec in specs.values():
        if spec.size is None:
            findings.append(
                Finding(RULE, module.rel, spec.line, f"{spec.name}: invalid format {spec.fmt!r}")
            )
        elif not spec.fmt.startswith(_BYTE_ORDER_PREFIXES):
            findings.append(
                Finding(
                    RULE,
                    module.rel,
                    spec.line,
                    f"{spec.name}: format {spec.fmt!r} has no explicit byte order; "
                    "native alignment is ABI-dependent on the wire",
                )
            )
    return findings


def _check_size_constants(
    module: Module, specs: Dict[str, _StructSpec], constants: Dict[str, Tuple[int, int]]
) -> List[Finding]:
    findings = []
    for spec in specs.values():
        if spec.size is None:
            continue
        const_name = f"{spec.name.lstrip('_')}_BYTES"
        declared = constants.get(const_name)
        if declared is not None:
            value, line = declared
            if value != spec.size:
                findings.append(
                    Finding(
                        RULE,
                        module.rel,
                        line,
                        f"{const_name} = {value} but {spec.name} format {spec.fmt!r} "
                        f"packs {spec.size} bytes",
                    )
                )
        elif spec.name.lstrip("_").endswith("HEADER"):
            findings.append(
                Finding(
                    RULE,
                    module.rel,
                    spec.line,
                    f"header struct {spec.name} has no declared {const_name} size "
                    "constant to cross-check against",
                )
            )
    return findings


def _check_call_arity(
    module: Module,
    specs: Dict[str, _StructSpec],
    aliases: Dict[str, Tuple[str, str]],
) -> List[Finding]:
    findings = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        target: Optional[Tuple[str, str]] = None
        if (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in specs
            and node.func.attr in _STRUCT_METHODS
        ):
            target = (node.func.value.id, node.func.attr)
        elif isinstance(node.func, ast.Name) and node.func.id in aliases:
            target = aliases[node.func.id]
        if target is None:
            continue
        struct_name, method = target
        spec = specs[struct_name]
        if spec.nfields is None or any(isinstance(a, ast.Starred) for a in node.args):
            continue
        expected = {"pack": spec.nfields, "pack_into": spec.nfields + 2}.get(method)
        if expected is not None and len(node.args) != expected:
            findings.append(
                Finding(
                    RULE,
                    module.rel,
                    node.lineno,
                    f"{struct_name}.{method} called with {len(node.args)} args but "
                    f"format {spec.fmt!r} has {spec.nfields} fields"
                    + (" (+ buffer, offset)" if method == "pack_into" else ""),
                )
            )
    return findings


def _check_offset_families(
    module: Module, constants: Dict[str, Tuple[int, int]]
) -> List[Finding]:
    findings: List[Finding] = []
    families: Dict[str, List[Tuple[str, int, int]]] = defaultdict(list)
    for name, (value, line) in constants.items():
        match = _OFFSET_NAME.match(name)
        if match is not None:
            families[match.group(1)].append((name, value, line))

    budgets = sorted(
        (value, name) for name, (value, _line) in constants.items() if name.endswith("_BYTES")
    )

    for family, members in sorted(families.items()):
        members.sort(key=lambda item: item[2])  # declaration order
        values = [value for _name, value, _line in members]
        # Offset families start at 0 and span at least one field width;
        # small dense families (message type tags 0,1,2,…) are enums, not
        # layouts, and are skipped entirely.
        if len(members) < 2 or min(values) != 0 or max(values) < _FIELD_BYTES:
            continue
        first_line = members[0][2]
        for name, value, line in members:
            if value % _FIELD_BYTES:
                findings.append(
                    Finding(
                        RULE,
                        module.rel,
                        line,
                        f"offset {name} = {value} is not {_FIELD_BYTES}-byte aligned",
                    )
                )
        if len(set(values)) != len(values):
            duplicates = sorted({v for v in values if values.count(v) > 1})
            findings.append(
                Finding(
                    RULE,
                    module.rel,
                    first_line,
                    f"offset family _{family}_* has duplicate offsets {duplicates}: "
                    "two fields share a slot",
                )
            )
        if values != sorted(values):
            findings.append(
                Finding(
                    RULE,
                    module.rel,
                    first_line,
                    f"offset family _{family}_* is not declared in increasing order",
                )
            )
        needed = max(values) + _FIELD_BYTES
        budget = next(
            ((value, name) for value, name in budgets if value >= needed), None
        )
        if budgets and budget is None:
            findings.append(
                Finding(
                    RULE,
                    module.rel,
                    first_line,
                    f"offset family _{family}_* needs {needed} bytes but the largest "
                    f"*_BYTES budget is {budgets[-1][0]} ({budgets[-1][1]})",
                )
            )
    return findings


def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for module in project.modules:
        specs = _collect_structs(module)
        constants = _collect_int_constants(module)
        aliases = _struct_method_aliases(module, specs)
        findings.extend(_check_formats(module, specs))
        findings.extend(_check_size_constants(module, specs, constants))
        findings.extend(_check_call_arity(module, specs, aliases))
        findings.extend(_check_offset_families(module, constants))
    return findings
