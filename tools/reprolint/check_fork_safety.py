"""Checker: no synchronisation state created at import time in fork-visible modules.

Invariant encoded: the launcher forks client processes; any module imported
before the fork is duplicated into the child, so a lock, queue, thread or shm
handle created at module scope (or as a shared class attribute) is silently
cloned — a lock forked while held stays held forever in the child, a
module-scope ``SharedMemory`` handle leaks a mapping into every client, and a
module-scope ``Thread`` simply does not exist on the other side.  Such state
must be created per-instance (``__init__``) or post-fork.

Reachability: modules matching the fork roots (``repro.launcher.*``,
``repro.client.*``, plus the sharded serving tier ``repro.server.sharding``
and the tcp front door ``repro.server.serving`` — both are alive in the
parent when clients fork) plus everything they transitively import inside
the project.  When a project contains no fork root at all (e.g. a fixture file
linted on its own) every module is considered reachable, so the rule still
fires on standalone positives.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from tools.reprolint.core import Finding, Module, Project
from tools.reprolint.locks import call_name

RULE = "fork-safety"

#: Dotted-name suffixes of constructors whose products must not exist pre-fork
#: at module scope.  Matched against the trailing components of the call name,
#: so ``threading.Lock``, ``Lock`` (from-imported) and ``mp.Lock`` all hit.
_PRIMITIVE_CTORS = {
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
    "Queue",
    "LifoQueue",
    "PriorityQueue",
    "SimpleQueue",
    "JoinableQueue",
    "Thread",
    "SharedMemory",
    "local",
}

#: Bare names that are too generic to flag without a module qualifier.
_NEEDS_QUALIFIER = {"local"}

_FORK_ROOT_MARKERS = ("launcher", "client", "sharding", "serving")


def _is_primitive_ctor(node: ast.Call) -> Optional[str]:
    name = call_name(node)
    if not name:
        return None
    last = name.split(".")[-1]
    if last not in _PRIMITIVE_CTORS:
        return None
    if last in _NEEDS_QUALIFIER and "." not in name:
        return None
    return name


def _imported_project_modules(module: Module, known: Set[str]) -> Set[str]:
    """Project-internal modules this module imports (absolute + relative)."""
    out: Set[str] = set()

    def note(name: str) -> None:
        # ``from pkg import submodule`` names the submodule; ``from pkg.mod
        # import symbol`` names the module.  Record every known prefix.
        parts = name.split(".")
        for end in range(1, len(parts) + 1):
            candidate = ".".join(parts[:end])
            if candidate in known:
                out.add(candidate)

    package = module.name.rsplit(".", 1)[0] if "." in module.name else ""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                note(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import
                base_parts = module.name.split(".")
                # level 1 = current package (drop the module's own name).
                base = ".".join(base_parts[: len(base_parts) - node.level])
            else:
                base = node.module or package
            if node.level and node.module:
                base = f"{base}.{node.module}" if base else node.module
            if base:
                note(base)
                for alias in node.names:
                    note(f"{base}.{alias.name}")
    out.discard(module.name)
    return out


def _reachable_modules(project: Project) -> Set[str]:
    known = {module.name for module in project.modules}
    imports: Dict[str, Set[str]] = {
        module.name: _imported_project_modules(module, known) for module in project.modules
    }
    roots = {
        name
        for name in known
        if any(marker in name.split(".") for marker in _FORK_ROOT_MARKERS)
    }
    if not roots:
        return set(known)
    reachable: Set[str] = set()
    frontier = sorted(roots)
    while frontier:
        current = frontier.pop()
        if current in reachable:
            continue
        reachable.add(current)
        frontier.extend(sorted(imports.get(current, ()) - reachable))
    return reachable


def _iter_import_time_calls(module: Module) -> Iterable[tuple[ast.Call, str]]:
    """(call, scope) pairs for calls executed when the module is imported."""

    def scan(statements: Iterable[ast.stmt], scope: str) -> Iterable[tuple[ast.Call, str]]:
        for stmt in statements:
            if isinstance(stmt, ast.ClassDef):
                yield from scan(stmt.body, f"class {stmt.name} body")
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # runs later, per call — not import time
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    # default_factory=threading.Lock passes the callable, no
                    # call node exists; an actual Lock() in a default WILL
                    # appear as a Call and be flagged — correctly, since a
                    # shared default is exactly the forked-state hazard.
                    continue
                if isinstance(node, ast.Call):
                    yield node, scope

    yield from scan(module.tree.body, "module scope")


def check(project: Project) -> List[Finding]:
    reachable = _reachable_modules(project)
    findings: List[Finding] = []
    for module in project.modules:
        if module.name not in reachable:
            continue
        for node, scope in _iter_import_time_calls(module):
            ctor = _is_primitive_ctor(node)
            if ctor is not None:
                findings.append(
                    Finding(
                        RULE,
                        module.rel,
                        node.lineno,
                        f"{ctor}() created at {scope} in a fork-visible module; "
                        "create it per-instance or post-fork",
                    )
                )
    return findings
