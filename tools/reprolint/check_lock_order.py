"""Checker: the lock-acquisition order graph must be acyclic.

Invariant encoded: if any code path acquires lock B while holding lock A,
no path may acquire A while holding B — two threads interleaving those
paths deadlock.  Edges come from lexically nested ``with`` blocks plus one
level of interprocedural closure over ``self.method()`` calls made while a
lock is held (a called method that takes another lock extends the order).

Lock identity is per class attribute (``module.Class._lock``); bare local
locks participate within their function only.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from tools.reprolint.core import Finding, Project
from tools.reprolint.locks import (
    closure_acquires,
    iter_class_models,
    module_function_events,
    real_locks,
)

RULE = "lock-order"

Edge = Tuple[str, str]


def _find_cycles(edges: Dict[Edge, Tuple[str, int]]) -> List[List[str]]:
    graph: Dict[str, Set[str]] = {}
    for src, dst in edges:
        graph.setdefault(src, set()).add(dst)
        graph.setdefault(dst, set())
    cycles: List[List[str]] = []
    seen_cycles: Set[Tuple[str, ...]] = set()

    state: Dict[str, int] = {}  # 0 unvisited, 1 on stack, 2 done
    stack: List[str] = []

    def dfs(node: str) -> None:
        state[node] = 1
        stack.append(node)
        for succ in sorted(graph[node]):
            if state.get(succ, 0) == 0:
                dfs(succ)
            elif state.get(succ) == 1:
                cycle = stack[stack.index(succ) :]
                rotation = min(range(len(cycle)), key=lambda i: cycle[i])
                canonical = tuple(cycle[rotation:] + cycle[:rotation])
                if canonical not in seen_cycles:
                    seen_cycles.add(canonical)
                    cycles.append(list(canonical))
        stack.pop()
        state[node] = 2

    for node in sorted(graph):
        if state.get(node, 0) == 0:
            dfs(node)
    return cycles


#: Lock constructors whose re-acquisition by the owning thread is legal.
_REENTRANT_CTORS = {"RLock", "Condition"}


def check(project: Project) -> List[Finding]:
    #: (held-lock, acquired-lock) -> (file, line) of one witness acquisition.
    edges: Dict[Edge, Tuple[str, int]] = {}

    def lock_id(prefix: str, token: Tuple[str, str]) -> str:
        kind, name = token
        return f"{prefix}.{name}" if kind == "self" else f"{prefix}::{name}"

    def reentrant(model, token: Tuple[str, str]) -> bool:
        # Unknown constructors (lock passed in from outside) are assumed
        # reentrant: a missed self-deadlock beats a spurious one here.
        ctor = model.lock_attrs.get(token[1], "") if token[0] == "self" else ""
        return not ctor or ctor.split(".")[-1] in _REENTRANT_CTORS

    for module in project.modules:
        for model in iter_class_models(module):
            closure = closure_acquires(model)
            for events in model.functions.values():
                for acquire in events.acquires:
                    for held in real_locks(acquire.held_before):
                        if held == acquire.lock and reentrant(model, held):
                            continue
                        edge = (
                            lock_id(model.qualname, held),
                            lock_id(model.qualname, acquire.lock),
                        )
                        edges.setdefault(edge, (module.rel, acquire.node.lineno))
                for callee, held in events.self_calls:
                    for target in sorted(closure.get(callee, ())):
                        for held_lock in real_locks(held):
                            if held_lock == target and reentrant(model, held_lock):
                                continue
                            edge = (
                                lock_id(model.qualname, held_lock),
                                lock_id(model.qualname, target),
                            )
                            edges.setdefault(edge, (module.rel, events.func.lineno))
        for events in module_function_events(module):
            for acquire in events.acquires:
                for held in real_locks(acquire.held_before):
                    if held == acquire.lock:
                        continue
                    edge = (
                        lock_id(events.qualname, held),
                        lock_id(events.qualname, acquire.lock),
                    )
                    edges.setdefault(edge, (module.rel, acquire.node.lineno))

    findings: List[Finding] = []
    for cycle in _find_cycles(edges):
        closing = (cycle[-1], cycle[0])
        witness = edges.get(closing)
        if witness is None:  # pragma: no cover - cycle edges always recorded
            continue
        path, line = witness
        order = " -> ".join(cycle + [cycle[0]])
        findings.append(
            Finding(
                RULE,
                path,
                line,
                f"lock-order cycle (potential deadlock): {order}",
            )
        )
    return findings
