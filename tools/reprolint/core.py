"""Core infrastructure of reprolint: findings, pragmas, project loading, runner.

The pragma protocol
-------------------
A finding is suppressed by an inline comment on the flagged line (or on a
comment-only line directly above it)::

    self._cache.pop(key)  # reprolint: allow[lock-discipline] -- read-only after join()

The justification after ``--`` is mandatory: a pragma without one does not
suppress anything and is itself reported as ``bad-pragma``.  A justified
pragma that suppresses nothing is reported as ``unused-pragma``, so stale
suppressions cannot accumulate silently.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

PRAGMA_RE = re.compile(r"#\s*reprolint:\s*allow\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<why>.*\S))?")

#: Directories never scanned when a directory path is expanded.  The fixture
#: corpus contains intentional findings and is only ever linted file-by-file
#: from its own tests.
SKIP_DIRS = frozenset({".git", "__pycache__", ".venv", "build", "dist", "reprolint_fixtures"})

META_RULES = ("bad-pragma", "unused-pragma", "parse-error")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violation at a source location."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line, "message": self.message}

    def sort_key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.rule)


@dataclass
class Pragma:
    """One ``# reprolint: allow[...]`` comment."""

    line: int
    rules: Tuple[str, ...]
    justification: str
    own_line: bool
    used: bool = False

    def covers(self, line: int) -> bool:
        """Pragmas cover their own line; comment-only pragmas cover the next."""
        return line == self.line or (self.own_line and line == self.line + 1)


@dataclass
class Module:
    """A parsed source file plus its pragmas."""

    path: Path
    rel: str
    name: str
    text: str
    tree: ast.Module
    pragmas: List[Pragma] = field(default_factory=list)


@dataclass
class Project:
    """The set of modules one reprolint invocation analyses together."""

    root: Path
    modules: List[Module]
    parse_errors: List[Finding] = field(default_factory=list)

    def by_name(self, name: str) -> Optional[Module]:
        for module in self.modules:
            if module.name == name:
                return module
        return None


@dataclass
class Report:
    """Outcome of one run: surviving findings plus suppression bookkeeping."""

    findings: List[Finding]
    suppressed: List[Finding]
    checked_files: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "checked_files": self.checked_files,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def parse_pragmas(text: str) -> List[Pragma]:
    """Extract pragmas from real comment tokens (never from string literals)."""
    pragmas: List[Pragma] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return pragmas
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = PRAGMA_RE.search(token.string)
        if match is None:
            continue
        lineno, column = token.start
        rules = tuple(r.strip() for r in match.group("rules").split(",") if r.strip())
        why = (match.group("why") or "").strip()
        own_line = not token.line[:column].strip()
        pragmas.append(Pragma(line=lineno, rules=rules, justification=why, own_line=own_line))
    return pragmas


def module_name_for(rel: str) -> str:
    """Dotted module name for a repo-relative path (``src/`` layout aware)."""
    parts = Path(rel).with_suffix("").parts
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _iter_files(paths: Sequence[Path]) -> Iterable[Path]:
    seen = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(
                f
                for f in path.rglob("*.py")
                if not any(part in SKIP_DIRS for part in f.relative_to(path).parts)
            )
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def load_project(paths: Sequence[str | Path], root: str | Path | None = None) -> Project:
    """Parse every ``.py`` file under ``paths`` into a :class:`Project`.

    Files that fail to parse become ``parse-error`` findings rather than
    aborting the run, so one broken file cannot mask findings elsewhere.
    """
    root_path = Path(root) if root is not None else Path.cwd()
    modules: List[Module] = []
    errors: List[Finding] = []
    for file_path in _iter_files([Path(p) for p in paths]):
        try:
            rel = file_path.resolve().relative_to(root_path.resolve()).as_posix()
        except ValueError:
            rel = file_path.as_posix()
        text = file_path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text, filename=str(file_path))
        except SyntaxError as exc:
            errors.append(
                Finding("parse-error", rel, exc.lineno or 1, f"could not parse: {exc.msg}")
            )
            continue
        modules.append(
            Module(
                path=file_path,
                rel=rel,
                name=module_name_for(rel),
                text=text,
                tree=tree,
                pragmas=parse_pragmas(text),
            )
        )
    return Project(root=root_path, modules=modules, parse_errors=errors)


def apply_pragmas(project: Project, raw: List[Finding]) -> Tuple[List[Finding], List[Finding]]:
    """Split raw findings into (surviving, suppressed) and emit pragma meta-findings.

    Meta-findings (``bad-pragma``, ``unused-pragma``, ``parse-error``) are not
    themselves suppressible: the pragma protocol must not be able to silence
    its own misuse.
    """
    by_rel: Dict[str, Module] = {module.rel: module for module in project.modules}
    surviving: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in raw:
        module = by_rel.get(finding.path)
        pragma = None
        if module is not None and finding.rule not in META_RULES:
            for candidate in module.pragmas:
                if (
                    candidate.justification
                    and finding.rule in candidate.rules
                    and candidate.covers(finding.line)
                ):
                    pragma = candidate
                    break
        if pragma is None:
            surviving.append(finding)
        else:
            pragma.used = True
            suppressed.append(finding)

    for module in project.modules:
        for pragma in module.pragmas:
            if not pragma.justification:
                surviving.append(
                    Finding(
                        "bad-pragma",
                        module.rel,
                        pragma.line,
                        "pragma is missing its mandatory '-- justification' text",
                    )
                )
            elif not pragma.used:
                surviving.append(
                    Finding(
                        "unused-pragma",
                        module.rel,
                        pragma.line,
                        f"pragma allow[{', '.join(pragma.rules)}] suppresses nothing; remove it",
                    )
                )
    return surviving, suppressed


def run(project: Project, checkers: Sequence[object], rules: Sequence[str] | None = None) -> Report:
    """Run ``checkers`` over ``project`` and fold in the pragma protocol."""
    raw: List[Finding] = list(project.parse_errors)
    for checker in checkers:
        if rules is not None and checker.RULE not in rules:
            continue
        raw.extend(checker.check(project))
    surviving, suppressed = apply_pragmas(project, raw)
    surviving.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    return Report(
        findings=surviving, suppressed=suppressed, checked_files=len(project.modules)
    )
