"""Checker: attributes mutated under a lock must never be mutated outside one.

Invariant encoded: within a class, ``self.X`` is either a locked object (every
mutation happens inside ``with self.<lock>`` or a ``*_locked`` caller-holds-it
hook) or an unlocked one — never both.  Mixed access is exactly the shape of
the launcher-report ``+=`` race: a counter incremented under a lock on one
path and bare on another loses updates, because ``+=`` is not atomic.

Construction-time methods (``__init__`` et al.) are exempt: no other thread
can hold a reference yet.
"""

from __future__ import annotations

from typing import List

from tools.reprolint.core import Finding, Project
from tools.reprolint.locks import CONSTRUCTION_METHODS, Mutation, iter_class_models

RULE = "lock-discipline"


def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for module in project.modules:
        for model in iter_class_models(module):
            locked_attrs = set()
            unlocked: List[Mutation] = []
            for name, events in model.functions.items():
                if name in CONSTRUCTION_METHODS:
                    continue
                for mutation in events.mutations:
                    # Re-assigning the lock itself is creation, not guarded state.
                    if mutation.attr in model.lock_attrs:
                        continue
                    if mutation.held:
                        locked_attrs.add(mutation.attr)
                    else:
                        unlocked.append(mutation)
            for mutation in unlocked:
                if mutation.attr in locked_attrs:
                    findings.append(
                        Finding(
                            RULE,
                            module.rel,
                            mutation.node.lineno,
                            f"{model.name}.{mutation.path} is mutated under a lock "
                            "elsewhere but mutated here with no lock held",
                        )
                    )
    return findings
