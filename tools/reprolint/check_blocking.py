"""Checker: no unbounded blocking calls while a lock is held.

Invariant encoded: a thread holding a lock must stay schedulable — sleeping,
waiting on a queue, joining a thread or acquiring a second synchronisation
primitive while holding a lock serialises every other thread behind an
operation of unbounded latency (the exact shape of the PR 5 reader-parking
regression and the PR 2 mid-put queue wedge).

Exemption: waiting **on the held lock itself** (``self._lock.wait_for(...)``
inside ``with self._lock:``) releases the lock while parked — that is the
condition-variable protocol, not a blocking call under a lock.  Inside a
``*_locked`` convention method the held lock's identity is unknown, so any
known lock attribute of the class is treated as the held one.

Heuristics to stay precise on stdlib look-alikes:

- ``.get``  — flagged only with zero positional args (``dict.get`` has one);
  ``block=False`` / ``timeout=0`` variants are non-blocking and exempt.
- ``.put``  — flagged unless ``block=False`` / ``timeout=0`` / ``put_nowait``.
- ``.join`` — flagged only with zero positional args (``str.join`` and
  ``os.path.join`` always take at least one).
- ``.acquire`` — flagged unless called with ``False`` / ``blocking=False`` /
  ``timeout=0``.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Tuple

from tools.reprolint.core import Finding, Module, Project
from tools.reprolint.locks import (
    CALLER_LOCK,
    CallSite,
    ClassModel,
    call_name,
    iter_class_models,
    module_function_events,
    self_attr_path,
)

RULE = "blocking-under-lock"

#: ``<module>.<func>`` calls that always block.
_BLOCKING_DOTTED_SUFFIXES = ("time.sleep",)
_BLOCKING_BARE = {"sleep"}

_WAIT_METHODS = {"wait", "wait_for"}
_CV_ONLY_METHODS = {"notify", "notify_all", "release"}


def _kw(node: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _is_false(expr: Optional[ast.expr]) -> bool:
    return isinstance(expr, ast.Constant) and expr.value is False


def _is_zero(expr: Optional[ast.expr]) -> bool:
    return isinstance(expr, ast.Constant) and isinstance(expr.value, (int, float)) and expr.value == 0


def _receiver_is_held_lock(
    node: ast.Call, held: Sequence[Tuple[str, str]], model: Optional[ClassModel]
) -> bool:
    """True when the call's receiver is the lock the region already holds."""
    if not isinstance(node.func, ast.Attribute):
        return False
    receiver = node.func.value
    path = self_attr_path(receiver)
    if path is not None and len(path) == 1:
        if ("self", path[0]) in held:
            return True
        if CALLER_LOCK in held and model is not None and model.is_lock_attr(path[0]):
            return True
    if isinstance(receiver, ast.Name) and ("name", receiver.id) in held:
        return True
    return False


def _blocking_reason(node: ast.Call) -> Optional[str]:
    """Why this call blocks, or None when it does not (or we cannot tell)."""
    name = call_name(node)
    if any(name == s or name.endswith("." + s) for s in _BLOCKING_DOTTED_SUFFIXES):
        return f"{name}() sleeps"
    if name in _BLOCKING_BARE:
        return f"{name}() sleeps"
    if not isinstance(node.func, ast.Attribute):
        return None
    method = node.func.attr
    has_star = any(isinstance(a, ast.Starred) for a in node.args)
    positional = len(node.args)
    if method == "get" and positional == 0 and not has_star:
        if _is_false(_kw(node, "block")) or _is_zero(_kw(node, "timeout")):
            return None
        return "queue .get() blocks until an item arrives"
    if method == "put" and not has_star:
        if _is_false(_kw(node, "block")) or _is_zero(_kw(node, "timeout")):
            return None
        return "queue .put() blocks while the queue is full"
    if method == "join" and positional == 0 and not has_star:
        return ".join() blocks until the joined thread/process exits"
    if method == "acquire":
        first = node.args[0] if node.args else None
        if _is_false(first) or _is_false(_kw(node, "blocking")) or _is_zero(_kw(node, "timeout")):
            return None
        return ".acquire() blocks on a second synchronisation primitive"
    if method in _WAIT_METHODS:
        return f".{method}() parks the thread"
    return None


def _scan_calls(
    module: Module,
    qualname: str,
    calls: Sequence[CallSite],
    model: Optional[ClassModel],
) -> List[Finding]:
    findings: List[Finding] = []
    for site in calls:
        if not site.held:
            continue
        if _receiver_is_held_lock(site.node, site.held, model):
            continue  # condition-variable protocol on the held lock
        if isinstance(site.node.func, ast.Attribute) and site.node.func.attr in _CV_ONLY_METHODS:
            continue  # notify/release never block
        reason = _blocking_reason(site.node)
        if reason is not None:
            held_names = ", ".join(
                token[1] if token != CALLER_LOCK else "caller-held lock" for token in site.held
            )
            findings.append(
                Finding(
                    RULE,
                    module.rel,
                    site.node.lineno,
                    f"{qualname} holds {held_names} while blocking: {reason}",
                )
            )
    return findings


def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for module in project.modules:
        for model in iter_class_models(module):
            for events in model.functions.values():
                findings.extend(_scan_calls(module, events.qualname, events.calls, model))
        for events in module_function_events(module):
            findings.extend(_scan_calls(module, events.qualname, events.calls, None))
    return findings
