"""Command-line entry point: ``python -m tools.reprolint [paths] [options]``.

Exit status: 0 clean, 1 findings, 2 usage or internal error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from tools.reprolint import ALL_RULES, CHECKERS, load_project, run
from tools.reprolint.core import Report


def _render_summary(report: Report) -> str:
    """GitHub-flavoured markdown summary (for ``$GITHUB_STEP_SUMMARY``)."""
    lines = ["## reprolint", ""]
    status = "clean" if report.clean else f"{len(report.findings)} finding(s)"
    lines.append(
        f"Checked **{report.checked_files}** files: **{status}**, "
        f"{len(report.suppressed)} suppressed by pragma."
    )
    if report.findings:
        lines += ["", "| location | rule | message |", "| --- | --- | --- |"]
        for finding in report.findings:
            message = finding.message.replace("|", "\\|")
            lines.append(f"| `{finding.path}:{finding.line}` | {finding.rule} | {message} |")
    if report.suppressed:
        lines += ["", "<details><summary>Suppressed findings</summary>", ""]
        for finding in report.suppressed:
            lines.append(f"- `{finding.render()}`")
        lines += ["", "</details>"]
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="Repo-specific concurrency and wire-format static analysis.",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories to lint")
    parser.add_argument("--json", metavar="FILE", help="write the findings report as JSON")
    parser.add_argument(
        "--summary", metavar="FILE", help="write a markdown summary (GitHub step summary)"
    )
    parser.add_argument(
        "--rules",
        metavar="R1,R2",
        help=f"comma-separated subset of rules to run (default: all of {', '.join(ALL_RULES)})",
    )
    parser.add_argument("--list-rules", action="store_true", help="list rules and exit")
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress per-finding stdout lines"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for checker in CHECKERS:
            doc = (checker.__doc__ or "").strip().splitlines()[0]
            print(f"{checker.RULE:22s} {doc}")
        return 0

    rules: Optional[List[str]] = None
    if args.rules:
        rules = [rule.strip() for rule in args.rules.split(",") if rule.strip()]
        unknown = sorted(set(rules) - set(ALL_RULES))
        if unknown:
            print(f"error: unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    paths = [Path(p) for p in (args.paths or ["src"])]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    project = load_project(paths)
    report = run(project, CHECKERS, rules=rules)

    if args.json:
        Path(args.json).write_text(report.to_json(), encoding="utf-8")
    if args.summary:
        Path(args.summary).write_text(_render_summary(report), encoding="utf-8")

    if not args.quiet:
        for finding in report.findings:
            print(finding.render())
    tail = (
        f"reprolint: {report.checked_files} files, "
        f"{len(report.findings)} finding(s), {len(report.suppressed)} suppressed"
    )
    print(tail, file=sys.stderr)
    return 1 if report.findings else 0


if __name__ == "__main__":
    sys.exit(main())
