"""reprolint — repo-specific AST static analysis for the repro data path.

Five checkers encode the concurrency and wire-format invariants the code
review process kept re-discovering by hand (see ``docs/static_analysis.md``):

- ``lock-discipline``   : attributes mutated under a lock anywhere must never
                          be mutated outside one.
- ``lock-order``        : the nested lock-acquisition graph must be acyclic.
- ``blocking-under-lock``: no sleeps / blocking queue ops / joins / semaphore
                          waits while a lock is held.
- ``fork-safety``       : no threading primitives, queues, threads or shm
                          handles created at import time in modules reachable
                          from forked client code.
- ``wire-layout``       : ``struct.Struct`` formats, declared ``*_BYTES`` size
                          constants and packed-header offset families must
                          agree.

Run with ``python -m tools.reprolint src/``.
"""

from __future__ import annotations

from tools.reprolint import (
    check_blocking,
    check_fork_safety,
    check_lock_discipline,
    check_lock_order,
    check_wire_layout,
)
from tools.reprolint.core import Finding, Project, Report, load_project, run

#: All registered checkers, in report order.  Each checker is a module with a
#: ``RULE`` string and a ``check(project) -> list[Finding]`` function.
CHECKERS = (
    check_lock_discipline,
    check_lock_order,
    check_blocking,
    check_fork_safety,
    check_wire_layout,
)

ALL_RULES = tuple(checker.RULE for checker in CHECKERS)

__all__ = [
    "ALL_RULES",
    "CHECKERS",
    "Finding",
    "Project",
    "Report",
    "load_project",
    "run",
]
