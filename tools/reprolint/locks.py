"""Shared lock-region modeling used by the concurrency checkers.

The model is deliberately lexical and repo-convention driven:

- A *lock attribute* is ``self.X`` where ``X`` was assigned a known lock
  constructor (``threading.Lock/RLock/Condition/Semaphore``, ``mp.Lock`` …)
  in the class, declared as a dataclass ``field(default_factory=...)`` of one,
  or simply *looks* like a lock (name contains ``lock``/``mutex``/``cond``).
- A region is *locked* while lexically inside ``with self.X:`` (or a bare
  ``with name:`` over a lock-named local), or anywhere inside a method whose
  name ends in ``_locked`` — the repo convention for "caller holds the lock"
  hooks (e.g. ``TrainingBuffer._do_put_locked``).

Events produced per function: lock acquisitions (with the locks already held),
attribute mutations, and calls — each annotated with the held-lock stack.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from tools.reprolint.core import Module

#: ``("self", "_lock")`` for ``with self._lock:``; ``("name", "lock")`` for a
#: bare local; ``CALLER_LOCK`` inside ``*_locked`` convention methods.
LockToken = Tuple[str, str]
CALLER_LOCK: LockToken = ("caller", "<held-by-caller>")

LOCKISH_NAME = re.compile(r"lock|mutex|cond\b|_cv\b", re.IGNORECASE)

LOCK_CTORS = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
}

#: Methods that mutate their receiver in place (used for mutation detection).
MUTATOR_METHODS = {
    "append",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
}

#: Methods/dunders where unlocked mutation is construction-time and safe.
CONSTRUCTION_METHODS = {"__init__", "__post_init__", "__new__", "__set_name__"}


def call_name(node: ast.Call) -> str:
    """Dotted name of a call target (``threading.Lock`` for ``threading.Lock()``)."""
    parts: List[str] = []
    func = node.func
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
    return ".".join(reversed(parts))


def is_lock_ctor(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = call_name(node)
    return bool(name) and name.split(".")[-1] in LOCK_CTORS


def self_attr(node: ast.AST) -> Optional[str]:
    """``X`` when ``node`` is exactly ``self.X``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def self_attr_path(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``("report", "restarts")`` for ``self.report.restarts``; None otherwise."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and parts:
        return tuple(reversed(parts))
    return None


@dataclass
class Acquire:
    lock: LockToken
    node: ast.With
    held_before: Tuple[LockToken, ...]


@dataclass
class Mutation:
    attr: str  # first attribute off ``self`` (the guarded object)
    path: str  # full dotted path, for messages
    node: ast.AST
    held: Tuple[LockToken, ...]


@dataclass
class CallSite:
    node: ast.Call
    held: Tuple[LockToken, ...]


@dataclass
class FunctionEvents:
    func: ast.FunctionDef | ast.AsyncFunctionDef
    qualname: str
    acquires: List[Acquire] = field(default_factory=list)
    mutations: List[Mutation] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    #: Names of ``self.<method>()`` targets, with the locks held at the call.
    self_calls: List[Tuple[str, Tuple[LockToken, ...]]] = field(default_factory=list)


@dataclass
class ClassModel:
    module: Module
    node: ast.ClassDef
    name: str
    #: lock attribute -> constructor name ("threading.Condition", "?", ...)
    lock_attrs: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionEvents] = field(default_factory=dict)

    @property
    def qualname(self) -> str:
        return f"{self.module.name}.{self.name}"

    def is_lock_attr(self, attr: str) -> bool:
        return attr in self.lock_attrs or bool(LOCKISH_NAME.search(attr))


def _lock_token(expr: ast.AST, model: Optional["ClassModel"]) -> Optional[LockToken]:
    """Lock token for a ``with`` item, or None when it is not a lock."""
    attr = self_attr(expr)
    if attr is not None:
        if model is not None and model.is_lock_attr(attr):
            return ("self", attr)
        if model is None and LOCKISH_NAME.search(attr):
            return ("self", attr)
        return None
    if isinstance(expr, ast.Name) and LOCKISH_NAME.search(expr.id):
        return ("name", expr.id)
    # ``with self._lock:`` is the common shape; ``with lock.acquire_timeout()``
    # style helpers don't occur in this repo and are ignored.
    return None


class _RegionWalker(ast.NodeVisitor):
    """Collect acquire/mutation/call events with the lexical held-lock stack."""

    def __init__(self, events: FunctionEvents, model: Optional[ClassModel]) -> None:
        self.events = events
        self.model = model
        self.held: List[LockToken] = []

    # -- regions ---------------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        tokens: List[LockToken] = []
        for item in node.items:
            token = _lock_token(item.context_expr, self.model)
            if token is not None:
                self.events.acquires.append(Acquire(token, node, tuple(self.held)))
                self.held.append(token)
                tokens.append(token)
            else:
                self.visit(item.context_expr)
        for stmt in node.body:
            self.visit(stmt)
        for _ in tokens:
            self.held.pop()

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested function bodies run later (threads, callbacks): the lexical
        # held-lock context does not transfer to their execution.
        saved, self.held = self.held, []
        for stmt in node.body:
            self.visit(stmt)
        self.held = saved

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        saved, self.held = self.held, []
        self.visit(node.body)
        self.held = saved

    # -- mutations -------------------------------------------------------
    def _record_target(self, target: ast.AST) -> None:
        node = target
        if isinstance(node, ast.Subscript):
            node = node.value
        path = self_attr_path(node)
        if path is not None:
            self.events.mutations.append(
                Mutation(path[0], ".".join(path), target, tuple(self.held))
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    self._record_target(element)
            else:
                self._record_target(target)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_target(node.target)
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_target(target)

    # -- calls -----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self.events.calls.append(CallSite(node, tuple(self.held)))
        if isinstance(node.func, ast.Attribute):
            # ``self.stats.clients_seen.add(...)`` mutates ``self.stats``.
            if node.func.attr in MUTATOR_METHODS:
                path = self_attr_path(node.func.value)
                if path is not None:
                    self.events.mutations.append(
                        Mutation(path[0], ".".join(path), node, tuple(self.held))
                    )
            method = self_attr(node.func)
            if method is not None:
                self.events.self_calls.append((method, tuple(self.held)))
        self.generic_visit(node)


def _scan_lock_attrs(node: ast.ClassDef) -> Dict[str, str]:
    """Lock attributes of a class, from ctor assignments and dataclass fields."""
    found: Dict[str, str] = {}
    for stmt in ast.walk(node):
        # self.X = threading.Lock()  (anywhere in the class body's methods)
        if isinstance(stmt, ast.Assign) and is_lock_ctor(stmt.value):
            for target in stmt.targets:
                attr = self_attr(target)
                if attr is not None:
                    found[attr] = call_name(stmt.value)  # type: ignore[arg-type]
    for stmt in node.body:
        # X: threading.Lock = field(default_factory=threading.Lock)
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and isinstance(stmt.value, ast.Call)
            and call_name(stmt.value).split(".")[-1] == "field"
        ):
            for keyword in stmt.value.keywords:
                if keyword.arg == "default_factory":
                    name_parts = []
                    value = keyword.value
                    while isinstance(value, ast.Attribute):
                        name_parts.append(value.attr)
                        value = value.value
                    if isinstance(value, ast.Name):
                        name_parts.append(value.id)
                    dotted = ".".join(reversed(name_parts))
                    if dotted.split(".")[-1] in LOCK_CTORS:
                        found[stmt.target.id] = dotted
    return found


def build_class_model(module: Module, node: ast.ClassDef) -> ClassModel:
    model = ClassModel(module=module, node=node, name=node.name)
    model.lock_attrs = _scan_lock_attrs(node)
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            events = FunctionEvents(func=stmt, qualname=f"{model.qualname}.{stmt.name}")
            walker = _RegionWalker(events, model)
            if stmt.name.endswith("_locked"):
                walker.held.append(CALLER_LOCK)
            for body_stmt in stmt.body:
                walker.visit(body_stmt)
            model.functions[stmt.name] = events
    return model


def iter_class_models(module: Module) -> List[ClassModel]:
    models = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef):
            models.append(build_class_model(module, node))
    return models


def module_function_events(module: Module) -> List[FunctionEvents]:
    """Events for top-level module functions (lock names are locals).

    Only direct children of the module are walked: the region walker already
    recurses into nested functions (with the held-lock stack reset), so
    walking them again would double-report.
    """
    out: List[FunctionEvents] = []
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            events = FunctionEvents(func=node, qualname=f"{module.name}.{node.name}")
            walker = _RegionWalker(events, None)
            for stmt in node.body:
                walker.visit(stmt)
            out.append(events)
    return out


def real_locks(held: Sequence[LockToken]) -> Tuple[LockToken, ...]:
    """Drop the synthetic caller-held token (identity unknown)."""
    return tuple(token for token in held if token != CALLER_LOCK)


def closure_acquires(model: ClassModel) -> Dict[str, Set[LockToken]]:
    """Per-method set of self-locks acquired lexically or via self-method calls."""
    direct: Dict[str, Set[LockToken]] = {
        name: {a.lock for a in events.acquires if a.lock[0] == "self"}
        for name, events in model.functions.items()
    }
    closure = {name: set(locks) for name, locks in direct.items()}
    changed = True
    while changed:
        changed = False
        for name, events in model.functions.items():
            for callee, _held in events.self_calls:
                extra = closure.get(callee)
                if extra and not extra <= closure[name]:
                    closure[name] |= extra
                    changed = True
    return closure
