"""Repository tooling (static analysis, release helpers) — not shipped with `repro`."""
