"""Halton low-discrepancy sequence."""

from __future__ import annotations

import numpy as np

from repro.sampling.base import Sampler
from repro.utils.seeding import derive_rng

Array = np.ndarray

_FIRST_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61)


def radical_inverse(index: int, base: int) -> float:
    """Van der Corput radical inverse of ``index`` in the given ``base``."""
    if index < 0:
        raise ValueError("index must be non-negative")
    result = 0.0
    fraction = 1.0 / base
    while index > 0:
        index, digit = divmod(index, base)
        result += digit * fraction
        fraction /= base
    return result


def halton_sequence(start: int, count: int, dimension: int) -> Array:
    """``count`` Halton points (skipping the first ``start`` indices, 1-based)."""
    if dimension > len(_FIRST_PRIMES):
        raise ValueError(
            f"Halton sampler supports up to {len(_FIRST_PRIMES)} dimensions, got {dimension}"
        )
    bases = _FIRST_PRIMES[:dimension]
    points = np.empty((count, dimension))
    for row in range(count):
        index = start + row + 1  # skip index 0 which is the origin
        for dim, base in enumerate(bases):
            points[row, dim] = radical_inverse(index, base)
    return points


class HaltonSampler(Sampler):
    """Deterministic Halton sequence, optionally scrambled by a random shift.

    The random shift (Cranley-Patterson rotation) keeps the low-discrepancy
    structure while making different seeds produce different designs, matching
    the framework requirement that the sampler be seeded.
    """

    def __init__(self, space, seed: int = 0, scramble: bool = True) -> None:
        super().__init__(space, seed=seed)
        self.scramble = bool(scramble)
        rng = derive_rng("halton-sampler", seed)
        self._shift = rng.random(space.dimension) if scramble else np.zeros(space.dimension)

    def _unit_samples(self, count: int) -> Array:
        raw = halton_sequence(self.num_drawn, count, self.space.dimension)
        if self.scramble:
            raw = (raw + self._shift) % 1.0
        return raw
