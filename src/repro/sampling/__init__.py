"""Experimental-design samplers for the ensemble parameters.

The paper's data-aggregator thread controls the experimental design; the
methods supported are "the traditional Monte Carlo method, Latin hypercube and
Halton sequence", all drawing the client parameters ``X`` within a box (the
heat-equation experiments use [100, 500] K for every temperature).
"""

from repro.sampling.base import ParameterSpace, Sampler
from repro.sampling.halton import HaltonSampler
from repro.sampling.latin_hypercube import LatinHypercubeSampler
from repro.sampling.monte_carlo import MonteCarloSampler

__all__ = [
    "ParameterSpace",
    "Sampler",
    "MonteCarloSampler",
    "LatinHypercubeSampler",
    "HaltonSampler",
    "get_sampler",
]


def get_sampler(name: str, space: ParameterSpace, seed: int = 0) -> Sampler:
    """Instantiate a sampler by name ("monte_carlo", "latin_hypercube", "halton")."""
    samplers = {
        "monte_carlo": MonteCarloSampler,
        "latin_hypercube": LatinHypercubeSampler,
        "halton": HaltonSampler,
    }
    try:
        cls = samplers[name.lower()]
    except KeyError as exc:
        raise KeyError(f"unknown sampler {name!r}; available: {sorted(samplers)}") from exc
    return cls(space, seed=seed)
