"""Plain Monte Carlo sampling."""

from __future__ import annotations

import numpy as np

from repro.sampling.base import Sampler
from repro.utils.seeding import derive_rng

Array = np.ndarray


class MonteCarloSampler(Sampler):
    """Independent uniform draws from the parameter box (seeded)."""

    def __init__(self, space, seed: int = 0) -> None:
        super().__init__(space, seed=seed)
        self._rng = derive_rng("monte-carlo-sampler", seed)

    def _unit_samples(self, count: int) -> Array:
        return self._rng.random((count, self.space.dimension))
