"""Latin hypercube sampling."""

from __future__ import annotations

import numpy as np

from repro.sampling.base import Sampler
from repro.utils.seeding import derive_rng

Array = np.ndarray


class LatinHypercubeSampler(Sampler):
    """Latin hypercube design: each 1/n stratum of each dimension holds one point.

    Each call to :meth:`sample` produces an independent Latin hypercube of the
    requested size (stratification holds within a call, which is how the
    launcher uses it: one design per client series).
    """

    def __init__(self, space, seed: int = 0) -> None:
        super().__init__(space, seed=seed)
        self._rng = derive_rng("latin-hypercube-sampler", seed)
        self._call_index = 0

    def _unit_samples(self, count: int) -> Array:
        dimension = self.space.dimension
        self._call_index += 1
        samples = np.empty((count, dimension))
        for dim in range(dimension):
            # One point per stratum, shuffled across rows.
            strata = (np.arange(count) + self._rng.random(count)) / count
            samples[:, dim] = self._rng.permutation(strata)
        return samples
