"""Parameter spaces and the sampler interface."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

import numpy as np

Array = np.ndarray


@dataclass(frozen=True)
class ParameterSpace:
    """Axis-aligned box of simulation parameters.

    Attributes
    ----------
    lower, upper:
        Per-dimension bounds (inclusive); same length.
    names:
        Optional per-dimension labels (e.g. ``("T_IC", "T_x1", ...)``).
    """

    lower: Tuple[float, ...]
    upper: Tuple[float, ...]
    names: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if len(self.lower) != len(self.upper):
            raise ValueError("lower and upper bounds must have the same length")
        if not self.lower:
            raise ValueError("parameter space must have at least one dimension")
        if any(lo > hi for lo, hi in zip(self.lower, self.upper, strict=True)):
            raise ValueError("every lower bound must not exceed its upper bound")
        if self.names and len(self.names) != len(self.lower):
            raise ValueError("names must match the number of dimensions")

    @property
    def dimension(self) -> int:
        return len(self.lower)

    def scale(self, unit_samples: Array) -> Array:
        """Map samples from the unit hypercube to the box."""
        unit_samples = np.asarray(unit_samples, dtype=float)
        lower = np.asarray(self.lower)
        upper = np.asarray(self.upper)
        return lower + unit_samples * (upper - lower)

    def contains(self, points: Array) -> np.ndarray:
        """Boolean mask of points lying inside the box (inclusive)."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        lower = np.asarray(self.lower)
        upper = np.asarray(self.upper)
        return np.all((points >= lower) & (points <= upper), axis=1)

    @staticmethod
    def uniform_box(low: float, high: float, dimension: int, names: Sequence[str] = ()) -> "ParameterSpace":
        """Box with identical bounds in every dimension."""
        return ParameterSpace(
            lower=tuple([float(low)] * dimension),
            upper=tuple([float(high)] * dimension),
            names=tuple(names),
        )


#: The paper's heat-equation parameter space: 5 temperatures in [100, 500] K.
HEAT_PARAMETER_SPACE = ParameterSpace.uniform_box(
    100.0, 500.0, 5, names=("T_IC", "T_x1", "T_y1", "T_x2", "T_y2")
)


class Sampler:
    """Base class: draws points from a :class:`ParameterSpace`."""

    def __init__(self, space: ParameterSpace, seed: int = 0) -> None:
        self.space = space
        self.seed = int(seed)
        self._drawn = 0

    def sample(self, count: int) -> Array:
        """Draw ``count`` points; successive calls continue the same sequence."""
        if count <= 0:
            raise ValueError("count must be positive")
        unit = self._unit_samples(count)
        self._drawn += count
        return self.space.scale(unit)

    def sample_one(self) -> Array:
        """Draw a single point (1-D array)."""
        return self.sample(1)[0]

    def stream(self) -> Iterator[Array]:
        """Infinite iterator over successive draws."""
        while True:
            yield self.sample_one()

    def _unit_samples(self, count: int) -> Array:
        """Samples in the unit hypercube; subclasses override this."""
        raise NotImplementedError

    @property
    def num_drawn(self) -> int:
        """How many points have been drawn so far."""
        return self._drawn


def discrepancy_proxy(points: Array, bins: int = 4) -> float:
    """Cheap uniformity proxy: max deviation of per-cell counts from uniform.

    Used by tests to verify that Latin hypercube / Halton cover the space more
    evenly than plain Monte Carlo for small sample counts.
    """
    points = np.asarray(points, dtype=float)
    n, d = points.shape
    counts: List[float] = []
    for dim in range(d):
        hist, _ = np.histogram(points[:, dim], bins=bins, range=(0.0, 1.0))
        counts.append(np.abs(hist / n - 1.0 / bins).max())
    return float(np.mean(counts))
