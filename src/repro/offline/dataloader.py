"""Shuffling batch loader with optional prefetching workers.

The paper's offline baseline uses the PyTorch ``DataLoader`` with 8 parallel
workers per GPU; this loader provides the same roles — uniform shuffling per
epoch, batching, and background prefetching threads that read samples from the
memory-mapped files ahead of the training loop.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.offline.dataset import SimulationDataset
from repro.utils.seeding import derive_rng

Array = np.ndarray

Batch = Tuple[Array, Array]


class DataLoader:
    """Iterate over shuffled mini-batches of a :class:`SimulationDataset`.

    Parameters
    ----------
    dataset:
        The map-style dataset.
    batch_size:
        Samples per batch.
    shuffle:
        Reshuffle the sample order at the start of every epoch.
    drop_last:
        Drop the final incomplete batch.
    num_workers:
        Number of background prefetching threads (0 = load synchronously).
    prefetch_batches:
        Bound of the prefetch queue per epoch when workers are used.
    seed:
        Seed of the shuffling RNG.
    rank, world_size:
        Data-parallel sharding: the loader only yields the subset of samples
        assigned to ``rank`` (equivalent of a DistributedSampler).
    """

    def __init__(
        self,
        dataset: SimulationDataset,
        batch_size: int = 10,
        shuffle: bool = True,
        drop_last: bool = False,
        num_workers: int = 0,
        prefetch_batches: int = 8,
        seed: int = 0,
        rank: int = 0,
        world_size: int = 1,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if world_size <= 0 or not 0 <= rank < world_size:
            raise ValueError("invalid rank/world_size combination")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self.num_workers = int(num_workers)
        self.prefetch_batches = max(int(prefetch_batches), 1)
        self.seed = int(seed)
        self.rank = int(rank)
        self.world_size = int(world_size)
        self._epoch = 0

    # ---------------------------------------------------------------- indices
    def _epoch_indices(self) -> np.ndarray:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            rng = derive_rng("dataloader-shuffle", self.seed, self._epoch)
            rng.shuffle(indices)
        # Shard across data-parallel ranks, truncating so every shard has the
        # same length (ranks must execute the same number of batches or the
        # gradient all-reduce would deadlock).
        if self.world_size > 1:
            per_rank = len(indices) // self.world_size
            indices = indices[self.rank :: self.world_size][:per_rank]
        return indices

    def __len__(self) -> int:
        """Number of batches per epoch."""
        per_rank = len(self.dataset) // self.world_size if self.world_size > 1 else len(self.dataset)
        if self.drop_last:
            return per_rank // self.batch_size
        return (per_rank + self.batch_size - 1) // self.batch_size

    def _collate(self, indices: List[int]) -> Batch:
        inputs = []
        targets = []
        for index in indices:
            sample_inputs, sample_target = self.dataset[int(index)]
            inputs.append(sample_inputs)
            targets.append(sample_target)
        return np.stack(inputs), np.stack(targets)

    # -------------------------------------------------------------- iteration
    def __iter__(self) -> Iterator[Batch]:
        indices = self._epoch_indices()
        self._epoch += 1
        batches: List[List[int]] = []
        for start in range(0, len(indices), self.batch_size):
            chunk = indices[start : start + self.batch_size].tolist()
            if len(chunk) < self.batch_size and self.drop_last:
                continue
            batches.append(chunk)
        if self.num_workers <= 0:
            for chunk in batches:
                yield self._collate(chunk)
            return
        yield from self._prefetch_iter(batches)

    def _prefetch_iter(self, batches: List[List[int]]) -> Iterator[Batch]:
        """Background-thread prefetching: workers fill a bounded queue."""
        out_queue: "queue.Queue[Optional[Tuple[int, Batch]]]" = queue.Queue(
            maxsize=self.prefetch_batches
        )
        task_queue: "queue.Queue[Optional[Tuple[int, List[int]]]]" = queue.Queue()
        for item in enumerate(batches):
            task_queue.put(item)
        for _ in range(self.num_workers):
            task_queue.put(None)

        def worker() -> None:
            while True:
                task = task_queue.get()
                if task is None:
                    out_queue.put(None)
                    return
                batch_index, chunk = task
                out_queue.put((batch_index, self._collate(chunk)))

        threads = [
            threading.Thread(target=worker, name=f"dataloader-worker-{i}", daemon=True)
            for i in range(self.num_workers)
        ]
        for thread in threads:
            thread.start()

        # Re-order batches so the training stream is deterministic regardless
        # of worker scheduling.
        finished_workers = 0
        reorder: dict[int, Batch] = {}
        next_index = 0
        while finished_workers < self.num_workers or reorder or next_index < len(batches):
            if next_index in reorder:
                yield reorder.pop(next_index)
                next_index += 1
                continue
            item = out_queue.get()
            if item is None:
                finished_workers += 1
                if finished_workers == self.num_workers and next_index >= len(batches):
                    break
                continue
            batch_index, batch = item
            if batch_index == next_index:
                yield batch
                next_index += 1
            else:
                reorder[batch_index] = batch
        for thread in threads:
            thread.join(timeout=5.0)
