"""Map-style dataset over a :class:`SimulationStore`.

Equivalent of the PyTorch ``Dataset`` the paper wraps around its files: every
item is one ``((X, t), u_t_X)`` pair addressed by a global index, loaded
lazily through the store's memory-mapped files.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.offline.storage import SimulationStore, StoredSimulation

Array = np.ndarray


class SimulationDataset:
    """Index of every (simulation, time-step) pair of a store."""

    def __init__(self, store: SimulationStore) -> None:
        self.store = store
        self._index: List[Tuple[StoredSimulation, int]] = []
        for simulation in store:
            for step_index in range(simulation.num_steps):
                self._index.append((simulation, step_index))
        if not self._index:
            raise ValueError("the simulation store is empty")
        self._field_cache: dict[int, Array] = {}

    def __len__(self) -> int:
        return len(self._index)

    @property
    def field_size(self) -> int:
        return self._index[0][0].field_size

    @property
    def input_size(self) -> int:
        """Surrogate input dimension: parameters + time."""
        return len(self._index[0][0].parameters) + 1

    def _fields_for(self, simulation: StoredSimulation) -> Array:
        cached = self._field_cache.get(simulation.simulation_id)
        if cached is None:
            cached = self.store.load_fields(simulation, mmap=True)
            self._field_cache[simulation.simulation_id] = cached
        return cached

    def __getitem__(self, index: int) -> Tuple[Array, Array]:
        """Return ``(inputs, target)`` for the global sample ``index``."""
        simulation, step_index = self._index[index]
        fields = self._fields_for(simulation)
        target = np.asarray(fields[step_index], dtype=np.float32)
        inputs = np.asarray(
            [*simulation.parameters, simulation.times[step_index]], dtype=np.float32
        )
        return inputs, target

    def sample_identity(self, index: int) -> Tuple[int, int]:
        """(simulation_id, time_step index) of a global sample (for bookkeeping)."""
        simulation, step_index = self._index[index]
        return simulation.simulation_id, step_index

    def as_arrays(self) -> Tuple[Array, Array]:
        """Materialise the whole dataset as dense arrays (validation sets only)."""
        inputs = np.empty((len(self), self.input_size), dtype=np.float32)
        targets = np.empty((len(self), self.field_size), dtype=np.float32)
        for index in range(len(self)):
            sample_inputs, sample_target = self[index]
            inputs[index] = sample_inputs
            targets[index] = sample_target
        return inputs, targets
