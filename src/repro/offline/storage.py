"""File-backed storage of generated simulations.

One ``.npy`` file per simulation holds the stacked flattened fields (float32,
``num_steps x field_size``) and a JSON sidecar holds the parameters and time
values, mirroring the paper's "one binary file per simulation" layout.  Fields
are read back with ``numpy.memmap`` so a single time step can be loaded
without reading the whole file (the paper relies on ``mmap`` the same way).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Sequence, Tuple

import numpy as np

Array = np.ndarray

_INDEX_FILE = "index.json"


@dataclass(frozen=True)
class StoredSimulation:
    """Metadata of one stored simulation."""

    simulation_id: int
    parameters: Tuple[float, ...]
    times: Tuple[float, ...]
    field_size: int
    path: str

    @property
    def num_steps(self) -> int:
        return len(self.times)

    @property
    def nbytes(self) -> int:
        """Size of the stored field data in bytes (float32)."""
        return self.num_steps * self.field_size * 4


class SimulationStore:
    """Directory of simulation files with an index for fast lookup."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._simulations: List[StoredSimulation] = []
        index_path = self.directory / _INDEX_FILE
        if index_path.exists():
            self._load_index()

    # ------------------------------------------------------------------ write
    def add_simulation(
        self,
        simulation_id: int,
        parameters: Sequence[float],
        times: Sequence[float],
        fields: Array,
    ) -> StoredSimulation:
        """Write one simulation to disk and register it in the index.

        ``fields`` is ``(num_steps, field_size)`` (or any shape whose first
        axis is the time dimension; trailing axes are flattened).
        """
        fields = np.asarray(fields, dtype=np.float32)
        fields = fields.reshape(fields.shape[0], -1)
        if fields.shape[0] != len(times):
            raise ValueError(
                f"fields have {fields.shape[0]} steps but {len(times)} time values were given"
            )
        filename = f"simulation_{simulation_id:06d}.npy"
        np.save(self.directory / filename, fields)
        record = StoredSimulation(
            simulation_id=int(simulation_id),
            parameters=tuple(float(p) for p in parameters),
            times=tuple(float(t) for t in times),
            field_size=int(fields.shape[1]),
            path=filename,
        )
        self._simulations.append(record)
        self._write_index()
        return record

    def _write_index(self) -> None:
        payload = [
            {
                "simulation_id": sim.simulation_id,
                "parameters": list(sim.parameters),
                "times": list(sim.times),
                "field_size": sim.field_size,
                "path": sim.path,
            }
            for sim in self._simulations
        ]
        (self.directory / _INDEX_FILE).write_text(json.dumps(payload))

    def _load_index(self) -> None:
        payload = json.loads((self.directory / _INDEX_FILE).read_text())
        self._simulations = [
            StoredSimulation(
                simulation_id=int(item["simulation_id"]),
                parameters=tuple(item["parameters"]),
                times=tuple(item["times"]),
                field_size=int(item["field_size"]),
                path=item["path"],
            )
            for item in payload
        ]

    # ------------------------------------------------------------------- read
    def __len__(self) -> int:
        return len(self._simulations)

    def __iter__(self) -> Iterator[StoredSimulation]:
        return iter(self._simulations)

    @property
    def simulations(self) -> List[StoredSimulation]:
        return list(self._simulations)

    def load_fields(self, simulation: StoredSimulation, mmap: bool = True) -> Array:
        """Load the ``(num_steps, field_size)`` field array of a simulation."""
        path = self.directory / simulation.path
        return np.load(path, mmap_mode="r" if mmap else None)

    def load_step(self, simulation: StoredSimulation, step_index: int) -> Array:
        """Load a single time step without reading the whole file."""
        fields = self.load_fields(simulation, mmap=True)
        return np.asarray(fields[step_index])

    # ------------------------------------------------------------- statistics
    @property
    def total_samples(self) -> int:
        """Total number of (simulation, time step) samples stored."""
        return sum(sim.num_steps for sim in self._simulations)

    @property
    def total_bytes(self) -> int:
        """Raw size of the stored field data."""
        return sum(sim.nbytes for sim in self._simulations)

    def size_gigabytes(self) -> float:
        return self.total_bytes / 1e9
