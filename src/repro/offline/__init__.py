"""Offline training pipeline (the paper's baseline).

In the offline setting the ensemble data is first generated and written to
disk (one binary file per simulation, as in the paper's 95.5 GB compressed
dataset), then read back epoch after epoch by a shuffling dataloader feeding
the trainer.  This package provides the storage layer, the memory-mapped
dataset, the dataloader (with optional prefetching workers) and the
multi-epoch trainer used by the Figure 4/6 and Table 1/2 baselines.
"""

from repro.offline.storage import SimulationStore, StoredSimulation
from repro.offline.dataset import SimulationDataset
from repro.offline.dataloader import DataLoader
from repro.offline.trainer import OfflineTrainer, OfflineTrainingConfig, OfflineTrainingResult

__all__ = [
    "SimulationStore",
    "StoredSimulation",
    "SimulationDataset",
    "DataLoader",
    "OfflineTrainer",
    "OfflineTrainingConfig",
    "OfflineTrainingResult",
]
