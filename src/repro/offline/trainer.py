"""Multi-epoch offline trainer (the paper's baseline training procedure).

Offline training reads a fixed dataset from disk and presents it for several
epochs, with uniformly shuffled batches.  With several ranks the trainer
shards every epoch across the ranks (one shard per "GPU") and all-reduces
gradients after each batch, exactly like the online data-parallel server.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional


from repro.core.metrics import LossHistory, ThroughputMeter, TrainingMetrics, merge_worker_metrics
from repro.nn.losses import Loss, MSELoss
from repro.nn.module import Module
from repro.nn.optim import Adam, Optimizer
from repro.nn.schedulers import LRScheduler, StepLR
from repro.offline.dataloader import DataLoader
from repro.offline.dataset import SimulationDataset
from repro.parallel.communicator import ThreadCommunicator
from repro.parallel.spmd import SPMDExecutor
from repro.server.ddp import broadcast_parameters, sync_gradients
from repro.server.validation import ValidationSet, Validator


@dataclass
class OfflineTrainingConfig:
    """Hyper-parameters of the offline baseline."""

    num_epochs: int = 1
    batch_size: int = 10
    num_ranks: int = 1
    num_workers: int = 0
    learning_rate: float = 1e-3
    lr_step_batches: int = 1_000
    lr_gamma: float = 0.5
    lr_min: float = 2.5e-4
    validation_interval: int = 100
    throughput_window: int = 10
    shuffle: bool = True
    seed: int = 0
    io_delay_per_sample: float = 0.0
    batch_compute_delay: float = 0.0
    max_batches: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_epochs <= 0:
            raise ValueError("num_epochs must be positive")
        if self.num_ranks <= 0:
            raise ValueError("num_ranks must be positive")


@dataclass
class OfflineTrainingResult:
    """Outcome of an offline training run."""

    model: Module
    per_rank_metrics: List[TrainingMetrics]
    summary: dict
    epochs_completed: int
    wall_time: float

    @property
    def metrics(self) -> TrainingMetrics:
        return self.per_rank_metrics[0]

    @property
    def best_validation_loss(self) -> float:
        return self.metrics.losses.best_validation_loss


class OfflineTrainer:
    """Epoch-based training from a :class:`SimulationDataset` on disk."""

    def __init__(
        self,
        dataset: SimulationDataset,
        config: OfflineTrainingConfig,
        model_factory: Callable[[], Module],
        validation: Optional[ValidationSet] = None,
        loss_factory: Callable[[], Loss] = MSELoss,
        optimizer_factory: Optional[Callable[[Module], Optimizer]] = None,
        scheduler_factory: Optional[Callable[[Optimizer], LRScheduler]] = None,
    ) -> None:
        self.dataset = dataset
        self.config = config
        self.model_factory = model_factory
        self.validation = validation
        self.loss_factory = loss_factory
        self.optimizer_factory = optimizer_factory
        self.scheduler_factory = scheduler_factory

    # -------------------------------------------------------------- factories
    def _build_optimizer(self, model: Module) -> Optimizer:
        if self.optimizer_factory is not None:
            return self.optimizer_factory(model)
        return Adam(model.parameters(), lr=self.config.learning_rate)

    def _build_scheduler(self, optimizer: Optimizer) -> Optional[LRScheduler]:
        if self.scheduler_factory is not None:
            return self.scheduler_factory(optimizer)
        if self.config.lr_step_batches <= 0:
            return None
        return StepLR(
            optimizer,
            step_size=self.config.lr_step_batches,
            gamma=self.config.lr_gamma,
            min_lr=self.config.lr_min,
        )

    # ------------------------------------------------------------------- run
    def _rank_main(self, comm: ThreadCommunicator, shared_models: List[Optional[Module]]) -> TrainingMetrics:
        cfg = self.config
        model = self.model_factory()
        optimizer = self._build_optimizer(model)
        scheduler = self._build_scheduler(optimizer)
        loss = self.loss_factory()
        validator = Validator(self.validation) if self.validation is not None else None
        metrics = TrainingMetrics(rank=comm.rank)
        metrics.throughput = ThroughputMeter(window=cfg.throughput_window)
        metrics.losses = LossHistory()

        if comm.size > 1:
            broadcast_parameters(model, comm, root=0)

        loader = DataLoader(
            self.dataset,
            batch_size=cfg.batch_size,
            shuffle=cfg.shuffle,
            num_workers=cfg.num_workers,
            seed=cfg.seed,
            rank=comm.rank,
            world_size=comm.size,
        )

        start = time.monotonic()
        batch_index = 0
        stop = False
        for _epoch in range(cfg.num_epochs):
            if stop:
                break
            for inputs, targets in loader:
                if cfg.max_batches is not None and batch_index >= cfg.max_batches:
                    stop = True
                    break
                if cfg.io_delay_per_sample > 0:
                    # Emulates the I/O cost per sample of reading from the
                    # parallel filesystem at the paper's full field size.
                    time.sleep(cfg.io_delay_per_sample * inputs.shape[0])
                model.zero_grad()
                predictions = model.forward(inputs)
                loss_value = loss.forward(predictions, targets)
                model.backward(loss.backward())
                if comm.size > 1:
                    sync_gradients(model, comm, average=True)
                optimizer.step()
                if scheduler is not None:
                    scheduler.step()
                if cfg.batch_compute_delay > 0:
                    time.sleep(cfg.batch_compute_delay)
                batch_index += 1
                samples_seen = batch_index * cfg.batch_size * comm.size
                metrics.batches_trained = batch_index
                metrics.samples_trained += int(inputs.shape[0])
                metrics.losses.record_train(batch_index, samples_seen, float(loss_value))
                metrics.throughput.record_batch(int(inputs.shape[0]))
                if (
                    validator is not None
                    and cfg.validation_interval > 0
                    and batch_index % cfg.validation_interval == 0
                    and comm.rank == 0
                ):
                    val_loss = validator.evaluate(model)
                    metrics.losses.record_validation(batch_index, samples_seen, val_loss)

        if validator is not None and comm.rank == 0:
            samples_seen = batch_index * cfg.batch_size * comm.size
            metrics.losses.record_validation(batch_index, samples_seen, validator.evaluate(model))
        metrics.wall_time = time.monotonic() - start
        shared_models[comm.rank] = model
        return metrics

    def run(self) -> OfflineTrainingResult:
        """Train for the configured number of epochs and return the result."""
        cfg = self.config
        shared_models: List[Optional[Module]] = [None] * cfg.num_ranks
        start = time.monotonic()
        if cfg.num_ranks == 1:
            # Avoid the SPMD machinery for the common single-rank case.
            from repro.parallel.communicator import CommunicatorGroup

            comm = CommunicatorGroup(1).rank_communicators()[0]
            per_rank = [self._rank_main(comm, shared_models)]
        else:
            executor = SPMDExecutor(cfg.num_ranks, timeout=None)
            per_rank = executor.run(self._rank_main, shared_models).values
        wall_time = time.monotonic() - start
        model = shared_models[0]
        assert model is not None
        return OfflineTrainingResult(
            model=model,
            per_rank_metrics=per_rank,
            summary=merge_worker_metrics(per_rank),
            epochs_completed=cfg.num_epochs,
            wall_time=wall_time,
        )
