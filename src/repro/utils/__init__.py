"""Shared utilities: seeding, logging, timing and exceptions."""

from repro.utils.exceptions import (
    BufferClosedError,
    CommunicatorError,
    ConfigurationError,
    FaultToleranceError,
    ReproError,
    SchedulerError,
)
from repro.utils.seeding import SeedSequenceFactory, derive_rng, set_global_seed
from repro.utils.timing import Stopwatch, Timer, VirtualClock, WallClock

__all__ = [
    "ReproError",
    "ConfigurationError",
    "BufferClosedError",
    "CommunicatorError",
    "SchedulerError",
    "FaultToleranceError",
    "SeedSequenceFactory",
    "derive_rng",
    "set_global_seed",
    "Timer",
    "Stopwatch",
    "WallClock",
    "VirtualClock",
]
