"""Wall-clock and virtual clocks, timers and stopwatches.

Online-training experiments measure throughput against wall-clock time, while
the discrete-event performance model (:mod:`repro.simulation`) advances a
virtual clock.  Both expose the same ``now()`` interface so the metrics code
does not care which one it is given.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List


class WallClock:
    """Monotonic wall-clock."""

    def now(self) -> float:
        """Current time in seconds (monotonic)."""
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        """Sleep for ``seconds`` of real time."""
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock:
    """Manually advanced clock used by the discrete-event simulator."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        self._now += float(seconds)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to ``timestamp`` (no-op if already past it)."""
        self._now = max(self._now, float(timestamp))
        return self._now

    def sleep(self, seconds: float) -> None:
        """Virtual sleep simply advances the clock."""
        self.advance(seconds)


@dataclass
class Stopwatch:
    """Accumulates elapsed time across start/stop cycles."""

    clock: WallClock = field(default_factory=WallClock)
    elapsed: float = 0.0
    _started_at: float | None = None

    def start(self) -> None:
        if self._started_at is None:
            self._started_at = self.clock.now()

    def stop(self) -> float:
        if self._started_at is not None:
            self.elapsed += self.clock.now() - self._started_at
            self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class Timer:
    """Named timer registry used to profile the phases of a study."""

    def __init__(self, clock: WallClock | None = None) -> None:
        self._clock = clock or WallClock()
        self._watches: Dict[str, Stopwatch] = {}
        self._order: List[str] = []

    def watch(self, name: str) -> Stopwatch:
        """Return (creating if needed) the stopwatch called ``name``."""
        if name not in self._watches:
            self._watches[name] = Stopwatch(clock=self._clock)
            self._order.append(name)
        return self._watches[name]

    def time(self, name: str) -> Stopwatch:
        """Context manager timing a named phase: ``with timer.time("train"):``."""
        return self.watch(name)

    def elapsed(self, name: str) -> float:
        """Total elapsed seconds recorded for ``name`` (0.0 if unknown)."""
        watch = self._watches.get(name)
        return watch.elapsed if watch is not None else 0.0

    def summary(self) -> Dict[str, float]:
        """Mapping of phase name to elapsed seconds, in registration order."""
        return {name: self._watches[name].elapsed for name in self._order}
