"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigurationError(ReproError):
    """Raised when a study or component configuration is invalid."""


class BufferClosedError(ReproError):
    """Raised when interacting with a training buffer after it was closed."""


class CommunicatorError(ReproError):
    """Raised on invalid use of the SPMD communicator (bad rank, closed, ...)."""


class SchedulerError(ReproError):
    """Raised by the simulated batch scheduler (unknown job, no resources...)."""


class FaultToleranceError(ReproError):
    """Raised when fault handling cannot recover a component."""


class CheckpointError(ReproError):
    """Raised when saving or restoring a checkpoint fails."""
