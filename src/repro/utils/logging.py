"""Light logging helpers shared by launcher, server and clients."""

from __future__ import annotations

import logging
import sys

_FORMAT = "%(asctime)s [%(levelname)s] %(name)s: %(message)s"


def get_logger(name: str, level: int = logging.WARNING) -> logging.Logger:
    """Return a configured logger namespaced under ``repro``.

    The first call installs a stream handler on the ``repro`` root logger;
    subsequent calls reuse it.  Levels can be tightened per component.
    """
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
        root.setLevel(logging.WARNING)
    logger = logging.getLogger(f"repro.{name}")
    logger.setLevel(level)
    return logger


def set_verbosity(level: int) -> None:
    """Set the verbosity of every repro logger at once."""
    logging.getLogger("repro").setLevel(level)
