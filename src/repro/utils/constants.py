"""Shared tuning constants and benchmark environment knobs.

The transport backends, the benchmark suite and the CI workflow used to carry
their own copies of the same magic numbers (the full-channel drop timeout,
the ``REPRO_BENCH_MIN_SPEEDUP`` floors).  They are hoisted here so one edit
moves every consumer, and so the CI workflow env vars are documented next to
the defaults they override.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

#: How long a push waits on a full rank channel before the batch is dropped
#: and ``queue.Full`` propagates to the client.  Shared by the transport
#: fault-injection tests and the back-pressure paths of the multi-process
#: backends; pushing with ``timeout=None`` still blocks forever (the
#: ZMQ-high-water-mark contract of the study hot path).
QUEUE_DROP_TIMEOUT = 0.1

#: Default geometry of one shared-memory SPSC ring: ``DEFAULT_RING_SLOTS``
#: packed batches of at most ``DEFAULT_RING_SLOT_BYTES`` bytes each.  This is
#: the single source of truth — ``repro.parallel.shm_ring`` re-exports the
#: names and ``repro.parallel.transport.ShmOptions`` defaults to them, so the
#: study-config default and the backend default cannot drift apart.
DEFAULT_RING_SLOTS = 16
DEFAULT_RING_SLOT_BYTES = 64 * 1024

#: Virtual nodes per shard on the consistent-hash ring of the sharded
#: serving tier.  More replicas smooth the load spread across shards at the
#: cost of a larger (still tiny) ring; 64 keeps the max/min client load
#: ratio within ~2x for paper-scale ensembles.  Single source of truth for
#: ``repro.parallel.transport.ShardOptions`` and
#: ``repro.server.sharding.HashRing``.
DEFAULT_HASH_RING_REPLICAS = 64

#: Environment variable through which CI lowers the benchmark speedup floors.
#: Shared runners are too noisy for the strict local wall-clock bars, so the
#: workflow runs every benchmark smoke step with a reduced floor (see
#: ``.github/workflows/ci.yml``).
BENCH_MIN_SPEEDUP_ENV = "REPRO_BENCH_MIN_SPEEDUP"

#: Local acceptance floor of the vectorized-vs-per-sample and the
#: packed-vs-pickle benchmarks (both measured ~4x).
DEFAULT_BENCH_MIN_SPEEDUP = 3.0

#: Local acceptance floor of the shared-memory ring vs ``mp.Queue``
#: packed-batch benchmark (measured well above; CI smoke bar is 1.3).
SHM_RING_MIN_SPEEDUP = 2.0

#: Environment variable naming the machine-readable benchmark report file.
#: When set, every benchmark that measures a speedup appends its result so CI
#: can upload one JSON artifact per run and render a summary table.
BENCH_REPORT_ENV = "REPRO_BENCH_REPORT"

#: Schema version stamped into benchmark report files.
BENCH_REPORT_SCHEMA = 1


def bench_min_speedup(default: float = DEFAULT_BENCH_MIN_SPEEDUP) -> float:
    """The enforced speedup floor: ``REPRO_BENCH_MIN_SPEEDUP`` or ``default``."""
    raw = os.environ.get(BENCH_MIN_SPEEDUP_ENV)
    if raw is None:
        return float(default)
    return float(raw)


def record_bench_result(
    name: str,
    speedup: float,
    floor: Optional[float] = None,
    unit: str = "x",
    **detail: Any,
) -> None:
    """Append one measured speedup to the benchmark report file, if enabled.

    The report path comes from ``REPRO_BENCH_REPORT``; when the variable is
    unset this is a no-op, so local benchmark runs stay side-effect free.
    Results are keyed by ``name``: re-running a benchmark in the same report
    replaces its previous entry instead of duplicating it.
    """
    path = os.environ.get(BENCH_REPORT_ENV)
    if not path:
        return
    report_path = Path(path)
    report: Dict[str, Any] = {"schema": BENCH_REPORT_SCHEMA, "results": []}
    if report_path.exists():
        try:
            loaded = json.loads(report_path.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("results"), list):
                report = loaded
        except (OSError, ValueError):
            pass  # start a fresh report rather than losing the new result
    entry: Dict[str, Any] = {"name": name, "speedup": round(float(speedup), 3), "unit": unit}
    if floor is not None:
        entry["floor"] = float(floor)
    if detail:
        entry["detail"] = detail
    report["results"] = [r for r in report["results"] if r.get("name") != name]
    report["results"].append(entry)
    report_path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
