"""Deterministic seeding helpers.

The paper stresses that all stochastic components (network initialisation,
parameter sampler, training buffer) are seeded for reproducibility.  This
module centralises seed derivation so that independent components receive
independent, but reproducible, random streams.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

#: Global default seed used when a component does not receive an explicit one.
DEFAULT_SEED = 20230916

_global_seed = DEFAULT_SEED


def set_global_seed(seed: int) -> None:
    """Set the package-wide default seed used by :func:`derive_rng`."""
    global _global_seed
    _global_seed = int(seed)


def get_global_seed() -> int:
    """Return the package-wide default seed."""
    return _global_seed


def _stable_hash(tokens: Iterable[object]) -> int:
    """Hash a sequence of tokens into a 63-bit integer, stable across runs."""
    digest = hashlib.sha256()
    for token in tokens:
        digest.update(repr(token).encode("utf-8"))
        digest.update(b"\x00")
    return int.from_bytes(digest.digest()[:8], "little") & ((1 << 63) - 1)


def derive_rng(*tokens: object, seed: int | None = None) -> np.random.Generator:
    """Create a generator whose stream depends on ``seed`` and ``tokens``.

    Two calls with the same seed and tokens return generators producing the
    same stream; different tokens produce statistically independent streams.
    """
    base = _global_seed if seed is None else int(seed)
    return np.random.default_rng(np.random.SeedSequence([base, _stable_hash(tokens)]))


class SeedSequenceFactory:
    """Factory handing out reproducible per-component random generators.

    Parameters
    ----------
    seed:
        Root seed of the study.  Every generator derived from the factory is a
        deterministic function of this seed and the component name.
    """

    def __init__(self, seed: int = DEFAULT_SEED) -> None:
        self.seed = int(seed)

    def rng(self, *tokens: object) -> np.random.Generator:
        """Return the generator associated with ``tokens``."""
        return derive_rng(*tokens, seed=self.seed)

    def spawn(self, *tokens: object) -> "SeedSequenceFactory":
        """Return a child factory rooted at a seed derived from ``tokens``."""
        return SeedSequenceFactory(_stable_hash((self.seed, *tokens)) % (2**31 - 1))

    def integer_seed(self, *tokens: object) -> int:
        """Return a reproducible 31-bit integer seed for ``tokens``."""
        return _stable_hash((self.seed, *tokens)) % (2**31 - 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SeedSequenceFactory(seed={self.seed})"
