"""repro — reproduction of "High Throughput Training of Deep Surrogates from
Large Ensemble Runs" (SC'23).

The package implements a Melissa-style framework for online training of deep
surrogate models from large ensembles of simulation runs, together with every
substrate the paper depends on:

* :mod:`repro.nn` — a NumPy neural-network library (modules, optimizers,
  schedulers) used in place of PyTorch/TensorFlow.
* :mod:`repro.parallel` — a thread-based SPMD/MPI-like communication substrate
  and the client/server transport layer.
* :mod:`repro.cluster` — a simulated batch scheduler and cluster resources.
* :mod:`repro.solvers` — the 2D heat-equation solver (sequential and
  domain-decomposed parallel versions).
* :mod:`repro.sampling` — experimental-design samplers (Monte Carlo, Latin
  hypercube, Halton).
* :mod:`repro.buffers` — the FIFO, FIRO and Reservoir training buffers.
* :mod:`repro.client`, :mod:`repro.server`, :mod:`repro.launcher` — the three
  Melissa components.
* :mod:`repro.offline` — the file-based offline training pipeline used as the
  paper's baseline.
* :mod:`repro.core` — high-level study API tying everything together.
* :mod:`repro.simulation` — a discrete-event performance model used to
  extrapolate to the paper's full scale.
* :mod:`repro.experiments` — one driver per paper table/figure.
"""

from repro.version import __version__

__all__ = ["__version__"]
