"""Fully connected (dense) layer."""

from __future__ import annotations

import numpy as np

from repro.nn.init import get_initializer
from repro.nn.module import Module, Parameter
from repro.utils.seeding import derive_rng

Array = np.ndarray


class Linear(Module):
    """Affine transform ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input / output dimensions.
    bias:
        Whether to include the additive bias term.
    weight_init:
        Name of the weight initialiser (see :mod:`repro.nn.init`).
    rng:
        Random generator used to draw the initial weights.  When ``None`` a
        generator derived from the layer shape is used, which keeps layer
        initialisation reproducible but independent across layers.
    dtype:
        Parameter dtype, ``float64`` by default (tests use exact gradient
        checks); training code converts models to float32.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        weight_init: str = "he_normal",
        rng: np.random.Generator | None = None,
        dtype: np.dtype = np.float64,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear layer dimensions must be positive")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.has_bias = bool(bias)

        if rng is None:
            rng = derive_rng("linear-init", in_features, out_features)
        init = get_initializer(weight_init)
        weight = init((self.in_features, self.out_features), rng).astype(dtype)
        self.weight = Parameter(weight)
        if self.has_bias:
            self.bias = Parameter(np.zeros(self.out_features, dtype=dtype))

        self._cached_input: Array | None = None

    def forward(self, inputs: Array) -> Array:
        inputs = np.asarray(inputs)
        if inputs.ndim == 1:
            inputs = inputs[None, :]
        if inputs.shape[-1] != self.in_features:
            raise ValueError(
                f"Linear expected input of size {self.in_features}, got {inputs.shape[-1]}"
            )
        self._cached_input = inputs
        output = inputs @ self.weight.data
        if self.has_bias:
            output = output + self.bias.data
        return output

    def backward(self, grad_output: Array) -> Array:
        if self._cached_input is None:
            raise RuntimeError("backward called before forward on Linear layer")
        grad_output = np.asarray(grad_output)
        inputs = self._cached_input
        # Accumulate (do not overwrite) so gradient accumulation across
        # micro-batches works; optimizers call zero_grad between steps.
        self.weight.grad += inputs.T @ grad_output
        if self.has_bias:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.data.T

    def extra_repr(self) -> str:
        return f"in={self.in_features}, out={self.out_features}, bias={self.has_bias}"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Linear({self.extra_repr()})"
