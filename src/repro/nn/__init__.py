"""A small NumPy neural-network library used as the training substrate.

The paper trains its surrogates with PyTorch/TensorFlow; this package provides
the subset actually exercised by the paper's experiments — fully connected
networks trained with Adam on an MSE objective, with step learning-rate
schedules, data-parallel gradient averaging and checkpointing — implemented
from scratch on NumPy with explicit backpropagation.
"""

from repro.nn.activations import LeakyReLU, ReLU, Sigmoid, Softplus, Tanh
from repro.nn.containers import Sequential
from repro.nn.dropout import Dropout
from repro.nn.gradcheck import gradient_check
from repro.nn.init import (
    he_normal,
    he_uniform,
    lecun_normal,
    xavier_normal,
    xavier_uniform,
    zeros_init,
)
from repro.nn.linear import Linear
from repro.nn.losses import HuberLoss, L1Loss, Loss, MSELoss, RelativeL2Loss
from repro.nn.mlp import MLPConfig, build_mlp, build_surrogate_mlp
from repro.nn.module import Module, Parameter
from repro.nn.normalization import LayerNorm
from repro.nn.optim import SGD, Adam, AdamW, Optimizer, RMSProp
from repro.nn.schedulers import (
    ConstantLR,
    CosineAnnealingLR,
    ExponentialLR,
    LRScheduler,
    MultiStepLR,
    ReduceLROnPlateau,
    StepLR,
)
from repro.nn.serialization import load_checkpoint, save_checkpoint, state_dict_equal

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "Sequential",
    "Dropout",
    "LayerNorm",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Softplus",
    "Loss",
    "MSELoss",
    "L1Loss",
    "HuberLoss",
    "RelativeL2Loss",
    "Optimizer",
    "SGD",
    "RMSProp",
    "Adam",
    "AdamW",
    "LRScheduler",
    "ConstantLR",
    "StepLR",
    "MultiStepLR",
    "ExponentialLR",
    "CosineAnnealingLR",
    "ReduceLROnPlateau",
    "MLPConfig",
    "build_mlp",
    "build_surrogate_mlp",
    "xavier_uniform",
    "xavier_normal",
    "he_uniform",
    "he_normal",
    "lecun_normal",
    "zeros_init",
    "save_checkpoint",
    "load_checkpoint",
    "state_dict_equal",
    "gradient_check",
]
