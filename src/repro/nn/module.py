"""Base building blocks of the NumPy neural-network library.

The library follows the classical layer-graph design (as in torch.nn without
autograd): every :class:`Module` implements ``forward`` and ``backward``, where
``backward`` receives the gradient of the loss with respect to the module
output and must (i) accumulate parameter gradients and (ii) return the gradient
with respect to the module input.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

Array = np.ndarray


class Parameter:
    """A trainable tensor with an associated gradient buffer.

    Parameters
    ----------
    data:
        Initial value.  Stored as ``float64`` by default for numerically robust
        gradient checks; training at scale typically converts to ``float32``
        via :meth:`Module.astype`.
    name:
        Optional human-readable name, filled by :meth:`Module.named_parameters`.
    """

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: Array, name: str = "") -> None:
        self.data = np.asarray(data)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def zero_grad(self) -> None:
        """Reset the gradient buffer to zero (in place)."""
        self.grad[...] = 0.0

    def astype(self, dtype: np.dtype) -> None:
        """Convert data and gradient to ``dtype`` in place."""
        self.data = self.data.astype(dtype)
        self.grad = self.grad.astype(dtype)

    def copy_(self, other: "Parameter") -> None:
        """Copy the values of ``other`` into this parameter."""
        if other.data.shape != self.data.shape:
            raise ValueError(
                f"shape mismatch copying parameter: {other.data.shape} -> {self.data.shape}"
            )
        self.data[...] = other.data

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Parameter(name={self.name!r}, shape={self.data.shape}, dtype={self.data.dtype})"


class Module:
    """Base class of every layer and network.

    Sub-classes register parameters as attributes of type :class:`Parameter`
    and sub-modules as attributes of type :class:`Module`; both are discovered
    automatically by :meth:`parameters` and :meth:`named_parameters`.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------ api
    def forward(self, inputs: Array) -> Array:
        raise NotImplementedError

    def backward(self, grad_output: Array) -> Array:
        raise NotImplementedError

    def __call__(self, inputs: Array) -> Array:
        return self.forward(inputs)

    # ------------------------------------------------------------- traversal
    def named_children(self) -> Iterator[Tuple[str, "Module"]]:
        """Iterate over direct sub-modules in attribute definition order."""
        for key, value in vars(self).items():
            if isinstance(value, Module):
                yield key, value
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield f"{key}.{index}", item

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Iterate over ``(qualified_name, parameter)`` pairs, depth-first."""
        for key, value in vars(self).items():
            if isinstance(value, Parameter):
                name = f"{prefix}{key}"
                value.name = name
                yield name, value
        for child_name, child in self.named_children():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Parameter]:
        """List of all trainable parameters of the module tree."""
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(param.size for param in self.parameters())

    # ------------------------------------------------------------------ state
    def state_dict(self) -> Dict[str, Array]:
        """Mapping of qualified parameter name to a copy of its value."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, Array]) -> None:
        """Load parameter values from :meth:`state_dict` output."""
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        unexpected = sorted(set(state) - set(own))
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={missing}, unexpected={unexpected}"
            )
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: checkpoint {value.shape} vs model {param.data.shape}"
                )
            param.data[...] = value.astype(param.data.dtype, copy=False)

    # ------------------------------------------------------------------ modes
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects e.g. dropout)."""
        self.training = mode
        for _, child in self.named_children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Zero every parameter gradient of the module tree."""
        for param in self.parameters():
            param.zero_grad()

    def astype(self, dtype: np.dtype) -> "Module":
        """Convert every parameter to ``dtype`` in place and return self."""
        for param in self.parameters():
            param.astype(dtype)
        return self

    # -------------------------------------------------------------- gradients
    def gradients(self) -> List[Array]:
        """List of gradient arrays, aligned with :meth:`parameters`."""
        return [param.grad for param in self.parameters()]

    def flat_gradients(self) -> Array:
        """All gradients concatenated into a single 1-D vector."""
        grads = self.gradients()
        if not grads:
            return np.zeros(0)
        return np.concatenate([g.ravel() for g in grads])

    def set_flat_gradients(self, flat: Array) -> None:
        """Scatter a flat gradient vector back into per-parameter buffers."""
        offset = 0
        for param in self.parameters():
            count = param.size
            param.grad[...] = flat[offset : offset + count].reshape(param.shape)
            offset += count
        if offset != flat.size:
            raise ValueError(
                f"flat gradient has {flat.size} entries but model needs {offset}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        children = ", ".join(name for name, _ in self.named_children())
        return f"{type(self).__name__}({children})"
