"""Finite-difference gradient checking for modules and losses."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.losses import Loss
from repro.nn.module import Module

Array = np.ndarray


def numerical_gradient(f: Callable[[Array], float], x: Array, eps: float = 1e-6) -> Array:
    """Central-difference numerical gradient of scalar ``f`` with respect to ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat_x = x.ravel()
    flat_g = grad.ravel()
    for index in range(flat_x.size):
        original = flat_x[index]
        flat_x[index] = original + eps
        plus = f(x)
        flat_x[index] = original - eps
        minus = f(x)
        flat_x[index] = original
        flat_g[index] = (plus - minus) / (2.0 * eps)
    return grad


def gradient_check(
    model: Module,
    loss: Loss,
    inputs: Array,
    targets: Array,
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> float:
    """Compare backprop gradients of ``model`` against finite differences.

    Returns the maximum absolute deviation and raises ``AssertionError`` when
    the analytic and numerical gradients disagree beyond ``atol + rtol * |num|``.
    The model must use float64 parameters for the comparison to be meaningful.
    """
    inputs = np.asarray(inputs, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)

    model.zero_grad()
    predictions = model.forward(inputs)
    loss.forward(predictions, targets)
    model.backward(loss.backward())

    max_error = 0.0
    for name, param in model.named_parameters():
        analytic = param.grad.copy()

        def objective(values: Array, _param=param) -> float:
            backup = _param.data.copy()
            _param.data[...] = values
            out = model.forward(inputs)
            value = loss.forward(out, targets)
            _param.data[...] = backup
            return value

        numerical = numerical_gradient(objective, param.data.copy(), eps=eps)
        deviation = np.abs(analytic - numerical)
        tolerance = atol + rtol * np.abs(numerical)
        if np.any(deviation > tolerance):
            worst = float(deviation.max())
            raise AssertionError(
                f"gradient check failed for parameter {name}: max deviation {worst:.3e}"
            )
        max_error = max(max_error, float(deviation.max()))
    return max_error
