"""Layer normalisation."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter

Array = np.ndarray


class LayerNorm(Module):
    """Layer normalisation over the last dimension with learnable affine.

    Normalises each sample to zero mean and unit variance across features and
    applies a learnable scale/shift.  Useful for deeper surrogate variants.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, dtype: np.dtype = np.float64) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = int(num_features)
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(num_features, dtype=dtype))
        self.beta = Parameter(np.zeros(num_features, dtype=dtype))
        self._cache: tuple[Array, Array, Array] | None = None

    def forward(self, inputs: Array) -> Array:
        inputs = np.asarray(inputs)
        if inputs.shape[-1] != self.num_features:
            raise ValueError(
                f"LayerNorm expected {self.num_features} features, got {inputs.shape[-1]}"
            )
        mean = inputs.mean(axis=-1, keepdims=True)
        var = inputs.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normed = (inputs - mean) * inv_std
        self._cache = (normed, inv_std, inputs - mean)
        return normed * self.gamma.data + self.beta.data

    def backward(self, grad_output: Array) -> Array:
        if self._cache is None:
            raise RuntimeError("backward called before forward on LayerNorm")
        normed, inv_std, centered = self._cache
        n = self.num_features

        self.gamma.grad += (grad_output * normed).sum(axis=tuple(range(grad_output.ndim - 1)))
        self.beta.grad += grad_output.sum(axis=tuple(range(grad_output.ndim - 1)))

        grad_normed = grad_output * self.gamma.data
        # Standard layer-norm backward (per-sample reduction over features).
        grad_var = (-0.5 * (grad_normed * centered).sum(axis=-1, keepdims=True)) * inv_std**3
        grad_mean = (-grad_normed * inv_std).sum(axis=-1, keepdims=True) + grad_var * (
            -2.0 * centered.mean(axis=-1, keepdims=True)
        )
        return grad_normed * inv_std + grad_var * 2.0 * centered / n + grad_mean / n
