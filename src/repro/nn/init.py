"""Weight initialisation schemes.

The paper's surrogate is an MLP with ReLU activations; He (Kaiming)
initialisation is the default, with Xavier/LeCun provided for other
activations.  All initialisers take an explicit :class:`numpy.random.Generator`
so that network initialisation is seeded, as required for the paper's
reproducibility guarantees.
"""

from __future__ import annotations

import math
from typing import Callable, Tuple

import numpy as np

Array = np.ndarray
Initializer = Callable[[Tuple[int, int], np.random.Generator], Array]


def _fans(shape: Tuple[int, int]) -> Tuple[int, int]:
    fan_in, fan_out = int(shape[0]), int(shape[1])
    return fan_in, fan_out


def xavier_uniform(shape: Tuple[int, int], rng: np.random.Generator) -> Array:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: Tuple[int, int], rng: np.random.Generator) -> Array:
    """Glorot/Xavier normal: N(0, 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_uniform(shape: Tuple[int, int], rng: np.random.Generator) -> Array:
    """He/Kaiming uniform: U(-a, a) with a = sqrt(6 / fan_in) (ReLU gain)."""
    fan_in, _ = _fans(shape)
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def he_normal(shape: Tuple[int, int], rng: np.random.Generator) -> Array:
    """He/Kaiming normal: N(0, 2 / fan_in) (ReLU gain)."""
    fan_in, _ = _fans(shape)
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def lecun_normal(shape: Tuple[int, int], rng: np.random.Generator) -> Array:
    """LeCun normal: N(0, 1 / fan_in)."""
    fan_in, _ = _fans(shape)
    std = math.sqrt(1.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def zeros_init(shape: Tuple[int, int], rng: np.random.Generator) -> Array:
    """All-zero initialisation (used for biases)."""
    del rng
    return np.zeros(shape)


_REGISTRY = {
    "xavier_uniform": xavier_uniform,
    "xavier_normal": xavier_normal,
    "he_uniform": he_uniform,
    "he_normal": he_normal,
    "lecun_normal": lecun_normal,
    "zeros": zeros_init,
}


def get_initializer(name: str) -> Initializer:
    """Look up an initialiser by name."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown initializer {name!r}; available: {sorted(_REGISTRY)}"
        ) from exc
