"""Multilayer-perceptron factories, including the paper's surrogate architecture.

The paper's deep surrogate is a direct model: input ``(X, t)`` with
``X = (T_IC, T_x1, T_y1, T_x2, T_y2)`` (6 scalars total), two hidden layers of
256 ReLU neurons and an output layer producing the flattened temperature field
(1e6 neurons at full scale, configurable here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.nn.activations import get_activation
from repro.nn.containers import Sequential
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.utils.seeding import derive_rng


@dataclass
class MLPConfig:
    """Architecture description for :func:`build_mlp`.

    Attributes
    ----------
    in_features:
        Input dimension (6 for the heat-equation surrogate: 5 temperatures + t).
    hidden_sizes:
        Width of each hidden layer (the paper uses ``(256, 256)``).
    out_features:
        Output dimension (number of grid points of the temperature field).
    activation:
        Name of the hidden activation ("relu" in the paper).
    dropout:
        Optional dropout probability applied after each hidden activation.
    weight_init:
        Weight initialiser name.
    seed:
        Seed controlling the weight initialisation (the paper seeds it).
    dtype:
        Parameter dtype.
    """

    in_features: int = 6
    hidden_sizes: Sequence[int] = field(default_factory=lambda: (256, 256))
    out_features: int = 1_000_000
    activation: str = "relu"
    dropout: float = 0.0
    weight_init: str = "he_normal"
    seed: int = 0
    dtype: np.dtype = np.float64

    def __post_init__(self) -> None:
        if self.in_features <= 0 or self.out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        if any(h <= 0 for h in self.hidden_sizes):
            raise ValueError("hidden layer sizes must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")


def build_mlp(config: MLPConfig) -> Sequential:
    """Build an MLP from an :class:`MLPConfig`."""
    rng = derive_rng("mlp-init", config.seed)
    layers = []
    previous = config.in_features
    for width in config.hidden_sizes:
        layers.append(
            Linear(previous, width, weight_init=config.weight_init, rng=rng, dtype=config.dtype)
        )
        layers.append(get_activation(config.activation))
        if config.dropout > 0.0:
            layers.append(Dropout(config.dropout, rng=derive_rng("mlp-dropout", config.seed)))
        previous = width
    layers.append(
        Linear(previous, config.out_features, weight_init=config.weight_init, rng=rng,
            dtype=config.dtype)
    )
    return Sequential(*layers)


def build_surrogate_mlp(
    grid_points: int,
    hidden_sizes: Sequence[int] = (256, 256),
    seed: int = 0,
    dtype: np.dtype = np.float32,
) -> Sequential:
    """Build the paper's heat-equation surrogate for a given output grid size.

    Parameters
    ----------
    grid_points:
        Number of points of the (flattened) temperature field; the paper uses
        ``1000 * 1000``, experiments here use smaller grids.
    hidden_sizes:
        Hidden-layer widths, default to the paper's (256, 256).
    seed:
        Weight-initialisation seed.
    dtype:
        float32 by default, matching the precision the data is converted to
        before being streamed to the server.
    """
    config = MLPConfig(
        in_features=6,
        hidden_sizes=tuple(hidden_sizes),
        out_features=int(grid_points),
        activation="relu",
        seed=seed,
        dtype=dtype,
    )
    return build_mlp(config)
