"""Gradient-descent optimizers.

The paper trains with Adam (initial learning rate 1e-3); SGD with momentum,
RMSProp and AdamW are provided for the baselines and ablations.  Optimizers
operate in place on :class:`repro.nn.module.Parameter` objects and expose a
``state_dict``/``load_state_dict`` pair so that server checkpointing
(:mod:`repro.server.checkpointing`) can capture the full training state.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.nn.module import Parameter

Array = np.ndarray


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, parameters: Sequence[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)
        self.step_count = 0

    def step(self) -> None:
        """Apply one update using the gradients currently stored in the parameters."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Zero the gradients of every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    # ------------------------------------------------------------------ state
    def state_dict(self) -> Dict[str, object]:
        """Serializable optimizer state (hyper-parameters + per-slot buffers)."""
        return {"lr": self.lr, "step_count": self.step_count}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore optimizer state saved by :meth:`state_dict`."""
        self.lr = float(state["lr"])
        self.step_count = int(state["step_count"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and Nesterov update."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if momentum < 0:
            raise ValueError("momentum must be non-negative")
        if nesterov and momentum == 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.nesterov = bool(nesterov)
        self.weight_decay = float(weight_decay)
        self._velocity: List[Array] = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.step_count += 1
        for param, velocity in zip(self.parameters, self._velocity, strict=True):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = grad + self.momentum * velocity if self.nesterov else velocity
            else:
                update = grad
            param.data -= self.lr * update

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state.update(
            momentum=self.momentum,
            nesterov=self.nesterov,
            weight_decay=self.weight_decay,
            velocity=[v.copy() for v in self._velocity],
        )
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self.momentum = float(state["momentum"])
        self.nesterov = bool(state["nesterov"])
        self.weight_decay = float(state["weight_decay"])
        velocity = state["velocity"]
        for buf, saved in zip(self._velocity, velocity, strict=True):
            buf[...] = saved


class RMSProp(Optimizer):
    """RMSProp with exponentially decaying second-moment estimate."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        alpha: float = 0.99,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.alpha = float(alpha)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._square_avg: List[Array] = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.step_count += 1
        for param, square_avg in zip(self.parameters, self._square_avg, strict=True):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            square_avg *= self.alpha
            square_avg += (1.0 - self.alpha) * grad**2
            param.data -= self.lr * grad / (np.sqrt(square_avg) + self.eps)

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state.update(
            alpha=self.alpha,
            eps=self.eps,
            weight_decay=self.weight_decay,
            square_avg=[s.copy() for s in self._square_avg],
        )
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self.alpha = float(state["alpha"])
        self.eps = float(state["eps"])
        self.weight_decay = float(state["weight_decay"])
        for buf, saved in zip(self._square_avg, state["square_avg"], strict=True):
            buf[...] = saved


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with bias-corrected moment estimates."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: List[Array] = [np.zeros_like(p.data) for p in self.parameters]
        self._v: List[Array] = [np.zeros_like(p.data) for p in self.parameters]

    def _apply_weight_decay(self, param: Parameter, grad: Array) -> Array:
        # Classic (L2) weight decay folded into the gradient.
        if self.weight_decay:
            return grad + self.weight_decay * param.data
        return grad

    def step(self) -> None:
        self.step_count += 1
        bias1 = 1.0 - self.beta1**self.step_count
        bias2 = 1.0 - self.beta2**self.step_count
        for param, m, v in zip(self.parameters, self._m, self._v, strict=True):
            grad = self._apply_weight_decay(param, param.grad)
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            self._update(param, m_hat, v_hat)

    def _update(self, param: Parameter, m_hat: Array, v_hat: Array) -> None:
        param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state.update(
            beta1=self.beta1,
            beta2=self.beta2,
            eps=self.eps,
            weight_decay=self.weight_decay,
            m=[m.copy() for m in self._m],
            v=[v.copy() for v in self._v],
        )
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self.beta1 = float(state["beta1"])
        self.beta2 = float(state["beta2"])
        self.eps = float(state["eps"])
        self.weight_decay = float(state["weight_decay"])
        for buf, saved in zip(self._m, state["m"], strict=True):
            buf[...] = saved
        for buf, saved in zip(self._v, state["v"], strict=True):
            buf[...] = saved


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def _apply_weight_decay(self, param: Parameter, grad: Array) -> Array:
        # Decoupled: decay applied directly to the weights in _update.
        return grad

    def _update(self, param: Parameter, m_hat: Array, v_hat: Array) -> None:
        if self.weight_decay:
            param.data -= self.lr * self.weight_decay * param.data
        super()._update(param, m_hat, v_hat)


_OPTIMIZERS = {
    "sgd": SGD,
    "rmsprop": RMSProp,
    "adam": Adam,
    "adamw": AdamW,
}


def get_optimizer(name: str, parameters: Sequence[Parameter], **kwargs: object) -> Optimizer:
    """Instantiate an optimizer by name."""
    try:
        cls = _OPTIMIZERS[name.lower()]
    except KeyError as exc:
        raise KeyError(
            f"unknown optimizer {name!r}; available: {sorted(_OPTIMIZERS)}"
        ) from exc
    return cls(parameters, **kwargs)  # type: ignore[arg-type]
