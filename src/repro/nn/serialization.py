"""Model/optimizer checkpoint save & load.

Checkpoints are ``.npz`` archives holding the model state dict, optionally the
optimizer moment buffers and arbitrary metadata.  They back the server
fault-tolerance protocol (the server is "regularly checkpointed" in the paper).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

import numpy as np

from repro.nn.module import Module
from repro.nn.optim import Optimizer
from repro.utils.exceptions import CheckpointError

_META_KEY = "__checkpoint_meta__"
_OPT_PREFIX = "__optimizer__/"


def _flatten_optimizer_state(state: Dict[str, object]) -> Dict[str, np.ndarray]:
    """Flatten optimizer state into npz-compatible arrays."""
    flat: Dict[str, np.ndarray] = {}
    scalars: Dict[str, object] = {}
    for key, value in state.items():
        if isinstance(value, list) and value and isinstance(value[0], np.ndarray):
            for index, array in enumerate(value):
                flat[f"{_OPT_PREFIX}{key}/{index}"] = array
            scalars[f"__len__{key}"] = len(value)
        elif isinstance(value, np.ndarray):
            flat[f"{_OPT_PREFIX}{key}"] = value
        else:
            scalars[key] = value
    flat[f"{_OPT_PREFIX}__scalars__"] = np.frombuffer(
        json.dumps(scalars).encode("utf-8"), dtype=np.uint8
    ).copy()
    return flat


def _unflatten_optimizer_state(archive: Dict[str, np.ndarray]) -> Dict[str, object]:
    """Inverse of :func:`_flatten_optimizer_state`."""
    scalars_raw = archive.get(f"{_OPT_PREFIX}__scalars__")
    if scalars_raw is None:
        raise CheckpointError("checkpoint does not contain optimizer state")
    scalars = json.loads(bytes(scalars_raw).decode("utf-8"))
    state: Dict[str, object] = {}
    list_lengths = {
        key[len("__len__"):]: int(value)
        for key, value in scalars.items()
        if key.startswith("__len__")
    }
    for key, value in scalars.items():
        if not key.startswith("__len__"):
            state[key] = value
    for key, length in list_lengths.items():
        state[key] = [archive[f"{_OPT_PREFIX}{key}/{i}"] for i in range(length)]
    for name, array in archive.items():
        if name.startswith(_OPT_PREFIX) and "/" not in name[len(_OPT_PREFIX):]:
            stripped = name[len(_OPT_PREFIX):]
            if stripped != "__scalars__" and stripped not in state:
                state[stripped] = array
    return state


def save_checkpoint(
    path: str | Path,
    model: Module,
    optimizer: Optimizer | None = None,
    metadata: Dict[str, Any] | None = None,
) -> Path:
    """Save model (and optionally optimizer) state to ``path`` (.npz).

    Returns the path actually written (with ``.npz`` suffix enforced).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz") if path.suffix else path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)

    arrays: Dict[str, np.ndarray] = {f"model/{k}": v for k, v in model.state_dict().items()}
    meta = dict(metadata or {})
    meta["has_optimizer"] = optimizer is not None
    if optimizer is not None:
        arrays.update(_flatten_optimizer_state(optimizer.state_dict()))
    arrays[_META_KEY] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8).copy()
    np.savez_compressed(path, **arrays)
    return path


def load_checkpoint(
    path: str | Path,
    model: Module,
    optimizer: Optimizer | None = None,
) -> Dict[str, Any]:
    """Load a checkpoint into ``model`` (and ``optimizer``), return the metadata."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        arrays = {key: archive[key] for key in archive.files}

    meta_raw = arrays.pop(_META_KEY, None)
    metadata: Dict[str, Any] = {}
    if meta_raw is not None:
        metadata = json.loads(bytes(meta_raw).decode("utf-8"))

    model_state = {
        key[len("model/"):]: value for key, value in arrays.items() if key.startswith("model/")
    }
    if not model_state:
        raise CheckpointError(f"checkpoint {path} holds no model state")
    model.load_state_dict(model_state)

    if optimizer is not None:
        if not metadata.get("has_optimizer", False):
            raise CheckpointError(f"checkpoint {path} holds no optimizer state")
        optimizer.load_state_dict(_unflatten_optimizer_state(arrays))
    return metadata


def state_dict_equal(a: Dict[str, np.ndarray], b: Dict[str, np.ndarray], atol: float = 0.0) -> bool:
    """True when two state dicts hold the same keys and (near-)identical values."""
    if set(a) != set(b):
        return False
    for key in a:
        if a[key].shape != b[key].shape:
            return False
        if not np.allclose(a[key], b[key], atol=atol, rtol=0.0):
            return False
    return True
