"""Regression losses with analytic gradients.

The paper's training loop minimises the mean squared error between the
predicted and the solver-produced temperature fields; MAE/Huber/relative-L2
are provided because they are commonly reported for PDE surrogates.
"""

from __future__ import annotations

import numpy as np

Array = np.ndarray


class Loss:
    """Base class: ``forward`` returns a scalar, ``backward`` d(loss)/d(pred)."""

    def forward(self, predictions: Array, targets: Array) -> float:
        raise NotImplementedError

    def backward(self) -> Array:
        raise NotImplementedError

    def __call__(self, predictions: Array, targets: Array) -> float:
        return self.forward(predictions, targets)

    @staticmethod
    def _validate(predictions: Array, targets: Array) -> tuple[Array, Array]:
        predictions = np.asarray(predictions)
        targets = np.asarray(targets)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"predictions and targets must have the same shape, got "
                f"{predictions.shape} vs {targets.shape}"
            )
        return predictions, targets


class MSELoss(Loss):
    """Mean squared error averaged over every element."""

    def __init__(self) -> None:
        self._diff: Array | None = None

    def forward(self, predictions: Array, targets: Array) -> float:
        predictions, targets = self._validate(predictions, targets)
        self._diff = predictions - targets
        return float(np.mean(self._diff**2))

    def backward(self) -> Array:
        if self._diff is None:
            raise RuntimeError("backward called before forward on MSELoss")
        return 2.0 * self._diff / self._diff.size


class L1Loss(Loss):
    """Mean absolute error."""

    def __init__(self) -> None:
        self._diff: Array | None = None

    def forward(self, predictions: Array, targets: Array) -> float:
        predictions, targets = self._validate(predictions, targets)
        self._diff = predictions - targets
        return float(np.mean(np.abs(self._diff)))

    def backward(self) -> Array:
        if self._diff is None:
            raise RuntimeError("backward called before forward on L1Loss")
        return np.sign(self._diff) / self._diff.size


class HuberLoss(Loss):
    """Huber loss: quadratic near zero, linear beyond ``delta``."""

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = float(delta)
        self._diff: Array | None = None

    def forward(self, predictions: Array, targets: Array) -> float:
        predictions, targets = self._validate(predictions, targets)
        self._diff = predictions - targets
        abs_diff = np.abs(self._diff)
        quadratic = np.minimum(abs_diff, self.delta)
        linear = abs_diff - quadratic
        return float(np.mean(0.5 * quadratic**2 + self.delta * linear))

    def backward(self) -> Array:
        if self._diff is None:
            raise RuntimeError("backward called before forward on HuberLoss")
        return np.clip(self._diff, -self.delta, self.delta) / self._diff.size


class RelativeL2Loss(Loss):
    """Relative L2 error ``||pred - target||^2 / (||target||^2 + eps)`` per batch."""

    def __init__(self, eps: float = 1e-12) -> None:
        self.eps = float(eps)
        self._diff: Array | None = None
        self._denom: float = 1.0

    def forward(self, predictions: Array, targets: Array) -> float:
        predictions, targets = self._validate(predictions, targets)
        self._diff = predictions - targets
        self._denom = float(np.sum(targets**2) + self.eps)
        return float(np.sum(self._diff**2) / self._denom)

    def backward(self) -> Array:
        if self._diff is None:
            raise RuntimeError("backward called before forward on RelativeL2Loss")
        return 2.0 * self._diff / self._denom


_LOSSES = {
    "mse": MSELoss,
    "l1": L1Loss,
    "mae": L1Loss,
    "huber": HuberLoss,
    "relative_l2": RelativeL2Loss,
}


def get_loss(name: str) -> Loss:
    """Instantiate a loss by name."""
    try:
        return _LOSSES[name.lower()]()
    except KeyError as exc:
        raise KeyError(f"unknown loss {name!r}; available: {sorted(_LOSSES)}") from exc
