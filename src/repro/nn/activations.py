"""Element-wise activation layers with explicit backward passes."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

Array = np.ndarray


class ReLU(Module):
    """Rectified linear unit: ``max(x, 0)``."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Array | None = None

    def forward(self, inputs: Array) -> Array:
        inputs = np.asarray(inputs)
        self._mask = inputs > 0
        return np.where(self._mask, inputs, 0.0)

    def backward(self, grad_output: Array) -> Array:
        if self._mask is None:
            raise RuntimeError("backward called before forward on ReLU")
        return np.where(self._mask, grad_output, 0.0)


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = float(negative_slope)
        self._mask: Array | None = None

    def forward(self, inputs: Array) -> Array:
        inputs = np.asarray(inputs)
        self._mask = inputs > 0
        return np.where(self._mask, inputs, self.negative_slope * inputs)

    def backward(self, grad_output: Array) -> Array:
        if self._mask is None:
            raise RuntimeError("backward called before forward on LeakyReLU")
        return np.where(self._mask, grad_output, self.negative_slope * grad_output)


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._output: Array | None = None

    def forward(self, inputs: Array) -> Array:
        self._output = np.tanh(np.asarray(inputs))
        return self._output

    def backward(self, grad_output: Array) -> Array:
        if self._output is None:
            raise RuntimeError("backward called before forward on Tanh")
        return grad_output * (1.0 - self._output**2)


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def __init__(self) -> None:
        super().__init__()
        self._output: Array | None = None

    def forward(self, inputs: Array) -> Array:
        inputs = np.asarray(inputs)
        # Numerically stable piecewise evaluation.
        out = np.empty_like(inputs, dtype=np.result_type(inputs.dtype, np.float64)
                            if inputs.dtype.kind != "f" else inputs.dtype)
        positive = inputs >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-inputs[positive]))
        exp_x = np.exp(inputs[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
        self._output = out
        return out

    def backward(self, grad_output: Array) -> Array:
        if self._output is None:
            raise RuntimeError("backward called before forward on Sigmoid")
        return grad_output * self._output * (1.0 - self._output)


class Softplus(Module):
    """Softplus activation ``log(1 + exp(x))`` (smooth ReLU)."""

    def __init__(self) -> None:
        super().__init__()
        self._input: Array | None = None

    def forward(self, inputs: Array) -> Array:
        inputs = np.asarray(inputs)
        self._input = inputs
        # log1p(exp(-|x|)) + max(x, 0) is stable for large |x|.
        return np.log1p(np.exp(-np.abs(inputs))) + np.maximum(inputs, 0.0)

    def backward(self, grad_output: Array) -> Array:
        if self._input is None:
            raise RuntimeError("backward called before forward on Softplus")
        x = self._input
        sig = np.empty_like(x, dtype=np.result_type(x.dtype, np.float64)
                            if x.dtype.kind != "f" else x.dtype)
        positive = x >= 0
        sig[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
        exp_x = np.exp(x[~positive])
        sig[~positive] = exp_x / (1.0 + exp_x)
        return grad_output * sig


_ACTIVATIONS = {
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "tanh": Tanh,
    "sigmoid": Sigmoid,
    "softplus": Softplus,
}


def get_activation(name: str) -> Module:
    """Instantiate an activation layer by name."""
    try:
        return _ACTIVATIONS[name.lower()]()
    except KeyError as exc:
        raise KeyError(
            f"unknown activation {name!r}; available: {sorted(_ACTIVATIONS)}"
        ) from exc
