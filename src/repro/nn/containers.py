"""Module containers."""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.nn.module import Module

Array = np.ndarray


class Sequential(Module):
    """Chain of modules applied in order; backward runs in reverse order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers: List[Module] = list(modules)

    def append(self, module: Module) -> "Sequential":
        """Append a module and return self (builder style)."""
        self.layers.append(module)
        return self

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def forward(self, inputs: Array) -> Array:
        output = inputs
        for layer in self.layers:
            output = layer.forward(output)
        return output

    def backward(self, grad_output: Array) -> Array:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential({inner})"
