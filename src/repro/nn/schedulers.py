"""Learning-rate schedulers.

The paper halves the learning rate every 1 000 batches (scaled to the number
of GPUs so that the schedule tracks the number of *samples* seen) down to a
floor of 2.5e-4.  :class:`StepLR` with ``min_lr`` reproduces exactly that;
other standard schedules are included for completeness.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.nn.optim import Optimizer


class LRScheduler:
    """Base class: mutates ``optimizer.lr`` when :meth:`step` is called."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_step = 0

    def get_lr(self) -> float:
        """Learning rate that should be active after ``last_step`` steps."""
        raise NotImplementedError

    def step(self, metric: float | None = None) -> float:
        """Advance the schedule by one step and update the optimizer."""
        del metric
        self.last_step += 1
        self.optimizer.lr = self.get_lr()
        return self.optimizer.lr

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr

    def state_dict(self) -> Dict[str, object]:
        return {"base_lr": self.base_lr, "last_step": self.last_step}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.base_lr = float(state["base_lr"])
        self.last_step = int(state["last_step"])
        self.optimizer.lr = self.get_lr() if self.last_step > 0 else self.base_lr


class ConstantLR(LRScheduler):
    """No-op schedule keeping the base learning rate."""

    def get_lr(self) -> float:
        return self.base_lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps.

    ``min_lr`` clips the decayed value; the paper uses ``gamma=0.5`` every
    1 000 batches with a floor of 2.5e-4.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        step_size: int,
        gamma: float = 0.5,
        min_lr: float = 0.0,
    ) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.step_size = int(step_size)
        self.gamma = float(gamma)
        self.min_lr = float(min_lr)

    def get_lr(self) -> float:
        decays = self.last_step // self.step_size
        return max(self.base_lr * self.gamma**decays, self.min_lr)

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state.update(step_size=self.step_size, gamma=self.gamma, min_lr=self.min_lr)
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.step_size = int(state["step_size"])
        self.gamma = float(state["gamma"])
        self.min_lr = float(state["min_lr"])
        super().load_state_dict(state)


class MultiStepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` at each milestone step."""

    def __init__(
        self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.1
    ) -> None:
        super().__init__(optimizer)
        self.milestones = sorted(int(m) for m in milestones)
        if any(m <= 0 for m in self.milestones):
            raise ValueError("milestones must be positive")
        self.gamma = float(gamma)

    def get_lr(self) -> float:
        passed = sum(1 for m in self.milestones if m <= self.last_step)
        return self.base_lr * self.gamma**passed


class ExponentialLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every step."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.999) -> None:
        super().__init__(optimizer)
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.gamma = float(gamma)

    def get_lr(self) -> float:
        return self.base_lr * self.gamma**self.last_step


class CosineAnnealingLR(LRScheduler):
    """Cosine annealing from the base learning rate down to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.total_steps = int(total_steps)
        self.min_lr = float(min_lr)

    def get_lr(self) -> float:
        progress = min(self.last_step, self.total_steps) / self.total_steps
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class ReduceLROnPlateau(LRScheduler):
    """Halve the learning rate when the monitored metric stops improving."""

    def __init__(
        self,
        optimizer: Optimizer,
        factor: float = 0.5,
        patience: int = 10,
        min_lr: float = 0.0,
        threshold: float = 1e-4,
    ) -> None:
        super().__init__(optimizer)
        if not 0.0 < factor < 1.0:
            raise ValueError("factor must be in (0, 1)")
        self.factor = float(factor)
        self.patience = int(patience)
        self.min_lr = float(min_lr)
        self.threshold = float(threshold)
        self.best = math.inf
        self.num_bad_steps = 0
        self._lr = self.base_lr

    def get_lr(self) -> float:
        return self._lr

    def step(self, metric: float | None = None) -> float:
        if metric is None:
            raise ValueError("ReduceLROnPlateau.step requires the monitored metric")
        self.last_step += 1
        if metric < self.best * (1.0 - self.threshold):
            self.best = metric
            self.num_bad_steps = 0
        else:
            self.num_bad_steps += 1
            if self.num_bad_steps > self.patience:
                self._lr = max(self._lr * self.factor, self.min_lr)
                self.num_bad_steps = 0
        self.optimizer.lr = self._lr
        return self._lr
