"""Inverted dropout layer."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.utils.seeding import derive_rng

Array = np.ndarray


class Dropout(Module):
    """Inverted dropout: active in training mode, identity in eval mode.

    Parameters
    ----------
    p:
        Probability of zeroing an activation, in ``[0, 1)``.
    rng:
        Random generator for the masks (seeded by default for reproducibility).
    """

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = rng if rng is not None else derive_rng("dropout", p)
        self._mask: Array | None = None

    def forward(self, inputs: Array) -> Array:
        inputs = np.asarray(inputs)
        if not self.training or self.p == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.p
        self._mask = (self._rng.random(inputs.shape) < keep) / keep
        return inputs * self._mask

    def backward(self, grad_output: Array) -> Array:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
