"""Pluggable transport layer connecting clients to server ranks.

This is the ZeroMQ substitute.  A :class:`Transport` owns one bounded channel
per server rank; clients obtain a :class:`Connection` and push messages to a
chosen server rank, while each server data-aggregator thread polls its own
channel.  Two backends implement the interface:

* :class:`MessageRouter` — the in-process backend: one ``queue.Queue`` per
  rank, messages handed over by reference (no serialisation).
* :class:`repro.parallel.mp_transport.MultiprocessTransport` — real OS-process
  isolation: one ``multiprocessing.Queue`` per rank carrying *packed batches*
  (:func:`repro.parallel.messages.pack_many`), with shared-memory statistics
  counters visible from every client process.
* :class:`repro.parallel.shm_ring.ShmRingTransport` — the same process
  isolation, but the hot time-step channels are lock-free shared-memory SPSC
  ring buffers (one per client and rank); only rare control messages ride
  the ``mp.Queue``.

Use :func:`make_transport` to build a backend from a study-config string.
Both backends keep aggregate statistics (messages/bytes routed, drops) used
by the throughput experiments.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.parallel.messages import Message, columnize
from repro.utils.exceptions import ReproError


class RouterClosed(ReproError):
    """Raised when pushing to or polling from a closed transport."""


@dataclass
class TransportStats:
    """Counters describing the traffic that went through a transport.

    ``dropped_messages`` counts every message that failed to enter a rank
    channel: pushes that timed out on a full queue and pushes rejected
    because the transport was already closed.  The ring-buffer backend adds
    ``torn_batches`` (batches lost to a writer killed mid-write) and
    ``ring_depth_high_water`` (deepest observed backlog per rank, in
    batches); both stay at their defaults on the other backends.
    ``unresponsive_kills`` counts client processes the launcher terminated
    for missing their heartbeat deadline (process client mode only).
    """

    messages_routed: int = 0
    bytes_routed: int = 0
    per_rank_messages: Dict[int, int] = field(default_factory=dict)
    dropped_messages: int = 0
    torn_batches: int = 0
    ring_depth_high_water: Dict[int, int] = field(default_factory=dict)
    unresponsive_kills: int = 0

    def record(self, rank: int, nbytes: int) -> None:
        self.messages_routed += 1
        self.bytes_routed += int(nbytes)
        self.per_rank_messages[rank] = self.per_rank_messages.get(rank, 0) + 1


class Transport:
    """Interface of a client→server message channel set.

    A transport exposes ``num_server_ranks`` bounded channels.  Clients call
    :meth:`connect` and push through the returned :class:`Connection`; the
    per-rank server aggregators drain with :meth:`poll_many`.  Push calls
    raise ``queue.Full`` when the rank channel stays full past the timeout
    (ZMQ's high-water-mark back-pressure) and :class:`RouterClosed` after
    :meth:`close`; both paths count the message in ``stats.dropped_messages``.
    """

    num_server_ranks: int

    #: Ownership contract of polled messages: when True, every payload array
    #: handed out by :meth:`poll_many` is owned by the message (retaining it
    #: does not pin a transport buffer that will be reused or that holds
    #: unrelated data), so consumers may adopt the views without copying.
    #: Backends that hand out borrowed views must leave this False.  Columnar
    #: chunks are stricter still: a ``ColumnBatch`` returned by
    #: :meth:`poll_batches` always owns its column arrays outright — wire
    #: backends copy the payload block exactly once while decoding (the
    #: adoption copy), and the flag only tells consumers whether *plain
    #: message* payloads need a defensive copy.
    payloads_owned = False

    # ----------------------------------------------------------------- client
    def connect(self, client_id: int, batch_size: int = 1) -> "Connection":
        """Create a connection handle for a client (all server ranks reachable)."""
        if self.closed:
            raise RouterClosed("cannot connect: transport is closed")
        return Connection(transport=self, client_id=int(client_id), batch_size=int(batch_size))

    def push(self, rank: int, message: Message, timeout: float | None = None) -> None:
        """Push one message to ``rank`` (blocking while the channel is full)."""
        raise NotImplementedError

    def push_many(self, rank: int, messages: List[Message], timeout: float | None = None) -> None:
        """Push a batch to ``rank``; backends may serialise it as one buffer.

        A failed push drops the whole remaining batch (the failing message is
        counted by :meth:`push` itself) so both backends account a rejected
        batch identically in ``stats.dropped_messages``.
        """
        for index, message in enumerate(messages):
            try:
                self.push(rank, message, timeout=timeout)
            except (queue.Full, RouterClosed):
                self._record_dropped(len(messages) - index - 1)
                raise

    def _record_dropped(self, count: int) -> None:
        """Add ``count`` messages to the drop counter (backend-specific store)."""
        raise NotImplementedError

    def record_unresponsive_kill(self) -> None:
        """Count one launcher-side kill of an unresponsive client (optional)."""

    # ----------------------------------------------------------------- server
    def poll(self, rank: int, timeout: float | None = 0.05) -> Optional[Message]:
        """Pop the next message for server rank ``rank`` or ``None`` on timeout."""
        messages = self.poll_many(rank, max_messages=1, timeout=timeout)
        return messages[0] if messages else None

    def poll_many(self, rank: int, max_messages: int = 64,
        timeout: float | None = 0.05) -> List[Message]:
        """Pop up to ``max_messages`` messages for ``rank`` in one call.

        Blocks up to ``timeout`` for the first message only, then drains
        whatever else is already queued without blocking — the chunked
        consumption pattern of the data aggregator.  Returns an empty list on
        timeout.
        """
        raise NotImplementedError

    def poll_batches(self, rank: int, max_messages: int = 64,
        timeout: float | None = 0.05) -> list:
        """Drain like :meth:`poll_many`, delivering step runs as columnar chunks.

        Returns a mixed list of control :class:`Message` objects and
        :class:`repro.buffers.columns.ColumnBatch` chunks in arrival order;
        a chunk of ``n`` samples counts ``n`` messages toward
        ``max_messages``.  Every returned chunk owns its columns (see
        :attr:`payloads_owned`).  The default implementation groups the
        object-polled messages with
        :func:`repro.parallel.messages.columnize`; wire backends override
        the decode to build the chunks straight from the packed batch,
        without materialising per-message objects at all.
        """
        return columnize(self.poll_many(rank, max_messages=max_messages, timeout=timeout))

    def pending(self, rank: int) -> int:
        """Number of messages currently queued for server rank ``rank``."""
        raise NotImplementedError

    def total_pending(self) -> int:
        """Messages queued across all ranks."""
        return sum(self.pending(rank) for rank in range(self.num_server_ranks))

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close the transport; subsequent pushes raise :class:`RouterClosed`."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Close and release backend resources (queues, feeder threads)."""
        self.close()

    @property
    def closed(self) -> bool:
        raise NotImplementedError

    @property
    def stats(self) -> TransportStats:
        """Snapshot of the traffic counters."""
        raise NotImplementedError

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_server_ranks:
            raise ValueError(f"server rank {rank} out of range")


class MessageRouter(Transport):
    """In-process transport: routes client messages to per-server-rank queues.

    Parameters
    ----------
    num_server_ranks:
        Number of server processes (one per GPU in the paper).
    max_queue_size:
        Bound of each per-rank queue.  The paper notes that during validation
        "newly produced data sent by the clients still accumulate in the ZMQ
        buffer" — the bound models that buffer's capacity; pushes block when
        the queue is full, mimicking ZMQ's high-water-mark back-pressure.
    """

    #: In-process messages are handed over by reference: the payload array a
    #: client created belongs to the message object itself.
    payloads_owned = True

    def __init__(self, num_server_ranks: int, max_queue_size: int = 10_000) -> None:
        if num_server_ranks <= 0:
            raise ValueError("num_server_ranks must be positive")
        self.num_server_ranks = int(num_server_ranks)
        self.max_queue_size = int(max_queue_size)
        self._queues: List[queue.Queue] = [
            queue.Queue(maxsize=max_queue_size) for _ in range(num_server_ranks)
        ]
        self._closed = threading.Event()
        self._stats_lock = threading.Lock()
        self._stats = TransportStats()

    def record_unresponsive_kill(self) -> None:
        with self._stats_lock:
            self._stats.unresponsive_kills += 1

    # ----------------------------------------------------------------- client
    def push(self, rank: int, message: Message, timeout: float | None = None) -> None:
        """Push ``message`` to server rank ``rank`` (blocking when the queue is full)."""
        self._check_rank(rank)
        if self._closed.is_set():
            self._record_dropped(1)
            raise RouterClosed("router is closed")
        try:
            self._queues[rank].put(message, timeout=timeout)
        except queue.Full:
            self._record_dropped(1)
            raise
        with self._stats_lock:
            self._stats.record(rank, message.nbytes())

    def _record_dropped(self, count: int) -> None:
        if count:
            with self._stats_lock:
                self._stats.dropped_messages += count

    # ----------------------------------------------------------------- server
    def poll(self, rank: int, timeout: float | None = 0.05) -> Optional[Message]:
        """Pop the next message for server rank ``rank`` or ``None`` on timeout."""
        self._check_rank(rank)
        try:
            if timeout is None:
                return self._queues[rank].get_nowait()
            return self._queues[rank].get(timeout=timeout)
        except queue.Empty:
            return None

    def poll_many(
        self, rank: int, max_messages: int = 64, timeout: float | None = 0.05
    ) -> List[Message]:
        if max_messages <= 0:
            raise ValueError("max_messages must be positive")
        first = self.poll(rank, timeout=timeout)
        if first is None:
            return []
        messages = [first]
        q = self._queues[rank]
        while len(messages) < max_messages:
            try:
                messages.append(q.get_nowait())
            except queue.Empty:
                break
        return messages

    def pending(self, rank: int) -> int:
        return self._queues[rank].qsize()

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        self._closed.set()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    @property
    def stats(self) -> TransportStats:
        return self._stats


@dataclass
class Connection:
    """Client-side handle distributing messages over the server ranks.

    As in the paper, each client connects to *all* server ranks and sends its
    time steps round-robin, with the starting rank offset by the client id so
    that all clients do not hit the same rank with the same time step.

    With ``batch_size > 1`` the connection accumulates per-rank batches and
    pushes each rank's batch with a single :meth:`Transport.push_many` call
    once full — on the multi-process backend that serialises the whole batch
    into one packed buffer.  :meth:`broadcast` (hello/finished markers)
    flushes every pending batch first so control messages never overtake the
    data sent before them.
    """

    transport: Transport
    client_id: int
    batch_size: int = 1
    _next_rank: int = field(init=False)
    _pending: Dict[int, List[Message]] = field(init=False, default_factory=dict)
    sent_messages: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self._next_rank = self.client_id % self.transport.num_server_ranks

    @property
    def router(self) -> Transport:
        """Backwards-compatible alias for :attr:`transport`."""
        return self.transport

    def send_round_robin(self, message: Message, timeout: float | None = None) -> int:
        """Send to the next rank in round-robin order; returns the rank used."""
        rank = self._next_rank
        self._next_rank = (rank + 1) % self.transport.num_server_ranks
        if self.batch_size == 1:
            self.transport.push(rank, message, timeout=timeout)
            self.sent_messages += 1
        else:
            batch = self._pending.setdefault(rank, [])
            batch.append(message)
            if len(batch) >= self.batch_size:
                self._flush_rank(rank, timeout=timeout)
        return rank

    def send_to(self, rank: int, message: Message, timeout: float | None = None) -> None:
        """Send to an explicit server rank (used for control messages)."""
        self.transport.push(rank, message, timeout=timeout)
        self.sent_messages += 1

    def broadcast(self, message: Message, timeout: float | None = None) -> None:
        """Send the same message to every server rank (hello/finished markers)."""
        self.flush(timeout=timeout)
        for rank in range(self.transport.num_server_ranks):
            self.transport.push(rank, message, timeout=timeout)
        self.sent_messages += self.transport.num_server_ranks

    def flush(self, timeout: float | None = None) -> None:
        """Push every pending per-rank batch."""
        for rank in list(self._pending):
            self._flush_rank(rank, timeout=timeout)

    def _flush_rank(self, rank: int, timeout: float | None) -> None:
        batch = self._pending.pop(rank, None)
        if batch:
            self.transport.push_many(rank, batch, timeout=timeout)
            self.sent_messages += len(batch)

    @property
    def pending_messages(self) -> int:
        """Messages buffered client-side, not yet pushed to the transport."""
        return sum(len(batch) for batch in self._pending.values())

    def pending(self) -> List[Message]:
        """The buffered messages themselves (send order within each rank)."""
        return [message for batch in self._pending.values() for message in batch]


def make_transport(
    kind: str,
    num_server_ranks: int,
    max_queue_size: int = 10_000,
    max_concurrent_clients: int = 8,
    ring_slots: Optional[int] = None,
    ring_slot_bytes: Optional[int] = None,
) -> Transport:
    """Build a transport backend from a study-config string.

    ``"inproc"`` is the thread-based :class:`MessageRouter`; ``"mp"`` is the
    multi-process backend carrying packed batches over ``multiprocessing``
    queues; ``"shm"`` keeps the ``mp`` control queues but moves the hot
    time-step channels onto shared-memory SPSC rings, one per
    (ring-slot lease, server-rank) pair — ``max_concurrent_clients`` sizes
    that slot table (clients lease a ring at connect and release it when
    their ``ClientFinished`` is delivered, so the grid scales with the
    *concurrency*, not the ensemble size) and ``ring_slots``/
    ``ring_slot_bytes`` set the per-ring geometry (``None`` keeps the
    backend defaults).
    """
    if kind == "inproc":
        return MessageRouter(num_server_ranks, max_queue_size=max_queue_size)
    if kind == "mp":
        from repro.parallel.mp_transport import MultiprocessTransport

        return MultiprocessTransport(num_server_ranks, max_queue_size=max_queue_size)
    if kind == "shm":
        from repro.parallel.shm_ring import (
            DEFAULT_RING_SLOT_BYTES,
            DEFAULT_RING_SLOTS,
            ShmRingTransport,
        )

        return ShmRingTransport(
            num_server_ranks,
            max_concurrent_clients=max_concurrent_clients,
            max_queue_size=max_queue_size,
            ring_slots=DEFAULT_RING_SLOTS if ring_slots is None else ring_slots,
            ring_slot_bytes=(DEFAULT_RING_SLOT_BYTES if ring_slot_bytes is None
                else ring_slot_bytes),
        )
    raise ValueError(
        f"unknown transport kind {kind!r} (expected 'inproc', 'mp' or 'shm')"
    )
