"""In-process transport layer connecting clients to server ranks.

This is the ZeroMQ substitute: a :class:`MessageRouter` owns one bounded queue
per server rank; clients obtain a :class:`Connection` and push messages to a
chosen server rank, while each server data-aggregator thread polls its own
queue.  The router also keeps aggregate statistics (messages/bytes routed)
used by the throughput experiments.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.parallel.messages import Message
from repro.utils.exceptions import ReproError


class RouterClosed(ReproError):
    """Raised when pushing to or polling from a closed router."""


@dataclass
class TransportStats:
    """Counters describing the traffic that went through the router."""

    messages_routed: int = 0
    bytes_routed: int = 0
    per_rank_messages: Dict[int, int] = field(default_factory=dict)
    dropped_messages: int = 0

    def record(self, rank: int, nbytes: int) -> None:
        self.messages_routed += 1
        self.bytes_routed += int(nbytes)
        self.per_rank_messages[rank] = self.per_rank_messages.get(rank, 0) + 1


class MessageRouter:
    """Routes client messages to per-server-rank queues.

    Parameters
    ----------
    num_server_ranks:
        Number of server processes (one per GPU in the paper).
    max_queue_size:
        Bound of each per-rank queue.  The paper notes that during validation
        "newly produced data sent by the clients still accumulate in the ZMQ
        buffer" — the bound models that buffer's capacity; pushes block when
        the queue is full, mimicking ZMQ's high-water-mark back-pressure.
    """

    def __init__(self, num_server_ranks: int, max_queue_size: int = 10_000) -> None:
        if num_server_ranks <= 0:
            raise ValueError("num_server_ranks must be positive")
        self.num_server_ranks = int(num_server_ranks)
        self.max_queue_size = int(max_queue_size)
        self._queues: List[queue.Queue] = [
            queue.Queue(maxsize=max_queue_size) for _ in range(num_server_ranks)
        ]
        self._closed = threading.Event()
        self._stats_lock = threading.Lock()
        self.stats = TransportStats()

    # ----------------------------------------------------------------- client
    def connect(self, client_id: int) -> "Connection":
        """Create a connection handle for a client (all server ranks reachable)."""
        if self._closed.is_set():
            raise RouterClosed("cannot connect: router is closed")
        return Connection(router=self, client_id=int(client_id))

    def push(self, rank: int, message: Message, timeout: float | None = None) -> None:
        """Push ``message`` to server rank ``rank`` (blocking when the queue is full)."""
        if self._closed.is_set():
            raise RouterClosed("router is closed")
        if not 0 <= rank < self.num_server_ranks:
            raise ValueError(f"server rank {rank} out of range")
        self._queues[rank].put(message, timeout=timeout)
        with self._stats_lock:
            self.stats.record(rank, message.nbytes())

    # ----------------------------------------------------------------- server
    def poll(self, rank: int, timeout: float | None = 0.05) -> Optional[Message]:
        """Pop the next message for server rank ``rank`` or ``None`` on timeout."""
        if not 0 <= rank < self.num_server_ranks:
            raise ValueError(f"server rank {rank} out of range")
        try:
            if timeout is None:
                return self._queues[rank].get_nowait()
            return self._queues[rank].get(timeout=timeout)
        except queue.Empty:
            return None

    def poll_many(
        self, rank: int, max_messages: int = 64, timeout: float | None = 0.05
    ) -> List[Message]:
        """Pop up to ``max_messages`` messages for ``rank`` in one call.

        Blocks up to ``timeout`` for the first message only, then drains
        whatever else is already queued without blocking — the chunked
        consumption pattern of the data aggregator.  Returns an empty list on
        timeout.
        """
        if max_messages <= 0:
            raise ValueError("max_messages must be positive")
        first = self.poll(rank, timeout=timeout)
        if first is None:
            return []
        messages = [first]
        q = self._queues[rank]
        while len(messages) < max_messages:
            try:
                messages.append(q.get_nowait())
            except queue.Empty:
                break
        return messages

    def pending(self, rank: int) -> int:
        """Number of messages currently queued for server rank ``rank``."""
        return self._queues[rank].qsize()

    def total_pending(self) -> int:
        """Messages queued across all ranks."""
        return sum(q.qsize() for q in self._queues)

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close the router; subsequent pushes raise :class:`RouterClosed`."""
        self._closed.set()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


@dataclass
class Connection:
    """Client-side handle distributing messages over the server ranks.

    As in the paper, each client connects to *all* server ranks and sends its
    time steps round-robin, with the starting rank offset by the client id so
    that all clients do not hit the same rank with the same time step.
    """

    router: MessageRouter
    client_id: int
    _next_rank: int = field(init=False)
    sent_messages: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self._next_rank = self.client_id % self.router.num_server_ranks

    def send_round_robin(self, message: Message, timeout: float | None = None) -> int:
        """Send to the next rank in round-robin order; returns the rank used."""
        rank = self._next_rank
        self.router.push(rank, message, timeout=timeout)
        self._next_rank = (rank + 1) % self.router.num_server_ranks
        self.sent_messages += 1
        return rank

    def send_to(self, rank: int, message: Message, timeout: float | None = None) -> None:
        """Send to an explicit server rank (used for control messages)."""
        self.router.push(rank, message, timeout=timeout)
        self.sent_messages += 1

    def broadcast(self, message: Message, timeout: float | None = None) -> None:
        """Send the same message to every server rank (hello/finished markers)."""
        for rank in range(self.router.num_server_ranks):
            self.router.push(rank, message, timeout=timeout)
        self.sent_messages += self.router.num_server_ranks
