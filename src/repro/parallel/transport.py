"""Pluggable transport layer connecting clients to server ranks.

This is the ZeroMQ substitute.  A :class:`Transport` owns one bounded channel
per server rank; clients obtain a :class:`Connection` and push messages to a
chosen server rank, while each server data-aggregator thread polls its own
channel.  Two backends implement the interface:

* :class:`MessageRouter` — the in-process backend: one ``queue.Queue`` per
  rank, messages handed over by reference (no serialisation).
* :class:`repro.parallel.mp_transport.MultiprocessTransport` — real OS-process
  isolation: one ``multiprocessing.Queue`` per rank carrying *packed batches*
  (:func:`repro.parallel.messages.pack_many`), with shared-memory statistics
  counters visible from every client process.
* :class:`repro.parallel.shm_ring.ShmRingTransport` — the same process
  isolation, but the hot time-step channels are lock-free shared-memory SPSC
  ring buffers (one per client and rank); only rare control messages ride
  the ``mp.Queue``.
* :class:`repro.parallel.tcp_transport.TcpTransport` — the first backend
  where client and server share no memory: length-prefixed frames carrying
  the same packed batches over TCP sockets into an asyncio front door
  (:class:`repro.server.serving.AsyncFrontDoor`).

Backend selection is a registry: :func:`make_transport` builds a backend
from a study-config string or a typed :class:`TransportConfig`, and
:func:`register_backend` plugs in new backends without touching call sites.
All backends keep aggregate statistics (messages/bytes routed, drops) used
by the throughput experiments.
"""

from __future__ import annotations

import queue
import threading
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.buffers.columns import ColumnBatch
from repro.parallel.messages import (
    Message,
    WireFormatError,
    column_batch_to_messages,
    columnize,
    unpack_columns,
    unpack_many,
)
from repro.utils.constants import (
    DEFAULT_HASH_RING_REPLICAS,
    DEFAULT_RING_SLOT_BYTES,
    DEFAULT_RING_SLOTS,
)
from repro.utils.exceptions import ConfigurationError, ReproError
from repro.utils.logging import get_logger

logger = get_logger("parallel.transport")


class RouterClosed(ReproError):
    """Raised when pushing to or polling from a closed transport."""


@dataclass
class TransportStats:
    """Counters describing the traffic that went through a transport.

    ``dropped_messages`` counts every message that failed to enter a rank
    channel: pushes that timed out on a full queue and pushes rejected
    because the transport was already closed.  The ring-buffer backend adds
    ``torn_batches`` (batches lost to a writer killed mid-write) and
    ``ring_depth_high_water`` (deepest observed backlog per rank, in
    batches); both stay at their defaults on the other backends.
    ``unresponsive_kills`` counts client processes the launcher terminated
    for missing their heartbeat deadline (process client mode only).
    """

    messages_routed: int = 0
    bytes_routed: int = 0
    per_rank_messages: Dict[int, int] = field(default_factory=dict)
    dropped_messages: int = 0
    torn_batches: int = 0
    ring_depth_high_water: Dict[int, int] = field(default_factory=dict)
    unresponsive_kills: int = 0

    def record(self, rank: int, nbytes: int) -> None:
        self.messages_routed += 1
        self.bytes_routed += int(nbytes)
        self.per_rank_messages[rank] = self.per_rank_messages.get(rank, 0) + 1

    def record_batch(self, rank: int, count: int, nbytes: int) -> None:
        """Record ``count`` messages that crossed the channel as one batch."""
        self.messages_routed += int(count)
        self.bytes_routed += int(nbytes)
        self.per_rank_messages[rank] = self.per_rank_messages.get(rank, 0) + int(count)


class Transport:
    """Interface of a client→server message channel set.

    A transport exposes ``num_server_ranks`` bounded channels.  Clients call
    :meth:`connect` and push through the returned :class:`Connection`; the
    per-rank server aggregators drain with :meth:`poll_many`.  Push calls
    raise ``queue.Full`` when the rank channel stays full past the timeout
    (ZMQ's high-water-mark back-pressure) and :class:`RouterClosed` after
    :meth:`close`; both paths count the message in ``stats.dropped_messages``.
    """

    num_server_ranks: int

    #: Ownership contract of polled messages: when True, every payload array
    #: handed out by :meth:`poll_many` is owned by the message (retaining it
    #: does not pin a transport buffer that will be reused or that holds
    #: unrelated data), so consumers may adopt the views without copying.
    #: Backends that hand out borrowed views must leave this False.  Columnar
    #: chunks are stricter still: a ``ColumnBatch`` returned by
    #: :meth:`poll_batches` always owns its column arrays outright — wire
    #: backends copy the payload block exactly once while decoding (the
    #: adoption copy), and the flag only tells consumers whether *plain
    #: message* payloads need a defensive copy.
    payloads_owned = False

    # ----------------------------------------------------------------- client
    def connect(self, client_id: int, batch_size: int = 1) -> "Connection":
        """Create a connection handle for a client (all server ranks reachable)."""
        if self.closed:
            raise RouterClosed("cannot connect: transport is closed")
        return Connection(transport=self, client_id=int(client_id), batch_size=int(batch_size))

    def push(self, rank: int, message: Message, timeout: float | None = None) -> None:
        """Push one message to ``rank`` (blocking while the channel is full)."""
        raise NotImplementedError

    def push_many(self, rank: int, messages: List[Message], timeout: float | None = None) -> None:
        """Push a batch to ``rank``; backends may serialise it as one buffer.

        A failed push drops the whole remaining batch (the failing message is
        counted by :meth:`push` itself) so both backends account a rejected
        batch identically in ``stats.dropped_messages``.
        """
        for index, message in enumerate(messages):
            try:
                self.push(rank, message, timeout=timeout)
            except (queue.Full, RouterClosed):
                self._record_dropped(len(messages) - index - 1)
                raise

    def _record_dropped(self, count: int) -> None:
        """Add ``count`` messages to the drop counter (backend-specific store)."""
        raise NotImplementedError

    def record_unresponsive_kill(self) -> None:
        """Count one launcher-side kill of an unresponsive client (optional)."""

    # ----------------------------------------------------------------- server
    def poll(self, rank: int, timeout: float | None = 0.05) -> Optional[Message]:
        """Pop the next message for server rank ``rank`` or ``None`` on timeout."""
        messages = self.poll_many(rank, max_messages=1, timeout=timeout)
        return messages[0] if messages else None

    def poll_many(self, rank: int, max_messages: int = 64,
        timeout: float | None = 0.05) -> List[Message]:
        """Pop up to ``max_messages`` messages for ``rank`` in one call.

        Blocks up to ``timeout`` for the first message only, then drains
        whatever else is already queued without blocking — the chunked
        consumption pattern of the data aggregator.  Returns an empty list on
        timeout.
        """
        raise NotImplementedError

    def poll_batches(self, rank: int, max_messages: int = 64,
        timeout: float | None = 0.05) -> list:
        """Drain like :meth:`poll_many`, delivering step runs as columnar chunks.

        Returns a mixed list of control :class:`Message` objects and
        :class:`repro.buffers.columns.ColumnBatch` chunks in arrival order;
        a chunk of ``n`` samples counts ``n`` messages toward
        ``max_messages``.  Every returned chunk owns its columns (see
        :attr:`payloads_owned`).  The default implementation groups the
        object-polled messages with
        :func:`repro.parallel.messages.columnize`; wire backends override
        the decode to build the chunks straight from the packed batch,
        without materialising per-message objects at all.
        """
        return columnize(self.poll_many(rank, max_messages=max_messages, timeout=timeout))

    def pending(self, rank: int) -> int:
        """Number of messages currently queued for server rank ``rank``."""
        raise NotImplementedError

    def total_pending(self) -> int:
        """Messages queued across all ranks."""
        return sum(self.pending(rank) for rank in range(self.num_server_ranks))

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close the transport; subsequent pushes raise :class:`RouterClosed`."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Close and release backend resources (queues, feeder threads)."""
        self.close()

    @property
    def closed(self) -> bool:
        raise NotImplementedError

    @property
    def stats(self) -> TransportStats:
        """Snapshot of the traffic counters."""
        raise NotImplementedError

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_server_ranks:
            raise ValueError(f"server rank {rank} out of range")


class PackedDrainMixin:
    """Server-side drain machinery shared by the wire backends (mp, shm, tcp).

    Wire backends deliver whole packed batches per channel slot; a poll
    budget therefore rarely lines up with batch boundaries.  This mixin
    implements the budgeted drain — block for the first batch only, then
    drain without blocking, park the overshoot in a per-rank leftover deque —
    plus the shared packed-buffer decode (columnar chunk first, per-message
    fallback, corrupt buffers dropped and counted).

    A concrete backend provides:

    * ``self._leftover`` — one ``deque`` per rank, created via
      :meth:`_init_leftovers` in ``__init__`` (each rank has exactly one
      aggregator thread, so the deques need no lock);
    * :meth:`_get_batch` — pop and decode one batch from the rank channel;
    * ``_record_dropped``/``_check_rank`` from :class:`Transport`.
    """

    _leftover: List[Deque[object]]

    def _init_leftovers(self, num_server_ranks: int) -> None:
        self._leftover = [deque() for _ in range(num_server_ranks)]

    def poll_many(self, rank: int, max_messages: int = 64,
        timeout: float | None = 0.05) -> List[Message]:
        return self._poll_items(rank, max_messages, timeout, columnar=False)

    def poll_batches(self, rank: int, max_messages: int = 64,
        timeout: float | None = 0.05) -> list:
        """Columnar drain: homogeneous packed batches decode straight into
        :class:`ColumnBatch` chunks (no per-message objects); control
        messages and ragged batches arrive as plain messages, in order.
        """
        return self._poll_items(rank, max_messages, timeout, columnar=True)

    def _poll_items(self, rank: int, max_messages: int, timeout: float | None,
                    columnar: bool) -> list:
        if max_messages <= 0:
            raise ValueError("max_messages must be positive")
        self._check_rank(rank)
        items: list = []
        count = self._take_leftover(rank, items, max_messages, columnar)
        if not items:
            # Block up to ``timeout`` for the first batch only.
            batch = self._get_batch(rank, timeout, columnar)
            if batch is None:
                return []
            count = self._absorb(rank, items, batch, max_messages, count)
        # Drain whatever else is already queued without blocking.
        while count < max_messages:
            batch = self._get_batch(rank, None, columnar)
            if batch is None:
                break
            count = self._absorb(rank, items, batch, max_messages, count)
        return items

    def _take_leftover(self, rank: int, out: list, max_messages: int,
                       columnar: bool) -> int:
        """Move queued leftovers into ``out``; returns the message count taken.

        Leftovers may be plain messages or columnar chunks, whichever shape a
        previous poll produced; a chunk is sliced to fit the budget in
        columnar mode and exploded into messages otherwise (the rare path of
        a consumer switching drain styles mid-stream).
        """
        leftover = self._leftover[rank]
        count = 0
        while leftover and count < max_messages:
            item = leftover[0]
            if not isinstance(item, ColumnBatch):
                out.append(leftover.popleft())
                count += 1
                continue
            room = max_messages - count
            if not columnar:
                item = leftover.popleft()
                messages = column_batch_to_messages(item)
                out.extend(messages[:room])
                count += min(room, len(messages))
                for message in reversed(messages[room:]):
                    leftover.appendleft(message)
                continue
            if len(item) <= room:
                out.append(leftover.popleft())
                count += len(item)
            else:
                out.append(item[:room])
                leftover[0] = item[room:]
                count = max_messages
        return count

    def _get_batch(self, rank: int, timeout: float | None,
                   columnar: bool = False) -> Optional[list]:
        """Pop and decode one batch from the rank channel.

        Returns ``None`` when nothing is queued within ``timeout`` and ``[]``
        for a batch that was dropped as corrupt (so the drain keeps going).
        """
        raise NotImplementedError

    def _decode_packed(self, buffer, rank: int, columnar: bool) -> list:
        """Decode one packed batch buffer into messages or a columnar chunk.

        An unparsable buffer (a client killed mid-write can tear the byte
        stream) is counted as one dropped batch and skipped instead of
        killing the aggregator thread that polls here.
        """
        try:
            if columnar:
                chunk = unpack_columns(buffer)
                if chunk is not None:
                    return [chunk]
            # copy_payloads: one block copy lets the channel buffer be freed
            # immediately instead of being pinned by every retained payload
            # view (the messages collectively own the copied block).
            return unpack_many(buffer, copy_payloads=True)
        except WireFormatError:
            logger.warning("rank %d: discarding unparsable transport batch", rank, exc_info=True)
            self._record_dropped(1)
            return []

    def _absorb(self, rank: int, out: list, batch: list,
                max_messages: int, count: int = 0) -> int:
        """Append ``batch`` items to ``out`` within the message budget.

        ``batch`` holds messages and/or columnar chunks; a chunk counts
        ``len(chunk)`` messages.  Whatever exceeds the budget goes to the
        rank's leftover deque (chunks are split by slicing, which makes
        column views, not copies).  Returns the updated message count.
        """
        leftover = self._leftover[rank]
        for index, item in enumerate(batch):
            if count >= max_messages:
                leftover.extend(batch[index:])
                break
            if isinstance(item, ColumnBatch):
                room = max_messages - count
                if len(item) <= room:
                    out.append(item)
                    count += len(item)
                else:
                    out.append(item[:room])
                    leftover.append(item[room:])
                    count = max_messages
            else:
                out.append(item)
                count += 1
        return count

    def _leftover_count(self, rank: int) -> int:
        """Deserialised leftovers, columnar chunks counted by sample count."""
        return sum(
            len(item) if isinstance(item, ColumnBatch) else 1
            for item in self._leftover[rank]
        )


class MessageRouter(Transport):
    """In-process transport: routes client messages to per-server-rank queues.

    Parameters
    ----------
    num_server_ranks:
        Number of server processes (one per GPU in the paper).
    max_queue_size:
        Bound of each per-rank queue.  The paper notes that during validation
        "newly produced data sent by the clients still accumulate in the ZMQ
        buffer" — the bound models that buffer's capacity; pushes block when
        the queue is full, mimicking ZMQ's high-water-mark back-pressure.
    """

    #: In-process messages are handed over by reference: the payload array a
    #: client created belongs to the message object itself.
    payloads_owned = True

    def __init__(self, num_server_ranks: int, max_queue_size: int = 10_000) -> None:
        if num_server_ranks <= 0:
            raise ValueError("num_server_ranks must be positive")
        self.num_server_ranks = int(num_server_ranks)
        self.max_queue_size = int(max_queue_size)
        self._queues: List[queue.Queue] = [
            queue.Queue(maxsize=max_queue_size) for _ in range(num_server_ranks)
        ]
        self._closed = threading.Event()
        self._stats_lock = threading.Lock()
        self._stats = TransportStats()

    def record_unresponsive_kill(self) -> None:
        with self._stats_lock:
            self._stats.unresponsive_kills += 1

    # ----------------------------------------------------------------- client
    def push(self, rank: int, message: Message, timeout: float | None = None) -> None:
        """Push ``message`` to server rank ``rank`` (blocking when the queue is full)."""
        self._check_rank(rank)
        if self._closed.is_set():
            self._record_dropped(1)
            raise RouterClosed("router is closed")
        try:
            self._queues[rank].put(message, timeout=timeout)
        except queue.Full:
            self._record_dropped(1)
            raise
        with self._stats_lock:
            self._stats.record(rank, message.nbytes())

    def _record_dropped(self, count: int) -> None:
        if count:
            with self._stats_lock:
                self._stats.dropped_messages += count

    # ----------------------------------------------------------------- server
    def poll(self, rank: int, timeout: float | None = 0.05) -> Optional[Message]:
        """Pop the next message for server rank ``rank`` or ``None`` on timeout."""
        self._check_rank(rank)
        try:
            if timeout is None:
                return self._queues[rank].get_nowait()
            return self._queues[rank].get(timeout=timeout)
        except queue.Empty:
            return None

    def poll_many(
        self, rank: int, max_messages: int = 64, timeout: float | None = 0.05
    ) -> List[Message]:
        if max_messages <= 0:
            raise ValueError("max_messages must be positive")
        first = self.poll(rank, timeout=timeout)
        if first is None:
            return []
        messages = [first]
        q = self._queues[rank]
        while len(messages) < max_messages:
            try:
                messages.append(q.get_nowait())
            except queue.Empty:
                break
        return messages

    def pending(self, rank: int) -> int:
        return self._queues[rank].qsize()

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        self._closed.set()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    @property
    def stats(self) -> TransportStats:
        return self._stats


@dataclass
class Connection:
    """Client-side handle distributing messages over the server ranks.

    As in the paper, each client connects to *all* server ranks and sends its
    time steps round-robin, with the starting rank offset by the client id so
    that all clients do not hit the same rank with the same time step.

    With ``batch_size > 1`` the connection accumulates per-rank batches and
    pushes each rank's batch with a single :meth:`Transport.push_many` call
    once full — on the multi-process backend that serialises the whole batch
    into one packed buffer.  :meth:`broadcast` (hello/finished markers)
    flushes every pending batch first so control messages never overtake the
    data sent before them.
    """

    transport: Transport
    client_id: int
    batch_size: int = 1
    _next_rank: int = field(init=False)
    _pending: Dict[int, List[Message]] = field(init=False, default_factory=dict)
    sent_messages: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self._next_rank = self.client_id % self.transport.num_server_ranks

    @property
    def router(self) -> Transport:
        """Backwards-compatible alias for :attr:`transport`."""
        return self.transport

    def send_round_robin(self, message: Message, timeout: float | None = None) -> int:
        """Send to the next rank in round-robin order; returns the rank used."""
        rank = self._next_rank
        self._next_rank = (rank + 1) % self.transport.num_server_ranks
        if self.batch_size == 1:
            self.transport.push(rank, message, timeout=timeout)
            self.sent_messages += 1
        else:
            batch = self._pending.setdefault(rank, [])
            batch.append(message)
            if len(batch) >= self.batch_size:
                self._flush_rank(rank, timeout=timeout)
        return rank

    def send_to(self, rank: int, message: Message, timeout: float | None = None) -> None:
        """Send to an explicit server rank (used for control messages)."""
        self.transport.push(rank, message, timeout=timeout)
        self.sent_messages += 1

    def broadcast(self, message: Message, timeout: float | None = None) -> None:
        """Send the same message to every server rank (hello/finished markers)."""
        self.flush(timeout=timeout)
        for rank in range(self.transport.num_server_ranks):
            self.transport.push(rank, message, timeout=timeout)
        self.sent_messages += self.transport.num_server_ranks

    def flush(self, timeout: float | None = None) -> None:
        """Push every pending per-rank batch."""
        for rank in list(self._pending):
            self._flush_rank(rank, timeout=timeout)

    def _flush_rank(self, rank: int, timeout: float | None) -> None:
        batch = self._pending.pop(rank, None)
        if batch:
            self.transport.push_many(rank, batch, timeout=timeout)
            self.sent_messages += len(batch)

    @property
    def pending_messages(self) -> int:
        """Messages buffered client-side, not yet pushed to the transport."""
        return sum(len(batch) for batch in self._pending.values())

    def pending(self) -> List[Message]:
        """The buffered messages themselves (send order within each rank)."""
        return [message for batch in self._pending.values() for message in batch]


# --------------------------------------------------------------------- config
@dataclass(frozen=True)
class ShmOptions:
    """Geometry of the ``"shm"`` backend's per-(client, rank) SPSC rings.

    Each ring holds ``ring_slots`` packed batches of at most
    ``ring_slot_bytes`` bytes; oversized batches are split automatically and
    a single message that cannot fit raises, naming the knob.
    """

    ring_slots: int = DEFAULT_RING_SLOTS
    ring_slot_bytes: int = DEFAULT_RING_SLOT_BYTES

    def __post_init__(self) -> None:
        if self.ring_slots <= 0:
            raise ConfigurationError("ring_slots must be positive")
        if self.ring_slot_bytes <= 0:
            raise ConfigurationError("ring_slot_bytes must be positive")


#: Payload compression codecs the tcp backend understands.  ``"zlib"`` is
#: always available (stdlib); ``"lz4"`` needs the optional ``lz4`` package
#: and fails with an actionable error at transport construction otherwise.
TCP_COMPRESSIONS = (None, "zlib", "lz4")


@dataclass(frozen=True)
class TcpOptions:
    """Address and framing options of the ``"tcp"`` backend.

    ``port=0`` binds an ephemeral port (the study wires the resolved address
    to its forked clients, so the default never collides).  ``compression``
    is applied per batch and only when it actually shrinks the payload; the
    frame header flags the codec, so mixed streams decode transparently.
    """

    host: str = "127.0.0.1"
    port: int = 0
    compression: Optional[str] = None
    connect_timeout: float = 10.0

    def __post_init__(self) -> None:
        if not self.host:
            raise ConfigurationError("tcp host must be non-empty")
        if not 0 <= self.port <= 65_535:
            raise ConfigurationError("tcp port must be in [0, 65535]")
        if self.compression not in TCP_COMPRESSIONS:
            raise ConfigurationError(
                f"tcp compression must be one of {TCP_COMPRESSIONS}, "
                f"got {self.compression!r}"
            )
        if self.connect_timeout <= 0:
            raise ConfigurationError("tcp connect_timeout must be positive")


def parse_endpoint(value: str) -> Tuple[str, int]:
    """Split a ``"host:port"`` shard endpoint, validating both parts."""
    host, sep, port_text = str(value).rpartition(":")
    if not sep or not host:
        raise ConfigurationError(f"shard endpoint {value!r} is not of the form 'host:port'")
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(
            f"shard endpoint {value!r} has a non-integer port"
        ) from None
    if not 0 <= port <= 65_535:
        raise ConfigurationError(f"shard endpoint {value!r} port must be in [0, 65535]")
    return host, port


@dataclass(frozen=True)
class ShardOptions:
    """Sharded serving tier: how many shards and how clients map onto them.

    With ``num_shards > 1`` the study runs that many independent server
    shards — each with its own transport endpoint, aggregator threads,
    buffer and training workers — and routes every client to exactly one
    shard through a consistent-hash ring over its client id
    (``hash_replicas`` virtual nodes per shard, see
    :class:`repro.server.sharding.HashRing`).  ``endpoints`` optionally pins
    each ``tcp`` shard to a ``"host:port"`` address so shards can live on
    different hosts; within one host the ``shm`` backend needs no addresses
    and ``endpoints`` stays empty.
    """

    num_shards: int = 1
    hash_replicas: int = DEFAULT_HASH_RING_REPLICAS
    endpoints: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ConfigurationError("num_shards must be positive")
        if self.hash_replicas <= 0:
            raise ConfigurationError("hash_replicas must be positive")
        object.__setattr__(self, "endpoints", tuple(self.endpoints))
        if self.endpoints and len(self.endpoints) != self.num_shards:
            raise ConfigurationError(
                f"shard_endpoints names {len(self.endpoints)} addresses "
                f"for {self.num_shards} shards"
            )
        for endpoint in self.endpoints:
            parse_endpoint(endpoint)


@dataclass(frozen=True)
class TransportConfig:
    """Typed transport configuration: one backend plus its per-backend options.

    This replaces the flat ``transport_*``/``ring_*`` knob sprawl of
    :class:`repro.core.config.OnlineStudyConfig` — the study config still
    accepts the old flat fields as deprecation aliases and funnels both
    spellings through :meth:`resolve`, the single normalization point, so a
    flat spelling and its typed equivalent always produce identical resolved
    configs.
    """

    backend: str = "inproc"
    #: Client-side batching width (messages per packed buffer / frame).
    batch_size: int = 1
    #: Bound of each per-rank channel (messages on ``inproc``, batches on
    #: the wire backends).
    queue_size: int = 100_000
    #: Kill a client process that has not finished after this many seconds
    #: and restart it (``None`` waits forever); process client mode only.
    process_timeout: Optional[float] = None
    #: Kill-and-restart a client whose last server-observed activity is
    #: older than this many seconds (``None`` disables the watchdog).
    heartbeat_timeout: Optional[float] = None
    shm: ShmOptions = field(default_factory=ShmOptions)
    tcp: TcpOptions = field(default_factory=TcpOptions)
    shard: ShardOptions = field(default_factory=ShardOptions)

    def __post_init__(self) -> None:
        if self.backend not in _BACKENDS:
            raise ConfigurationError(
                f"unknown transport backend {self.backend!r} "
                f"(registered: {', '.join(sorted(_BACKENDS))})"
            )
        if self.batch_size <= 0:
            raise ConfigurationError("transport batch_size must be positive")
        if self.queue_size <= 0:
            raise ConfigurationError("transport queue_size must be positive")
        if self.process_timeout is not None and self.process_timeout <= 0:
            raise ConfigurationError("process_timeout must be positive or None")
        if self.heartbeat_timeout is not None and self.heartbeat_timeout <= 0:
            raise ConfigurationError("heartbeat_timeout must be positive or None")
        if self.shard.endpoints and self.backend != "tcp":
            raise ConfigurationError(
                "shard_endpoints only apply to the 'tcp' backend "
                f"(got backend {self.backend!r})"
            )

    @property
    def client_mode(self) -> str:
        """Launcher client mode this backend needs (``"thread"``/``"process"``)."""
        return _BACKENDS[self.backend].client_mode

    @classmethod
    def resolve(
        cls,
        transport: Union[str, "TransportConfig"] = "inproc",
        *,
        transport_batch_size: Optional[int] = None,
        transport_queue_size: Optional[int] = None,
        ring_slots: Optional[int] = None,
        ring_slot_bytes: Optional[int] = None,
        client_process_timeout: Optional[float] = None,
        client_heartbeat_timeout: Optional[float] = None,
        num_shards: Optional[int] = None,
        shard_endpoints: Optional[Sequence[str]] = None,
        hash_replicas: Optional[int] = None,
    ) -> "TransportConfig":
        """Normalize a backend string or config plus legacy flat overrides.

        The single normalization point of the transport API: every flat
        legacy knob maps onto exactly one typed field, a ``None`` override
        keeps the base value, and validation runs once on the result.
        """
        base = transport if isinstance(transport, TransportConfig) else cls(backend=transport)
        updates: dict = {}
        if transport_batch_size is not None:
            updates["batch_size"] = int(transport_batch_size)
        if transport_queue_size is not None:
            updates["queue_size"] = int(transport_queue_size)
        if client_process_timeout is not None:
            updates["process_timeout"] = float(client_process_timeout)
        if client_heartbeat_timeout is not None:
            updates["heartbeat_timeout"] = float(client_heartbeat_timeout)
        if ring_slots is not None or ring_slot_bytes is not None:
            shm_updates: dict = {}
            if ring_slots is not None:
                shm_updates["ring_slots"] = int(ring_slots)
            if ring_slot_bytes is not None:
                shm_updates["ring_slot_bytes"] = int(ring_slot_bytes)
            updates["shm"] = replace(base.shm, **shm_updates)
        if num_shards is not None or shard_endpoints is not None or hash_replicas is not None:
            shard_updates: dict = {}
            if num_shards is not None:
                shard_updates["num_shards"] = int(num_shards)
            if shard_endpoints is not None:
                shard_updates["endpoints"] = tuple(shard_endpoints)
            if hash_replicas is not None:
                shard_updates["hash_replicas"] = int(hash_replicas)
            updates["shard"] = replace(base.shard, **shard_updates)
        return replace(base, **updates) if updates else base

    def for_shard(self, index: int) -> "TransportConfig":
        """The single-shard transport config of shard ``index``.

        Each shard runs an ordinary single-endpoint transport, so the
        sharding options are stripped from the result; when
        ``shard.endpoints`` pins addresses, the tcp options are rebound to
        this shard's ``host:port``.
        """
        shard = self.shard
        if not 0 <= index < shard.num_shards:
            raise ConfigurationError(
                f"shard index {index} out of range for {shard.num_shards} shard(s)"
            )
        updates: dict = {"shard": ShardOptions(hash_replicas=shard.hash_replicas)}
        if shard.endpoints:
            host, port = parse_endpoint(shard.endpoints[index])
            updates["tcp"] = replace(self.tcp, host=host, port=port)
        return replace(self, **updates)


# ------------------------------------------------------------------- registry
#: Factory signature of a registered backend: ``(config, num_server_ranks,
#: max_concurrent_clients) -> Transport``.
TransportFactory = Callable[[TransportConfig, int, int], Transport]


@dataclass(frozen=True)
class _BackendEntry:
    factory: TransportFactory
    client_mode: str


_BACKENDS: Dict[str, _BackendEntry] = {}


def register_backend(name: str, factory: TransportFactory,
                     client_mode: str = "thread") -> None:
    """Register a transport backend under a config string.

    ``client_mode`` tells the study how the launcher must run clients against
    this backend: ``"thread"`` for shared-memory-by-reference backends,
    ``"process"`` for backends that survive a fork (the built-in ``mp``,
    ``shm`` and ``tcp`` backends).  Re-registering a name replaces the
    previous factory, which lets tests install instrumented backends.
    """
    if client_mode not in ("thread", "process"):
        raise ValueError(f"client_mode must be 'thread' or 'process', got {client_mode!r}")
    _BACKENDS[str(name)] = _BackendEntry(factory=factory, client_mode=client_mode)


def available_backends() -> Tuple[str, ...]:
    """Names of the registered transport backends, sorted."""
    return tuple(sorted(_BACKENDS))


def _make_inproc(config: TransportConfig, num_server_ranks: int,
                 max_concurrent_clients: int) -> Transport:
    return MessageRouter(num_server_ranks, max_queue_size=config.queue_size)


def _make_mp(config: TransportConfig, num_server_ranks: int,
             max_concurrent_clients: int) -> Transport:
    from repro.parallel.mp_transport import MultiprocessTransport

    return MultiprocessTransport(num_server_ranks, max_queue_size=config.queue_size)


def _make_shm(config: TransportConfig, num_server_ranks: int,
              max_concurrent_clients: int) -> Transport:
    from repro.parallel.shm_ring import ShmRingTransport

    return ShmRingTransport(
        num_server_ranks,
        max_concurrent_clients=max_concurrent_clients,
        max_queue_size=config.queue_size,
        ring_slots=config.shm.ring_slots,
        ring_slot_bytes=config.shm.ring_slot_bytes,
    )


def _make_tcp(config: TransportConfig, num_server_ranks: int,
              max_concurrent_clients: int) -> Transport:
    from repro.parallel.tcp_transport import TcpTransport

    options = config.tcp
    return TcpTransport(
        num_server_ranks,
        max_queue_size=config.queue_size,
        host=options.host,
        port=options.port,
        compression=options.compression,
        connect_timeout=options.connect_timeout,
    )


register_backend("inproc", _make_inproc, client_mode="thread")
register_backend("mp", _make_mp, client_mode="process")
register_backend("shm", _make_shm, client_mode="process")
register_backend("tcp", _make_tcp, client_mode="process")


def make_transport(
    kind: Union[str, TransportConfig],
    num_server_ranks: int,
    max_queue_size: Optional[int] = None,
    max_concurrent_clients: int = 8,
    ring_slots: Optional[int] = None,
    ring_slot_bytes: Optional[int] = None,
) -> Transport:
    """Build a transport backend from a config string or :class:`TransportConfig`.

    ``"inproc"`` is the thread-based :class:`MessageRouter`; ``"mp"`` carries
    packed batches over ``multiprocessing`` queues; ``"shm"`` moves the hot
    time-step channels onto shared-memory SPSC rings; ``"tcp"`` frames the
    packed batches over sockets into the asyncio front door.  The legacy
    keyword overrides (``max_queue_size``, ``ring_slots``,
    ``ring_slot_bytes``) stay accepted and fold into the resolved
    :class:`TransportConfig`; ``max_concurrent_clients`` sizes the shm
    slot-lease table (the grid scales with the *concurrency*, not the
    ensemble size).  Backends registered via :func:`register_backend` are
    constructed the same way.
    """
    config = TransportConfig.resolve(
        kind,
        transport_queue_size=max_queue_size,
        ring_slots=ring_slots,
        ring_slot_bytes=ring_slot_bytes,
    )
    entry = _BACKENDS.get(config.backend)
    if entry is None:  # only reachable if a backend was unregistered since
        raise ConfigurationError(f"unknown transport backend {config.backend!r}")
    return entry.factory(config, int(num_server_ranks), int(max_concurrent_clients))
