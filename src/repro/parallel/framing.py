"""Length-prefixed frame protocol of the tcp transport.

A frame is a fixed 16-byte header followed by a body:

* ``magic`` (4s) — ``b"RTCF"``; a connection that opens with anything else is
  a protocol violation and is dropped.
* ``version`` (u8) — wire protocol version, bumped on layout changes.
* ``kind`` (u8) — :data:`KIND_HELLO` (connection handshake: client id +
  dedup epoch) or :data:`KIND_BATCH` (one packed message batch,
  :func:`repro.parallel.messages.pack_many` layout).
* ``flags`` (u8) — body compression codec (:data:`_FLAG_ZLIB` /
  :data:`_FLAG_LZ4`; 0 means uncompressed).
* ``rank`` (u8) — destination server rank of a batch frame.
* ``body_len`` (u32) — bytes following the header on the wire (compressed
  size when a codec flag is set).
* ``raw_len`` (u32) — decompressed body size; equals ``body_len`` when the
  body is uncompressed, and lets the decoder verify the inflate.

Compression is decided **per batch**: the sender tries the configured codec
and falls back to an uncompressed body whenever compression does not shrink
the payload (tiny batches, already-dense float fields), so a stream may mix
compressed and uncompressed frames freely.  ``zlib`` is stdlib and always
available; ``lz4`` is optional and gated behind :func:`lz4_available`.
"""

from __future__ import annotations

import struct
import zlib
from typing import Tuple, Union

from repro.utils.exceptions import ReproError

try:  # optional codec: only ``compression="lz4"`` needs the lz4 package
    import lz4.frame as _lz4
except ImportError:  # the container image may not ship lz4; zlib always works
    _lz4 = None

Buffer = Union[bytes, bytearray, memoryview]


class FrameError(ReproError):
    """Raised for a frame that violates the wire protocol."""


FRAME_MAGIC = b"RTCF"
FRAME_VERSION = 1

# magic, version, kind, flags, rank, body_len, raw_len.
_FRAME_HEADER = struct.Struct("<4sBBBBII")
FRAME_HEADER_BYTES = 16

KIND_HELLO = 0
KIND_BATCH = 1

_FLAG_ZLIB = 0x01
_FLAG_LZ4 = 0x02

# client_id, epoch (the client's restart count at connect time).
_HELLO_BODY = struct.Struct("<qq")
HELLO_BODY_BYTES = 16

#: Upper bound on one frame body.  A header declaring more than this is
#: treated as stream corruption, not an allocation request — without the cap
#: a single garbage length field would make the server try to buffer 4 GiB.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Bodies below this size skip the compression attempt outright: the codec
#: call costs more than the handful of bytes it could save, and control
#: messages (hello, finished, heartbeat) all land here.
MIN_COMPRESS_BYTES = 512


def lz4_available() -> bool:
    """Whether the optional lz4 codec can be used in this interpreter."""
    return _lz4 is not None


def compress_body(payload: Buffer, compression: str | None) -> Tuple[Buffer, int]:
    """Compress ``payload`` per the configured codec; returns ``(body, flags)``.

    The codec is applied only when it actually shrinks the body — otherwise
    the original payload is returned with ``flags == 0``, so a stream mixes
    compressed and uncompressed frames as the data dictates.
    """
    raw_len = len(payload)
    if compression is None or raw_len < MIN_COMPRESS_BYTES:
        return payload, 0
    if compression == "zlib":
        # Level 1: the transport trades ratio for speed; the win over a NIC
        # comes from halving the bytes, not from squeezing the last percent.
        body: bytes = zlib.compress(bytes(payload), 1)
        flag = _FLAG_ZLIB
    elif compression == "lz4":
        if _lz4 is None:
            raise FrameError(
                "compression='lz4' requested but the lz4 package is not "
                "installed; use 'zlib' or None"
            )
        body = _lz4.compress(bytes(payload))
        flag = _FLAG_LZ4
    else:
        raise FrameError(f"unknown compression codec {compression!r}")
    if len(body) >= raw_len:
        return payload, 0
    return body, flag


def decode_body(body: Buffer, flags: int, raw_len: int) -> bytes:
    """Inflate a frame body back into packed-batch bytes, verifying its size."""
    if flags == 0:
        data = body if isinstance(body, bytes) else bytes(body)
    elif flags == _FLAG_ZLIB:
        try:
            data = zlib.decompress(body)
        except zlib.error as exc:
            raise FrameError(f"zlib frame body failed to inflate: {exc}") from exc
    elif flags == _FLAG_LZ4:
        if _lz4 is None:
            raise FrameError("received an lz4 frame but the lz4 package is not installed")
        try:
            data = _lz4.decompress(bytes(body))
        except Exception as exc:  # noqa: BLE001 - lz4 raises library-specific errors
            raise FrameError(f"lz4 frame body failed to inflate: {exc}") from exc
    else:
        raise FrameError(f"unknown frame flags 0x{flags:02x}")
    if len(data) != raw_len:
        raise FrameError(
            f"frame body decoded to {len(data)} bytes but the header declared {raw_len}"
        )
    return data


def pack_header(kind: int, flags: int, rank: int, body_len: int, raw_len: int) -> bytes:
    """Build one 16-byte frame header."""
    return _FRAME_HEADER.pack(FRAME_MAGIC, FRAME_VERSION, kind, flags, rank, body_len, raw_len)


def pack_header_into(
    buffer: Union[bytearray, memoryview],
    offset: int,
    kind: int,
    flags: int,
    rank: int,
    body_len: int,
    raw_len: int,
) -> None:
    """Write one frame header into ``buffer`` at ``offset`` (zero-copy path)."""
    _FRAME_HEADER.pack_into(
        buffer, offset, FRAME_MAGIC, FRAME_VERSION, kind, flags, rank, body_len, raw_len
    )


def parse_header(header: Buffer) -> Tuple[int, int, int, int, int]:
    """Validate and split a header; returns (kind, flags, rank, body_len, raw_len)."""
    magic, version, kind, flags, rank, body_len, raw_len = _FRAME_HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if version != FRAME_VERSION:
        raise FrameError(f"unsupported frame version {version}")
    if body_len > MAX_FRAME_BYTES or raw_len > MAX_FRAME_BYTES:
        raise FrameError(f"frame body of {max(body_len, raw_len)} bytes exceeds the frame cap")
    return kind, flags, rank, body_len, raw_len


def encode_frame(
    payload: Buffer,
    rank: int = 0,
    kind: int = KIND_BATCH,
    compression: str | None = None,
) -> bytes:
    """Encode one whole frame (header + possibly compressed body) into bytes.

    Convenience for handshakes and tests; the transport's hot path frames
    straight out of its pack scratch instead (see
    ``repro.parallel.tcp_transport``).
    """
    raw_len = len(payload)
    if raw_len > MAX_FRAME_BYTES:
        raise FrameError(f"frame body of {raw_len} bytes exceeds the frame cap")
    body, flags = compress_body(payload, compression)
    return pack_header(kind, flags, rank, len(body), raw_len) + bytes(body)


def decode_frame(frame: Buffer) -> Tuple[int, int, bytes]:
    """Decode one whole frame; returns (kind, rank, body bytes after inflate).

    The inverse of :func:`encode_frame` for exactly one complete frame —
    test and tooling convenience, the server reads header and body in two
    stream reads instead.
    """
    view = memoryview(frame)
    if len(view) < FRAME_HEADER_BYTES:
        raise FrameError(f"frame of {len(view)} bytes is shorter than a header")
    kind, flags, rank, body_len, raw_len = parse_header(view[:FRAME_HEADER_BYTES])
    if len(view) != FRAME_HEADER_BYTES + body_len:
        raise FrameError(
            f"frame of {len(view)} bytes does not match its declared body of {body_len}"
        )
    return kind, rank, decode_body(view[FRAME_HEADER_BYTES:], flags, raw_len)


def encode_hello(client_id: int, epoch: int) -> bytes:
    """Encode the connection handshake frame (always uncompressed)."""
    return encode_frame(_HELLO_BODY.pack(client_id, epoch), kind=KIND_HELLO)


def decode_hello(body: Buffer) -> Tuple[int, int]:
    """Split a hello body into (client_id, epoch)."""
    if len(body) != HELLO_BODY_BYTES:
        raise FrameError(f"hello body of {len(body)} bytes, expected {HELLO_BODY_BYTES}")
    client_id, epoch = _HELLO_BODY.unpack(body)
    return client_id, epoch
