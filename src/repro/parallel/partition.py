"""Block partitioning of 1-D and 2-D index spaces.

The paper's Fortran solver is parallelised with a classical 2-D domain
partitioning; the parallel heat solver in :mod:`repro.solvers.heat2d_parallel`
uses the same decomposition, built from these helpers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple


def partition_extent(total: int, parts: int, index: int) -> Tuple[int, int]:
    """Start (inclusive) and stop (exclusive) of block ``index`` of ``total`` items.

    The first ``total % parts`` blocks receive one extra item, like MPI's usual
    block distribution.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    if not 0 <= index < parts:
        raise ValueError(f"index {index} out of range for {parts} parts")
    base, remainder = divmod(total, parts)
    start = index * base + min(index, remainder)
    stop = start + base + (1 if index < remainder else 0)
    return start, stop


@dataclass(frozen=True)
class BlockPartition1D:
    """1-D block partition of ``total`` items over ``parts`` owners."""

    total: int
    parts: int

    def extent(self, index: int) -> Tuple[int, int]:
        return partition_extent(self.total, self.parts, index)

    def owner(self, item: int) -> int:
        """Owner rank of global item ``item``."""
        if not 0 <= item < self.total:
            raise ValueError(f"item {item} out of range [0, {self.total})")
        for index in range(self.parts):
            start, stop = self.extent(index)
            if start <= item < stop:
                return index
        raise AssertionError("unreachable")  # pragma: no cover

    def sizes(self) -> List[int]:
        return [stop - start for start, stop in (self.extent(i) for i in range(self.parts))]


def best_process_grid(nprocs: int, ny: int, nx: int) -> Tuple[int, int]:
    """Pick a (py, px) process grid minimising the halo surface, like MPI_Dims_create.

    Prefers splits whose aspect ratio matches the domain's.
    """
    best: Tuple[int, int] | None = None
    best_cost = math.inf
    for py in range(1, nprocs + 1):
        if nprocs % py:
            continue
        px = nprocs // py
        if py > ny or px > nx:
            continue
        # Halo cost ~ total boundary length exchanged per step.
        cost = py * nx + px * ny
        if cost < best_cost:
            best_cost = cost
            best = (py, px)
    if best is None:
        raise ValueError(
            f"cannot place {nprocs} processes on a {ny}x{nx} grid (too many processes)"
        )
    return best


@dataclass(frozen=True)
class BlockPartition2D:
    """2-D block partition of an ``ny`` x ``nx`` grid over a ``py`` x ``px`` process grid."""

    ny: int
    nx: int
    py: int
    px: int

    def __post_init__(self) -> None:
        if self.py <= 0 or self.px <= 0:
            raise ValueError("process grid dimensions must be positive")
        if self.py > self.ny or self.px > self.nx:
            raise ValueError("more processes than grid points along one dimension")

    @property
    def nprocs(self) -> int:
        return self.py * self.px

    def coords(self, rank: int) -> Tuple[int, int]:
        """(row, col) coordinates of ``rank`` in the process grid (row-major)."""
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} out of range for {self.nprocs} processes")
        return divmod(rank, self.px)

    def rank_of(self, row: int, col: int) -> int:
        if not (0 <= row < self.py and 0 <= col < self.px):
            raise ValueError(f"coords ({row}, {col}) outside process grid")
        return row * self.px + col

    def local_block(self, rank: int) -> Tuple[slice, slice]:
        """Global index slices (rows, cols) owned by ``rank``."""
        row, col = self.coords(rank)
        y0, y1 = partition_extent(self.ny, self.py, row)
        x0, x1 = partition_extent(self.nx, self.px, col)
        return slice(y0, y1), slice(x0, x1)

    def local_shape(self, rank: int) -> Tuple[int, int]:
        rows, cols = self.local_block(rank)
        return rows.stop - rows.start, cols.stop - cols.start

    def neighbors(self, rank: int) -> dict[str, int | None]:
        """Neighbour ranks in the four cardinal directions (None at the domain edge)."""
        row, col = self.coords(rank)
        return {
            "north": self.rank_of(row - 1, col) if row > 0 else None,
            "south": self.rank_of(row + 1, col) if row < self.py - 1 else None,
            "west": self.rank_of(row, col - 1) if col > 0 else None,
            "east": self.rank_of(row, col + 1) if col < self.px - 1 else None,
        }


def split_grid_2d(ny: int, nx: int, nprocs: int) -> BlockPartition2D:
    """Build a 2-D block partition with an automatically chosen process grid."""
    py, px = best_process_grid(nprocs, ny, nx)
    return BlockPartition2D(ny=ny, nx=nx, py=py, px=px)
