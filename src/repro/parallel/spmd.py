"""SPMD executor: run one callable per rank, each on its own thread.

This is the substitute for ``mpiexec -n <size>``: the callable receives a
:class:`repro.parallel.communicator.ThreadCommunicator` for its rank plus any
user arguments, and the executor returns the per-rank results (ordered by
rank).  Exceptions raised by any rank are collected and re-raised as a single
:class:`SPMDFailure` so that tests can assert on failure behaviour.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.parallel.communicator import CommunicatorGroup, ThreadCommunicator
from repro.utils.exceptions import ReproError


class SPMDFailure(ReproError):
    """Raised when at least one rank of an SPMD execution raised an exception."""

    def __init__(self, errors: Dict[int, BaseException]) -> None:
        self.errors = errors
        summary = "; ".join(f"rank {rank}: {exc!r}" for rank, exc in sorted(errors.items()))
        super().__init__(f"SPMD execution failed on {len(errors)} rank(s): {summary}")


@dataclass
class SPMDResult:
    """Results of an SPMD run: per-rank return values and wall time."""

    values: List[Any]
    elapsed: float = 0.0
    errors: Dict[int, BaseException] = field(default_factory=dict)

    def __getitem__(self, rank: int) -> Any:
        return self.values[rank]

    def __len__(self) -> int:
        return len(self.values)


class SPMDExecutor:
    """Run ``target(comm, *args, **kwargs)`` on ``size`` ranks concurrently."""

    def __init__(self, size: int, timeout: float | None = 120.0) -> None:
        if size <= 0:
            raise ValueError("SPMD size must be positive")
        self.size = int(size)
        self.timeout = timeout

    def run(
        self,
        target: Callable[..., Any],
        *args: Any,
        **kwargs: Any,
    ) -> SPMDResult:
        """Execute ``target`` on every rank and return the per-rank results."""
        group = CommunicatorGroup(self.size, timeout=self.timeout)
        communicators = group.rank_communicators()
        results: List[Any] = [None] * self.size
        errors: Dict[int, BaseException] = {}
        lock = threading.Lock()

        def runner(comm: ThreadCommunicator) -> None:
            try:
                value = target(comm, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - propagated via SPMDFailure
                with lock:
                    errors[comm.rank] = exc
            else:
                results[comm.rank] = value

        import time

        start = time.monotonic()
        threads = [
            threading.Thread(target=runner, args=(comm,), name=f"spmd-rank-{comm.rank}", daemon=True)
            for comm in communicators
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=None if self.timeout is None else self.timeout + 5.0)
        elapsed = time.monotonic() - start

        alive = [t for t in threads if t.is_alive()]
        if alive:
            hung = ", ".join(t.name for t in alive)
            raise SPMDFailure(
                {**errors, -1: TimeoutError(f"ranks still running after timeout: {hung}")}
            )
        if errors:
            raise SPMDFailure(errors)
        return SPMDResult(values=results, elapsed=elapsed)


def run_spmd(
    size: int,
    target: Callable[..., Any],
    *args: Any,
    timeout: Optional[float] = 120.0,
    **kwargs: Any,
) -> List[Any]:
    """Convenience wrapper: run ``target`` on ``size`` ranks, return rank-ordered values."""
    return SPMDExecutor(size, timeout=timeout).run(target, *args, **kwargs).values
