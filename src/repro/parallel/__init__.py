"""Thread-based SPMD/MPI-like substrate and the client/server transport layer.

The paper's framework runs MPI-parallel solver clients and an MPI data-parallel
training server connected through ZeroMQ.  On a single node (no MPI, no
network) this package provides:

* :class:`ThreadCommunicator` — per-rank communicator objects with
  point-to-point and collective operations over in-process queues.
* :class:`SPMDExecutor` — runs one Python callable per rank in a thread pool,
  exactly like ``mpiexec -n`` runs one process per rank.
* block domain partitioning helpers used by the parallel heat solver.
* the :class:`Transport` layer — the ZeroMQ substitute carrying time steps
  from clients to the server's data-aggregator threads, with an in-process
  backend (:class:`MessageRouter`), a multi-process backend streaming packed
  message batches (:class:`MultiprocessTransport`), a shared-memory
  ring-buffer backend for the hot rank channels (:class:`ShmRingTransport`),
  a TCP backend streaming length-prefixed frames to the server's asyncio
  front door (:class:`TcpTransport`), and the packed batch wire format
  (:func:`pack_many` / :func:`unpack_many`).  Backends are selected through
  the :func:`make_transport` registry with a :class:`TransportConfig`.
"""

from repro.parallel.collectives import ring_allreduce, tree_broadcast
from repro.parallel.communicator import CommunicatorGroup, ThreadCommunicator
from repro.parallel.messages import (
    ClientFinished,
    ClientHello,
    Heartbeat,
    Message,
    TimeStepMessage,
    WireFormatError,
    pack_many,
    unpack_many,
)
from repro.parallel.mp_transport import MultiprocessTransport
from repro.parallel.shm_ring import ShmRing, ShmRingTransport
from repro.parallel.partition import (
    BlockPartition1D,
    BlockPartition2D,
    partition_extent,
    split_grid_2d,
)
from repro.parallel.spmd import SPMDExecutor, SPMDFailure
from repro.parallel.tcp_transport import TcpTransport
from repro.parallel.transport import (
    Connection,
    MessageRouter,
    RouterClosed,
    ShmOptions,
    TcpOptions,
    Transport,
    TransportConfig,
    TransportStats,
    available_backends,
    make_transport,
    register_backend,
)

__all__ = [
    "ThreadCommunicator",
    "CommunicatorGroup",
    "ring_allreduce",
    "tree_broadcast",
    "SPMDExecutor",
    "SPMDFailure",
    "BlockPartition1D",
    "BlockPartition2D",
    "partition_extent",
    "split_grid_2d",
    "Message",
    "ClientHello",
    "ClientFinished",
    "Heartbeat",
    "TimeStepMessage",
    "MessageRouter",
    "MultiprocessTransport",
    "ShmRing",
    "ShmRingTransport",
    "TcpTransport",
    "Connection",
    "RouterClosed",
    "Transport",
    "TransportStats",
    "TransportConfig",
    "ShmOptions",
    "TcpOptions",
    "available_backends",
    "register_backend",
    "make_transport",
    "pack_many",
    "unpack_many",
    "WireFormatError",
]
