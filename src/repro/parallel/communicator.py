"""In-process MPI-like communicator backed by thread-safe queues.

A :class:`CommunicatorGroup` owns ``size`` ranks.  Each rank gets its own
:class:`ThreadCommunicator` handle, typically used from a dedicated thread via
:class:`repro.parallel.spmd.SPMDExecutor`.  The interface mirrors the subset
of mpi4py used by the paper's framework: ``send``/``recv``, ``barrier``,
``bcast``, ``gather``, ``scatter``, ``allgather``, ``reduce``, ``allreduce``
and ``sendrecv`` for halo exchanges.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.exceptions import CommunicatorError

Array = np.ndarray

#: Tag used when the caller does not specify one.
DEFAULT_TAG = 0

_REDUCTIONS: Dict[str, Callable[[Array, Array], Array]] = {
    "sum": np.add,
    "prod": np.multiply,
    "max": np.maximum,
    "min": np.minimum,
}


class _Mailbox:
    """Per-rank mailbox of (source, tag) keyed messages."""

    def __init__(self) -> None:
        self._lock = threading.Condition()
        self._messages: Dict[Tuple[int, int], List[Any]] = {}

    def put(self, source: int, tag: int, payload: Any) -> None:
        with self._lock:
            self._messages.setdefault((source, tag), []).append(payload)
            self._lock.notify_all()

    def get(self, source: int, tag: int, timeout: Optional[float]) -> Any:
        deadline = None if timeout is None else (threading.TIMEOUT_MAX if timeout < 0 else timeout)
        with self._lock:
            key = (source, tag)

            def available() -> bool:
                return bool(self._messages.get(key))

            if not self._lock.wait_for(available, timeout=deadline):
                raise CommunicatorError(
                    f"timed out waiting for message from rank {source} with tag {tag}"
                )
            return self._messages[key].pop(0)


class _Barrier:
    """Reusable barrier tolerant to being constructed for n parties."""

    def __init__(self, parties: int) -> None:
        self._barrier = threading.Barrier(parties)

    def wait(self, timeout: Optional[float] = None) -> None:
        try:
            self._barrier.wait(timeout=timeout)
        except threading.BrokenBarrierError as exc:
            raise CommunicatorError("barrier broken (a rank failed or timed out)") from exc


class CommunicatorGroup:
    """Shared state of a communicator spanning ``size`` ranks."""

    def __init__(self, size: int, timeout: float | None = 60.0) -> None:
        if size <= 0:
            raise CommunicatorError(f"communicator size must be positive, got {size}")
        self.size = int(size)
        self.timeout = timeout
        self._mailboxes = [_Mailbox() for _ in range(size)]
        self._barrier = _Barrier(size)

    def rank_communicators(self) -> List["ThreadCommunicator"]:
        """One communicator handle per rank."""
        return [ThreadCommunicator(self, rank) for rank in range(self.size)]


class ThreadCommunicator:
    """Rank-local handle to a :class:`CommunicatorGroup`."""

    def __init__(self, group: CommunicatorGroup, rank: int) -> None:
        if not 0 <= rank < group.size:
            raise CommunicatorError(f"rank {rank} out of range for size {group.size}")
        self.group = group
        self.rank = int(rank)

    # ------------------------------------------------------------------ info
    @property
    def size(self) -> int:
        return self.group.size

    def _check_rank(self, rank: int, label: str) -> None:
        if not 0 <= rank < self.size:
            raise CommunicatorError(f"{label} rank {rank} out of range [0, {self.size})")

    # --------------------------------------------------------- point to point
    def send(self, payload: Any, dest: int, tag: int = DEFAULT_TAG) -> None:
        """Send ``payload`` to rank ``dest`` (non-blocking, buffered)."""
        self._check_rank(dest, "destination")
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        self.group._mailboxes[dest].put(self.rank, tag, payload)

    def recv(self, source: int, tag: int = DEFAULT_TAG, timeout: float | None = None) -> Any:
        """Blocking receive of the next message from ``source`` with ``tag``."""
        self._check_rank(source, "source")
        timeout = self.group.timeout if timeout is None else timeout
        return self.group._mailboxes[self.rank].get(source, tag, timeout)

    def sendrecv(
        self,
        payload: Any,
        dest: int,
        source: int,
        send_tag: int = DEFAULT_TAG,
        recv_tag: int = DEFAULT_TAG,
    ) -> Any:
        """Combined send+recv used for halo exchanges (deadlock-free)."""
        self.send(payload, dest, tag=send_tag)
        return self.recv(source, tag=recv_tag)

    # ------------------------------------------------------------ collectives
    def barrier(self) -> None:
        """Synchronise all ranks of the group."""
        self.group._barrier.wait(timeout=self.group.timeout)

    def bcast(self, payload: Any, root: int = 0) -> Any:
        """Broadcast ``payload`` from ``root`` to every rank."""
        self._check_rank(root, "root")
        if self.rank == root:
            for dest in range(self.size):
                if dest != root:
                    self.send(payload, dest, tag=-1)
            result = payload
        else:
            result = self.recv(root, tag=-1)
        self.barrier()
        return result

    def gather(self, payload: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather one value per rank on ``root`` (ordered by rank)."""
        self._check_rank(root, "root")
        if self.rank == root:
            values: List[Any] = [None] * self.size
            values[root] = payload
            for source in range(self.size):
                if source != root:
                    values[source] = self.recv(source, tag=-2)
            self.barrier()
            return values
        self.send(payload, root, tag=-2)
        self.barrier()
        return None

    def scatter(self, payloads: Optional[Sequence[Any]], root: int = 0) -> Any:
        """Scatter one value per rank from ``root``."""
        self._check_rank(root, "root")
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                raise CommunicatorError(
                    f"scatter on root expects {self.size} values, got "
                    f"{None if payloads is None else len(payloads)}"
                )
            for dest in range(self.size):
                if dest != root:
                    self.send(payloads[dest], dest, tag=-3)
            result = payloads[root]
        else:
            result = self.recv(root, tag=-3)
        self.barrier()
        return result

    def allgather(self, payload: Any) -> List[Any]:
        """Gather one value per rank on every rank."""
        gathered = self.gather(payload, root=0)
        return self.bcast(gathered, root=0)

    def reduce(self, payload: Array, op: str = "sum", root: int = 0) -> Optional[Array]:
        """Element-wise reduction of arrays onto ``root``."""
        if op not in _REDUCTIONS:
            raise CommunicatorError(f"unknown reduction {op!r}; available: {sorted(_REDUCTIONS)}")
        gathered = self.gather(np.asarray(payload), root=root)
        if gathered is None:
            return None
        result = np.array(gathered[0], copy=True)
        for value in gathered[1:]:
            result = _REDUCTIONS[op](result, np.asarray(value))
        return result

    def allreduce(self, payload: Array, op: str = "sum") -> Array:
        """Element-wise reduction whose result is available on every rank."""
        reduced = self.reduce(payload, op=op, root=0)
        return np.asarray(self.bcast(reduced, root=0))

    # --------------------------------------------------------------- utility
    def split_workload(self, total: int) -> range:
        """Contiguous share of ``range(total)`` owned by this rank (block split)."""
        base, remainder = divmod(total, self.size)
        start = self.rank * base + min(self.rank, remainder)
        count = base + (1 if self.rank < remainder else 0)
        return range(start, start + count)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ThreadCommunicator(rank={self.rank}, size={self.size})"
