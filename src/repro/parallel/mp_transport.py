"""Multi-process transport backend carrying packed message batches.

Where :class:`repro.parallel.transport.MessageRouter` hands message objects
between threads by reference, this backend crosses real OS-process
boundaries: clients forked by the launcher serialise their messages with
:func:`repro.parallel.messages.pack_many` and put **one buffer per batch**
on a bounded ``multiprocessing.Queue`` per server rank; the server-side
aggregator drains buffers and deserialises whole batches in
:meth:`MultiprocessTransport.poll_many`.

Statistics live in shared memory (``multiprocessing.RawValue``/``RawArray``
under one shared lock) so pushes performed inside client processes are
visible to the server process that reports them.  The closed flag is a
lock-free shared byte for the same reason.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import threading
from typing import List, Optional

from repro.parallel.messages import Message, plan_many
from repro.parallel.transport import (
    PackedDrainMixin,
    RouterClosed,
    Transport,
    TransportStats,
)
from repro.utils.logging import get_logger

logger = get_logger("parallel.mp_transport")


class _SharedFlag:
    """Lock-free cross-process boolean (a monotonic set-once flag).

    ``mp.Event.is_set`` acquires the event's lock on every call, which is
    measurable on the per-batch push path; a plain shared byte needs no lock
    for a flag that only ever transitions False→True.
    """

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = mp.RawValue("b", 0)

    def set(self) -> None:
        self._value.value = 1

    def is_set(self) -> bool:
        return self._value.value != 0


class _SharedStats:
    """Cross-process traffic counters backing :class:`TransportStats` snapshots.

    All counters are lock-free ``RawValue``/``RawArray`` words updated under
    **one** shared lock — a batch push used to pay three separate
    ``mp.Value`` lock round trips, which showed up as ~20 % of the producer
    hot path.  Snapshot reads are lockless: every counter is monotonic, so a
    torn snapshot is merely slightly stale, never wrong.
    """

    def __init__(self, num_server_ranks: int) -> None:
        self._lock = mp.Lock()
        self._messages = mp.RawValue("q", 0)
        self._bytes = mp.RawValue("q", 0)
        self._dropped = mp.RawValue("q", 0)
        self._kills = mp.RawValue("q", 0)
        self._per_rank = mp.RawArray("q", num_server_ranks)

    def record_batch(self, rank: int, count: int, nbytes: int) -> None:
        with self._lock:
            self._messages.value += count
            self._bytes.value += nbytes
            self._per_rank[rank] += count

    def record_dropped(self, count: int) -> None:
        with self._lock:
            self._dropped.value += count

    def record_unresponsive_kill(self) -> None:
        with self._lock:
            self._kills.value += 1

    def snapshot(self) -> TransportStats:
        per_rank = {rank: int(n) for rank, n in enumerate(self._per_rank) if n}
        return TransportStats(
            messages_routed=int(self._messages.value),
            bytes_routed=int(self._bytes.value),
            per_rank_messages=per_rank,
            dropped_messages=int(self._dropped.value),
            unresponsive_kills=int(self._kills.value),
        )


class MultiprocessTransport(PackedDrainMixin, Transport):
    """Transport whose rank channels are ``multiprocessing`` queues.

    Parameters
    ----------
    num_server_ranks:
        Number of server ranks (aggregator threads in the server process).
    max_queue_size:
        Bound of each rank queue **in batches**; with client-side batching a
        slot holds up to ``Connection.batch_size`` messages.  Pushes raise
        ``queue.Full`` after ``timeout`` like the in-process backend.

    Notes
    -----
    Only the server process may poll.  Deserialised messages that exceed a
    ``poll_many`` budget are held in a per-rank leftover deque (each rank has
    exactly one aggregator thread, so the deque needs no lock).
    """

    #: Messages returned by :meth:`poll_many` own their payload memory: the
    #: payload block of every packed batch is adopted with one copy at
    #: deserialisation time, so downstream consumers may retain payload views
    #: without pinning transport internals (see ``unpack_many``).
    payloads_owned = True

    def __init__(self, num_server_ranks: int, max_queue_size: int = 10_000) -> None:
        if num_server_ranks <= 0:
            raise ValueError("num_server_ranks must be positive")
        self.num_server_ranks = int(num_server_ranks)
        self.max_queue_size = int(max_queue_size)
        self._queues = [mp.Queue(maxsize=max_queue_size) for _ in range(num_server_ranks)]
        # Per-rank overflow of deserialised items: plain messages and/or
        # columnar chunks, whichever shape the producing poll used.
        self._init_leftovers(num_server_ranks)
        self._closed = _SharedFlag()
        self._shared = _SharedStats(num_server_ranks)
        # Reusable pack scratch, one per pushing thread (thread-local rather
        # than per-transport: thread-mode callers may push concurrently).  The
        # queue feeder pickles asynchronously, so the scratch contents are
        # snapshot into an immutable bytes before the put — still one copy
        # fewer than building the buffer out of intermediate blocks.
        self._scratch = threading.local()

    # ----------------------------------------------------------------- client
    def push(self, rank: int, message: Message, timeout: float | None = None) -> None:
        self.push_many(rank, [message], timeout=timeout)

    def _pack_batch(self, messages: List[Message]) -> bytes:
        """Pack ``messages`` through the thread's reusable scratch buffer."""
        plan = plan_many(messages)
        scratch = getattr(self._scratch, "buf", None)
        if scratch is None or len(scratch) < plan.nbytes:
            scratch = bytearray(max(plan.nbytes, 64 * 1024))
            self._scratch.buf = scratch
        plan.write_into(scratch, 0)
        return bytes(memoryview(scratch)[: plan.nbytes])

    def push_many(self, rank: int, messages: List[Message], timeout: float | None = None) -> None:
        """Serialise ``messages`` into one packed buffer and enqueue it."""
        self._check_rank(rank)
        if not messages:
            return
        if self._closed.is_set():
            self._shared.record_dropped(len(messages))
            raise RouterClosed("transport is closed")
        buffer = self._pack_batch(messages)
        try:
            self._queues[rank].put(buffer, timeout=timeout)
        except queue.Full:
            self._shared.record_dropped(len(messages))
            raise
        self._shared.record_batch(rank, len(messages), len(buffer))

    def _record_dropped(self, count: int) -> None:
        if count:
            self._shared.record_dropped(count)

    def record_unresponsive_kill(self) -> None:
        """Count one launcher-side kill of an unresponsive client process."""
        self._shared.record_unresponsive_kill()

    # ----------------------------------------------------------------- server
    # The budgeted drain (poll_many/poll_batches, leftover bookkeeping) comes
    # from PackedDrainMixin; only the channel pop is queue-specific.
    def _get_batch(self, rank: int, timeout: float | None,
                   columnar: bool = False) -> Optional[list]:
        """Pop and deserialise one packed batch; ``None`` when nothing queued.

        A client process killed mid-put can tear the queue's byte stream
        (multiprocessing documents the queue as corruptible then); a buffer
        that fails to transfer or parse is counted as one dropped batch and
        skipped instead of killing the aggregator thread that polls here.
        """
        try:
            if timeout is None:
                buffer = self._queues[rank].get_nowait()
            else:
                buffer = self._queues[rank].get(timeout=timeout)
        except queue.Empty:
            return None
        except Exception:  # noqa: BLE001 - torn pipe stream fails to unpickle
            logger.warning("rank %d: discarding corrupt transport buffer", rank, exc_info=True)
            self._shared.record_dropped(1)
            return []
        return self._decode_packed(buffer, rank, columnar)

    def pending(self, rank: int) -> int:
        """Deserialised leftovers plus queued batches (packed batches count
        once, leftover columnar chunks by their sample count)."""
        self._check_rank(rank)
        return self._leftover_count(rank) + self._queues[rank].qsize()

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        self._closed.set()

    def shutdown(self) -> None:
        """Close, drain, and detach the queues' feeder machinery.

        Without the drain + ``cancel_join_thread`` a queue holding undelivered
        buffers would block interpreter exit on its feeder thread.
        """
        self.close()
        for rank, q in enumerate(self._queues):
            try:
                while True:
                    q.get_nowait()
            except (queue.Empty, OSError, ValueError):
                pass
            q.cancel_join_thread()
            q.close()
            self._leftover[rank].clear()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    @property
    def stats(self) -> TransportStats:
        return self._shared.snapshot()
