"""Message types exchanged between clients and the training server.

The real framework serialises these over ZeroMQ; here they are plain dataclass
payloads carried by :class:`repro.parallel.transport.MessageRouter`.  The
wire-format concerns the paper cares about are preserved: each time-step
message carries the client (simulation) id, the time-step index, the input
parameters and the float32 field, so the server can deduplicate after a client
restart and build training samples without any additional lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

Array = np.ndarray


@dataclass
class Message:
    """Base class of every client→server message."""

    client_id: int

    def nbytes(self) -> int:
        """Approximate payload size in bytes (used by throughput accounting)."""
        return 0


@dataclass
class ClientHello(Message):
    """First message of a client: announces itself and its metadata."""

    parameters: Tuple[float, ...] = ()
    num_time_steps: int = 0
    field_shape: Tuple[int, ...] = ()
    restart_count: int = 0

    def nbytes(self) -> int:
        return 8 * len(self.parameters) + 24


@dataclass
class TimeStepMessage(Message):
    """One simulation time step streamed to a server rank.

    Attributes
    ----------
    client_id:
        Identifier of the simulation instance (ensemble member).
    time_step:
        Index ``t`` of the field in the simulation's time series.
    time_value:
        Physical time corresponding to ``time_step``.
    parameters:
        The simulation input vector ``X`` (initial + boundary temperatures).
    payload:
        The flattened field ``u_t_X`` in float32 (already gathered on the
        client's rank 0 and down-converted, as in the paper).
    sequence_number:
        Per-client monotonically increasing counter used by the server's
        message log for deduplication after client restarts.
    """

    time_step: int = 0
    time_value: float = 0.0
    parameters: Tuple[float, ...] = ()
    payload: Array = field(default_factory=lambda: np.zeros(0, dtype=np.float32))
    sequence_number: int = 0

    def nbytes(self) -> int:
        return int(self.payload.nbytes) + 8 * len(self.parameters) + 32

    def sample_input(self) -> Array:
        """Training input vector ``(X, t)`` as float32."""
        return np.asarray([*self.parameters, self.time_value], dtype=np.float32)

    def key(self) -> Tuple[int, int]:
        """Deduplication key ``(client_id, time_step)``."""
        return (self.client_id, self.time_step)


@dataclass
class ClientFinished(Message):
    """Last message of a client: no more data will be sent."""

    total_sent: int = 0

    def nbytes(self) -> int:
        return 16


@dataclass
class Heartbeat(Message):
    """Periodic liveness signal used by the server's fault detector."""

    timestamp: float = 0.0
    progress: float = 0.0

    def nbytes(self) -> int:
        return 24


@dataclass
class ServerCommand:
    """Server→launcher command (e.g. request to start or kill a client)."""

    action: str
    client_id: Optional[int] = None
    reason: str = ""
