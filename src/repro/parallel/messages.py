"""Message types exchanged between clients and the training server.

The real framework serialises these over ZeroMQ; here they are plain dataclass
payloads carried by a :class:`repro.parallel.transport.Transport` backend.  The
wire-format concerns the paper cares about are preserved: each time-step
message carries the client (simulation) id, the time-step index, the input
parameters and the float32 field, so the server can deduplicate after a client
restart and build training samples without any additional lookup.

The module also defines the packed batch wire format used by the
multi-process transport backend (:func:`pack_many` / :func:`unpack_many`).
One batch serialises to **one** contiguous buffer::

    +--------------+------------------+-----+------------------+------+
    | batch header | message header 0 | ... | f64 params block | f32  |
    | (32 bytes)   | (per-type size)  |     | (all messages)   | block|
    +--------------+------------------+-----+------------------+------+

instead of one pickle per message: the per-message headers carry only scalars
and lengths, while every parameter tuple and every field payload is
concatenated into two contiguous numeric blocks at the end of the buffer.
``unpack_many`` reads both blocks with a single zero-copy ``np.frombuffer``
each and hands out array *views* into the batch buffer (or, with
``copy_payloads=True``, views into a single privately owned copy of the
payload block that downstream consumers may adopt without copying again).

Packing is zero-copy on the write side as well: :func:`plan_many` computes
the exact packed size without producing bytes, and :func:`pack_many_into`
writes the batch directly into a caller-provided buffer — the shm ring
transport packs straight into the acquired ring slot, the mp backend into a
reusable scratch buffer.  :func:`pack_many` is the standalone-buffer
convenience wrapper over the same writer.

The columnar drain goes one step further than :func:`unpack_many`: since the
wire layout already *is* columnar (one f64 params block, one f32 payload
block, fixed-stride step headers), :func:`unpack_columns` turns a
homogeneous packed batch into a single
:class:`~repro.buffers.columns.ColumnBatch` — a structured ``np.frombuffer``
parses every header at once and the payload block is copied exactly once
into the targets matrix the batch owns — without materialising any
per-message Python object.  :func:`columnize` provides the same chunk shape
for transports that carry message objects by reference, and
:func:`column_batch_to_messages` converts back on the rare non-columnar
leftover path.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.buffers.columns import ColumnBatch
from repro.utils.exceptions import ReproError

Array = np.ndarray


@dataclass
class Message:
    """Base class of every client→server message."""

    client_id: int

    def nbytes(self) -> int:
        """Approximate payload size in bytes (used by throughput accounting)."""
        return 0


@dataclass
class ClientHello(Message):
    """First message of a client: announces itself and its metadata."""

    parameters: Tuple[float, ...] = ()
    num_time_steps: int = 0
    field_shape: Tuple[int, ...] = ()
    restart_count: int = 0

    def nbytes(self) -> int:
        return 8 * len(self.parameters) + 24


@dataclass
class TimeStepMessage(Message):
    """One simulation time step streamed to a server rank.

    Attributes
    ----------
    client_id:
        Identifier of the simulation instance (ensemble member).
    time_step:
        Index ``t`` of the field in the simulation's time series.
    time_value:
        Physical time corresponding to ``time_step``.
    parameters:
        The simulation input vector ``X`` (initial + boundary temperatures).
    payload:
        The flattened field ``u_t_X`` in float32 (already gathered on the
        client's rank 0 and down-converted, as in the paper).
    sequence_number:
        Per-client monotonically increasing counter used by the server's
        message log for deduplication after client restarts.
    """

    time_step: int = 0
    time_value: float = 0.0
    parameters: Tuple[float, ...] = ()
    payload: Array = field(default_factory=lambda: np.zeros(0, dtype=np.float32))
    sequence_number: int = 0

    def nbytes(self) -> int:
        return int(self.payload.nbytes) + 8 * len(self.parameters) + 32

    def __eq__(self, other: object) -> bool:
        """Field-wise equality with exact (dtype + bytes) payload comparison."""
        if not isinstance(other, TimeStepMessage):
            return NotImplemented
        return (
            self.client_id == other.client_id
            and self.time_step == other.time_step
            and self.time_value == other.time_value
            and self.parameters == other.parameters
            and self.sequence_number == other.sequence_number
            and self.payload.dtype == other.payload.dtype
            and np.array_equal(self.payload, other.payload)
        )

    def sample_input(self) -> Array:
        """Training input vector ``(X, t)`` as float32."""
        return np.asarray([*self.parameters, self.time_value], dtype=np.float32)

    def key(self) -> Tuple[int, int]:
        """Deduplication key ``(client_id, time_step)``."""
        return (self.client_id, self.time_step)


@dataclass
class ClientFinished(Message):
    """Last message of a client: no more data will be sent."""

    total_sent: int = 0

    def nbytes(self) -> int:
        return 16


@dataclass
class Heartbeat(Message):
    """Periodic liveness signal used by the server's fault detector."""

    timestamp: float = 0.0
    progress: float = 0.0

    def nbytes(self) -> int:
        return 24


@dataclass
class ServerCommand:
    """Server→launcher command (e.g. request to start or kill a client)."""

    action: str
    client_id: Optional[int] = None
    reason: str = ""


# --------------------------------------------------------------------------
# Packed batch wire format.
# --------------------------------------------------------------------------

class WireFormatError(ReproError):
    """Raised when a buffer does not parse as a packed message batch."""


WIRE_MAGIC = b"RPRO"
WIRE_VERSION = 1

#: magic, version, flags, message count, header-region bytes (incl. padding),
#: total f64 parameters, total f32 payload elements.
_BATCH_HEADER = struct.Struct("<4sHHIIQQ")

_T_HELLO = 0
_T_STEP = 1
_T_FINISHED = 2
_T_HEARTBEAT = 3

#: type, client_id, n_params, num_time_steps, restart_count, ndim
#: (followed by ``ndim`` little-endian int64 shape extents).
_HELLO_HEADER = struct.Struct("<BqIqqB")
_SHAPE_DIM = struct.Struct("<q")
#: type, client_id, time_step, time_value, sequence_number, n_params, payload_len
_STEP_HEADER = struct.Struct("<BqqdqIQ")
#: type, client_id, total_sent
_FINISHED_HEADER = struct.Struct("<Bqq")
#: type, client_id, timestamp, progress
_HEARTBEAT_HEADER = struct.Struct("<Bqdd")

# Declared wire sizes of the packed headers above.  These are the numbers a
# reader on the other side of the ring hard-codes its offsets against;
# ``tools/reprolint`` (wire-layout rule) cross-checks each one against
# ``calcsize`` of its struct, so widening a field without bumping the declared
# size is a lint error instead of a torn batch.
BATCH_HEADER_BYTES = 32
HELLO_HEADER_BYTES = 30
STEP_HEADER_BYTES = 45
FINISHED_HEADER_BYTES = 17
HEARTBEAT_HEADER_BYTES = 25


class BatchPlan:
    """Precomputed layout of one packed batch (see :func:`plan_many`).

    Planning and writing are split so callers can learn the exact packed
    size *before* committing an output buffer — the shm ring transport picks
    (and, if needed, splits toward) a ring slot from ``nbytes`` alone, then
    packs straight into the slot's memoryview with :meth:`write_into`.
    """

    __slots__ = ("count", "header_bytes", "params", "payloads", "total_payload", "nbytes")

    def __init__(self, count: int, header_bytes: bytes, params: List[float],
        payloads: List[Array], total_payload: int) -> None:
        self.count = count
        self.header_bytes = header_bytes  # per-type headers, padded to 8 B
        self.params = params
        self.payloads = payloads
        self.total_payload = total_payload
        self.nbytes = (_BATCH_HEADER.size + len(header_bytes) + 8 * len(params) + 4 * total_payload)

    def write_into(self, buf, offset: int = 0) -> int:
        """Write the packed batch at ``buf[offset:]``; returns bytes written.

        ``buf`` is any writable buffer (bytearray, shared-memory memoryview).
        The caller is responsible for bounds — :func:`pack_many_into` is the
        checked public entry point.
        """
        _BATCH_HEADER.pack_into(
            buf, offset,
            WIRE_MAGIC, WIRE_VERSION, 0,
            self.count, len(self.header_bytes),
            len(self.params), self.total_payload,
        )
        cursor = offset + _BATCH_HEADER.size
        end = cursor + len(self.header_bytes)
        buf[cursor:end] = self.header_bytes
        if self.params:
            struct.pack_into(f"<{len(self.params)}d", buf, end, *self.params)
            end += 8 * len(self.params)
        if self.total_payload:
            payload_out = np.frombuffer(buf, dtype=np.float32,
                                        count=self.total_payload, offset=end)
            if len(self.payloads) == 1:
                payload_out[:] = self.payloads[0]
            else:
                np.concatenate(self.payloads, out=payload_out)
        return self.nbytes


def plan_many(messages: Sequence[Message]) -> BatchPlan:
    """Lay out a batch for packing: headers now, numeric blocks on write.

    All parameter tuples are concatenated into a single float64 block and all
    time-step payloads into a single float32 block, so a batch costs one
    output buffer regardless of its length.  Payloads are converted to flat
    float32 (the client-side preprocessing contract) if they are not already.

    """
    headers: List[bytes] = []
    params_flat: List[float] = []
    payload_parts: List[Array] = []
    total_payload = 0

    step_pack = _STEP_HEADER.pack
    for message in messages:
        kind = type(message)
        if kind is TimeStepMessage:
            payload = message.payload
            if payload.dtype != np.float32 or payload.ndim != 1 or not payload.flags.c_contiguous:
                payload = np.ascontiguousarray(payload, dtype=np.float32).ravel()
            headers.append(
                step_pack(
                    _T_STEP,
                    message.client_id,
                    message.time_step,
                    message.time_value,
                    message.sequence_number,
                    len(message.parameters),
                    payload.size,
                )
            )
            params_flat.extend(message.parameters)
            payload_parts.append(payload)
            total_payload += payload.size
        elif kind is ClientHello:
            headers.append(
                _HELLO_HEADER.pack(
                    _T_HELLO,
                    message.client_id,
                    len(message.parameters),
                    message.num_time_steps,
                    message.restart_count,
                    len(message.field_shape),
                )
                + b"".join(_SHAPE_DIM.pack(dim) for dim in message.field_shape)
            )
            params_flat.extend(message.parameters)
        elif kind is ClientFinished:
            headers.append(_FINISHED_HEADER.pack(_T_FINISHED, message.client_id,
                    message.total_sent))
        elif kind is Heartbeat:
            headers.append(_HEARTBEAT_HEADER.pack(_T_HEARTBEAT, message.client_id,
                    message.timestamp, message.progress))
        else:
            raise WireFormatError(f"cannot pack message of type {kind.__name__}")

    header_bytes = b"".join(headers)
    padding = (-len(header_bytes)) % 8  # align the numeric blocks for frombuffer
    if padding:
        header_bytes += b"\x00" * padding
    return BatchPlan(len(messages), header_bytes, params_flat, payload_parts, total_payload)


def pack_many_into(messages: Sequence[Message], buf, offset: int = 0) -> int:
    """Serialise a batch directly into ``buf[offset:]``; returns bytes written.

    The zero-copy counterpart of :func:`pack_many`: the batch header, the
    per-type message headers and both numeric blocks are written straight
    into the caller-provided buffer (a ring-slot memoryview, a reusable
    scratch bytearray), skipping the intermediate ``bytes`` object entirely.
    The written region is byte-for-byte identical to ``pack_many(messages)``.

    Raises :class:`ValueError` when the buffer is too small — callers size
    buffers from :func:`plan_many` (``plan.nbytes``) to avoid the double
    planning pass.
    """
    plan = plan_many(messages)
    room = len(buf) - offset
    if offset < 0 or room < plan.nbytes:
        raise ValueError(
            f"packed batch needs {plan.nbytes} bytes, buffer has {max(room, 0)} "
            f"(offset {offset})"
        )
    return plan.write_into(buf, offset)


def pack_many(messages: Sequence[Message]) -> bytes:
    """Serialise a batch of messages into one contiguous buffer.

    Delegates to the same planner/writer as :func:`pack_many_into`; kept as
    the convenience entry point for callers that want a standalone immutable
    buffer (tests, the control-queue path).
    """
    plan = plan_many(messages)
    out = bytearray(plan.nbytes)
    plan.write_into(out, 0)
    return bytes(out)


def unpack_many(buffer, copy_payloads: bool = False) -> List[Message]:
    """Deserialise a buffer produced by :func:`pack_many` / `pack_many_into`.

    ``buffer`` is any bytes-like object, including a *borrowed* memoryview of
    a shared-memory ring slot.  The two numeric blocks are read with one
    zero-copy ``np.frombuffer`` each; every ``TimeStepMessage.payload`` is a
    float32 view into the payload block, so unpacking performs no per-message
    payload copies.

    Ownership contract: with ``copy_payloads=False`` the payload views
    *borrow* the caller's buffer — they are valid only for as long as the
    caller keeps the buffer alive and unmodified (a ring slot is reused as
    soon as the read cursor advances).  With ``copy_payloads=True`` the
    payload block is copied **once** into a freshly allocated array the
    returned messages collectively own; the buffer can then be released or
    overwritten immediately, and downstream consumers (the aggregator, the
    training buffers) may adopt the payload views without copying again.
    """
    if len(buffer) < _BATCH_HEADER.size:
        raise WireFormatError(f"buffer too short for batch header ({len(buffer)} bytes)")
    magic, version, _flags, count, header_nbytes, total_params, total_payload = (
        _BATCH_HEADER.unpack_from(buffer, 0)
    )
    if magic != WIRE_MAGIC:
        raise WireFormatError(f"bad magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireFormatError(f"unsupported wire version {version}")
    params_offset = _BATCH_HEADER.size + header_nbytes
    payload_offset = params_offset + 8 * total_params
    expected = payload_offset + 4 * total_payload
    if len(buffer) < expected:
        raise WireFormatError(
            f"truncated batch: {len(buffer)} bytes, header promises {expected}"
        )
    # One list conversion for the whole batch: tuple slicing off a plain
    # Python list is far cheaper than one ndarray slice + tolist per message.
    params_list = np.frombuffer(buffer, dtype=np.float64, count=total_params,
                                offset=params_offset).tolist()
    payload_block = np.frombuffer(buffer, dtype=np.float32, count=total_payload,
        offset=payload_offset)
    if copy_payloads:
        payload_block = payload_block.copy()  # one memcpy adopts every payload

    messages: List[Message] = []
    append = messages.append
    make_step = TimeStepMessage
    step_size = _STEP_HEADER.size
    params_cursor = 0
    payload_cursor = 0

    # Fast path: a homogeneous run of time-step headers (every hot-path ring
    # batch) parses with one ``iter_unpack`` sweep instead of per-message
    # ``unpack_from`` calls.  Verification is sequential, so the first
    # non-step message in a size-colliding mixed batch lands its true type
    # byte on a tuple boundary and is caught by the type check below.
    if count and header_nbytes == (count * step_size + 7) // 8 * 8:
        region = memoryview(buffer)[_BATCH_HEADER.size:
                                    _BATCH_HEADER.size + count * step_size]
        for tup in _STEP_HEADER.iter_unpack(region):
            if tup[0] != _T_STEP:
                break  # mixed batch after all: redo with the generic loop
            (_, client_id, time_step, time_value, sequence_number, n_params, payload_len) = tup
            parameters = tuple(params_list[params_cursor:params_cursor + n_params])
            params_cursor += n_params
            payload = payload_block[payload_cursor:payload_cursor + payload_len]
            payload_cursor += payload_len
            append(make_step(client_id, time_step, time_value, parameters,
                    payload, sequence_number))
        else:
            return messages
        messages.clear()
        params_cursor = 0
        payload_cursor = 0

    offset = _BATCH_HEADER.size
    step_unpack = _STEP_HEADER.unpack_from
    for _ in range(count):
        kind = buffer[offset]
        if kind == _T_STEP:
            (_, client_id, time_step, time_value, sequence_number,
                n_params, payload_len) = step_unpack(buffer, offset)
            offset += step_size
            parameters = tuple(params_list[params_cursor:params_cursor + n_params])
            params_cursor += n_params
            payload = payload_block[payload_cursor:payload_cursor + payload_len]
            payload_cursor += payload_len
            # Positional construction: keyword binding costs ~2x on this, the
            # only per-message allocation of the hot unpack loop.  Field
            # order: client_id, time_step, time_value, parameters, payload,
            # sequence_number.
            append(make_step(client_id, time_step, time_value, parameters,
                    payload, sequence_number))
        elif kind == _T_HELLO:
            (_, client_id, n_params, num_time_steps, restart_count, ndim) = (
                _HELLO_HEADER.unpack_from(buffer, offset)
            )
            offset += _HELLO_HEADER.size
            shape = tuple(
                _SHAPE_DIM.unpack_from(buffer, offset + index * _SHAPE_DIM.size)[0]
                for index in range(ndim)
            )
            offset += ndim * _SHAPE_DIM.size
            parameters = tuple(params_list[params_cursor:params_cursor + n_params])
            params_cursor += n_params
            messages.append(
                ClientHello(
                    client_id=client_id,
                    parameters=parameters,
                    num_time_steps=num_time_steps,
                    field_shape=shape,
                    restart_count=restart_count,
                )
            )
        elif kind == _T_FINISHED:
            _, client_id, total_sent = _FINISHED_HEADER.unpack_from(buffer, offset)
            offset += _FINISHED_HEADER.size
            messages.append(ClientFinished(client_id=client_id, total_sent=total_sent))
        elif kind == _T_HEARTBEAT:
            _, client_id, timestamp, progress = _HEARTBEAT_HEADER.unpack_from(buffer, offset)
            offset += _HEARTBEAT_HEADER.size
            messages.append(Heartbeat(client_id=client_id, timestamp=timestamp, progress=progress))
        else:
            raise WireFormatError(f"unknown message type code {kind} at offset {offset}")
    return messages


# --------------------------------------------------------------------------
# Columnar decode: packed batch -> ColumnBatch, no per-message objects.
# --------------------------------------------------------------------------

#: Vectorized view of a homogeneous run of step headers: one structured
#: ``np.frombuffer`` parses every header of a batch at once (the columnar
#: drain path).  Field offsets mirror ``_STEP_HEADER`` (``<BqqdqIQ``) byte
#: for byte, and the itemsize is pinned to ``STEP_HEADER_BYTES`` so the
#: wire-layout lint's calcsize cross-check on the struct keeps guarding the
#: layout this dtype shadows.
_STEP_HEADER_DTYPE = np.dtype(
    {
        "names": [
            "type",
            "client_id",
            "time_step",
            "time_value",
            "sequence_number",
            "n_params",
            "payload_len",
        ],
        "formats": ["u1", "<i8", "<i8", "<f8", "<i8", "<u4", "<u8"],
        "offsets": [0, 1, 9, 17, 25, 33, 37],
        "itemsize": STEP_HEADER_BYTES,
    }
)


def unpack_columns(buffer) -> Optional[ColumnBatch]:
    """Deserialise a packed batch straight into one :class:`ColumnBatch`.

    The columnar fast path of the drain: a batch that is a homogeneous run
    of time-step messages with uniform parameter and payload lengths parses
    with **no per-message loop** — one structured ``np.frombuffer`` reads
    every header, the f64 params block reshapes into the inputs matrix (the
    time value lands in the last column, completing the ``(X, t)`` training
    input per row), and the f32 payload block is copied once into the
    targets matrix the returned batch owns.  That copy is the adoption copy
    of ``unpack_many(copy_payloads=True)``: the caller's buffer (a ring
    slot about to be recycled) can be released the moment this returns.

    Returns ``None`` for mixed or ragged batches — callers fall back to
    :func:`unpack_many`.  Raises :class:`WireFormatError` for buffers that
    do not parse as a packed batch at all, exactly like :func:`unpack_many`.
    """
    if len(buffer) < _BATCH_HEADER.size:
        raise WireFormatError(f"buffer too short for batch header ({len(buffer)} bytes)")
    magic, version, _flags, count, header_nbytes, total_params, total_payload = (
        _BATCH_HEADER.unpack_from(buffer, 0)
    )
    if magic != WIRE_MAGIC:
        raise WireFormatError(f"bad magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireFormatError(f"unsupported wire version {version}")
    params_offset = _BATCH_HEADER.size + header_nbytes
    payload_offset = params_offset + 8 * total_params
    expected = payload_offset + 4 * total_payload
    if len(buffer) < expected:
        raise WireFormatError(
            f"truncated batch: {len(buffer)} bytes, header promises {expected}"
        )
    if not count or header_nbytes != (count * _STEP_HEADER.size + 7) // 8 * 8:
        return None
    headers = np.frombuffer(buffer, dtype=_STEP_HEADER_DTYPE, count=count,
                            offset=_BATCH_HEADER.size)
    if count <= 128:
        # Small-batch fast path: ``tolist`` + ``list.count`` run ~10x faster
        # than three ``(field == x).all()`` reductions at the paper's batch
        # size of 10, where numpy dispatch overhead dominates the check.
        kinds = headers["type"].tolist()
        if kinds.count(_T_STEP) != count:
            return None  # mixed batch whose header region size merely collides
        n_params_list = headers["n_params"].tolist()
        width = n_params_list[0]
        payload_len_list = headers["payload_len"].tolist()
        field_len = payload_len_list[0]
        if (n_params_list.count(width) != count
                or payload_len_list.count(field_len) != count):
            return None  # ragged run: per-message fallback handles it
    else:
        if not (headers["type"] == _T_STEP).all():
            return None  # mixed batch whose header region size merely collides
        n_params = headers["n_params"]
        width = int(n_params[0])
        payload_len = headers["payload_len"]
        field_len = int(payload_len[0])
        if not ((n_params == width).all() and (payload_len == field_len).all()):
            return None  # ragged run: per-message fallback handles it
    if total_params != count * width or total_payload != count * field_len:
        return None
    inputs = np.empty((count, width + 1), dtype=np.float64)
    if width:
        inputs[:, :width] = np.frombuffer(
            buffer, dtype=np.float64, count=total_params, offset=params_offset
        ).reshape(count, width)
    inputs[:, width] = headers["time_value"]
    targets = np.empty((count, field_len), dtype=np.float32)
    if field_len:
        # The one adoption copy: payload block -> owned targets matrix.
        targets[:] = np.frombuffer(
            buffer, dtype=np.float32, count=total_payload, offset=payload_offset
        ).reshape(count, field_len)
    return ColumnBatch(
        inputs=inputs,
        targets=targets,
        source_ids=headers["client_id"].astype(np.int64),
        time_steps=headers["time_step"].astype(np.int64),
        sequence_numbers=headers["sequence_number"].astype(np.int64),
    )


def _columnize_run(run: List[TimeStepMessage]) -> list:
    """One consecutive step run -> ``[ColumnBatch]``, or the run itself if ragged."""
    first = run[0]
    width = len(first.parameters)
    field_len = first.payload.size
    for message in run:
        payload = message.payload
        if (
            len(message.parameters) != width
            or payload.dtype != np.float32
            or payload.ndim != 1
            or payload.size != field_len
        ):
            return run
    count = len(run)
    inputs = np.empty((count, width + 1), dtype=np.float64)
    if width:
        inputs[:, :width] = [message.parameters for message in run]
    inputs[:, width] = [message.time_value for message in run]
    targets = np.empty((count, field_len), dtype=np.float32)
    for index, message in enumerate(run):
        targets[index] = message.payload
    return [
        ColumnBatch(
            inputs=inputs,
            targets=targets,
            source_ids=np.fromiter((m.client_id for m in run), np.int64, count),
            time_steps=np.fromiter((m.time_step for m in run), np.int64, count),
            sequence_numbers=np.fromiter(
                (m.sequence_number for m in run), np.int64, count
            ),
        )
    ]


def columnize(messages: Sequence[Message]) -> list:
    """Group consecutive time-step runs into :class:`ColumnBatch` chunks.

    The object-transport counterpart of :func:`unpack_columns`: backends
    that carry message objects by reference (the in-process router) deliver
    drained chunks in the same columnar shape as the wire transports, so the
    aggregator has a single hot-path representation.  Control messages pass
    through unchanged, in order; ragged runs (mixed parameter or payload
    lengths, non-float32 payloads) stay as plain messages.
    """
    out: list = []
    run: List[TimeStepMessage] = []
    for message in messages:
        if type(message) is TimeStepMessage:
            run.append(message)
            continue
        if run:
            out.extend(_columnize_run(run))
            run = []
        out.append(message)
    if run:
        out.extend(_columnize_run(run))
    return out


def column_batch_to_messages(batch: ColumnBatch) -> List[TimeStepMessage]:
    """Explode a :class:`ColumnBatch` back into per-message objects.

    Only used off the hot path — a columnar leftover re-queued for a caller
    that polls plain messages.  Row views keep the batch's blocks alive; the
    inputs matrix carries ``[X..., t]`` per row, so the parameter tuple is
    everything but the last column.
    """
    ids = batch.source_ids.tolist()
    steps = batch.time_steps.tolist()
    if batch.sequence_numbers is not None:
        seqs = batch.sequence_numbers.tolist()
    else:
        seqs = [0] * len(ids)
    inputs = batch.inputs
    targets = batch.targets
    return [
        TimeStepMessage(
            ids[row],
            steps[row],
            float(inputs[row][-1]),
            tuple(inputs[row][:-1].tolist()),
            np.asarray(targets[row], dtype=np.float32),
            seqs[row],
        )
        for row in range(len(ids))
    ]
