"""Message types exchanged between clients and the training server.

The real framework serialises these over ZeroMQ; here they are plain dataclass
payloads carried by a :class:`repro.parallel.transport.Transport` backend.  The
wire-format concerns the paper cares about are preserved: each time-step
message carries the client (simulation) id, the time-step index, the input
parameters and the float32 field, so the server can deduplicate after a client
restart and build training samples without any additional lookup.

The module also defines the packed batch wire format used by the
multi-process transport backend (:func:`pack_many` / :func:`unpack_many`).
One batch serialises to **one** contiguous buffer::

    +--------------+------------------+-----+------------------+------+
    | batch header | message header 0 | ... | f64 params block | f32  |
    | (32 bytes)   | (per-type size)  |     | (all messages)   | block|
    +--------------+------------------+-----+------------------+------+

instead of one pickle per message: the per-message headers carry only scalars
and lengths, while every parameter tuple and every field payload is
concatenated into two contiguous numeric blocks at the end of the buffer.
``unpack_many`` reads both blocks with a single zero-copy ``np.frombuffer``
each and hands out array *views* into the batch buffer (or, with
``copy_payloads=True``, views into a single privately owned copy of the
payload block that downstream consumers may adopt without copying again).

Packing is zero-copy on the write side as well: :func:`plan_many` computes
the exact packed size without producing bytes, and :func:`pack_many_into`
writes the batch directly into a caller-provided buffer — the shm ring
transport packs straight into the acquired ring slot, the mp backend into a
reusable scratch buffer.  :func:`pack_many` is the standalone-buffer
convenience wrapper over the same writer.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.exceptions import ReproError

Array = np.ndarray


@dataclass
class Message:
    """Base class of every client→server message."""

    client_id: int

    def nbytes(self) -> int:
        """Approximate payload size in bytes (used by throughput accounting)."""
        return 0


@dataclass
class ClientHello(Message):
    """First message of a client: announces itself and its metadata."""

    parameters: Tuple[float, ...] = ()
    num_time_steps: int = 0
    field_shape: Tuple[int, ...] = ()
    restart_count: int = 0

    def nbytes(self) -> int:
        return 8 * len(self.parameters) + 24


@dataclass
class TimeStepMessage(Message):
    """One simulation time step streamed to a server rank.

    Attributes
    ----------
    client_id:
        Identifier of the simulation instance (ensemble member).
    time_step:
        Index ``t`` of the field in the simulation's time series.
    time_value:
        Physical time corresponding to ``time_step``.
    parameters:
        The simulation input vector ``X`` (initial + boundary temperatures).
    payload:
        The flattened field ``u_t_X`` in float32 (already gathered on the
        client's rank 0 and down-converted, as in the paper).
    sequence_number:
        Per-client monotonically increasing counter used by the server's
        message log for deduplication after client restarts.
    """

    time_step: int = 0
    time_value: float = 0.0
    parameters: Tuple[float, ...] = ()
    payload: Array = field(default_factory=lambda: np.zeros(0, dtype=np.float32))
    sequence_number: int = 0

    def nbytes(self) -> int:
        return int(self.payload.nbytes) + 8 * len(self.parameters) + 32

    def __eq__(self, other: object) -> bool:
        """Field-wise equality with exact (dtype + bytes) payload comparison."""
        if not isinstance(other, TimeStepMessage):
            return NotImplemented
        return (
            self.client_id == other.client_id
            and self.time_step == other.time_step
            and self.time_value == other.time_value
            and self.parameters == other.parameters
            and self.sequence_number == other.sequence_number
            and self.payload.dtype == other.payload.dtype
            and np.array_equal(self.payload, other.payload)
        )

    def sample_input(self) -> Array:
        """Training input vector ``(X, t)`` as float32."""
        return np.asarray([*self.parameters, self.time_value], dtype=np.float32)

    def key(self) -> Tuple[int, int]:
        """Deduplication key ``(client_id, time_step)``."""
        return (self.client_id, self.time_step)


@dataclass
class ClientFinished(Message):
    """Last message of a client: no more data will be sent."""

    total_sent: int = 0

    def nbytes(self) -> int:
        return 16


@dataclass
class Heartbeat(Message):
    """Periodic liveness signal used by the server's fault detector."""

    timestamp: float = 0.0
    progress: float = 0.0

    def nbytes(self) -> int:
        return 24


@dataclass
class ServerCommand:
    """Server→launcher command (e.g. request to start or kill a client)."""

    action: str
    client_id: Optional[int] = None
    reason: str = ""


# --------------------------------------------------------------------------
# Packed batch wire format.
# --------------------------------------------------------------------------

class WireFormatError(ReproError):
    """Raised when a buffer does not parse as a packed message batch."""


WIRE_MAGIC = b"RPRO"
WIRE_VERSION = 1

#: magic, version, flags, message count, header-region bytes (incl. padding),
#: total f64 parameters, total f32 payload elements.
_BATCH_HEADER = struct.Struct("<4sHHIIQQ")

_T_HELLO = 0
_T_STEP = 1
_T_FINISHED = 2
_T_HEARTBEAT = 3

#: type, client_id, n_params, num_time_steps, restart_count, ndim
#: (followed by ``ndim`` little-endian int64 shape extents).
_HELLO_HEADER = struct.Struct("<BqIqqB")
_SHAPE_DIM = struct.Struct("<q")
#: type, client_id, time_step, time_value, sequence_number, n_params, payload_len
_STEP_HEADER = struct.Struct("<BqqdqIQ")
#: type, client_id, total_sent
_FINISHED_HEADER = struct.Struct("<Bqq")
#: type, client_id, timestamp, progress
_HEARTBEAT_HEADER = struct.Struct("<Bqdd")

# Declared wire sizes of the packed headers above.  These are the numbers a
# reader on the other side of the ring hard-codes its offsets against;
# ``tools/reprolint`` (wire-layout rule) cross-checks each one against
# ``calcsize`` of its struct, so widening a field without bumping the declared
# size is a lint error instead of a torn batch.
BATCH_HEADER_BYTES = 32
HELLO_HEADER_BYTES = 30
STEP_HEADER_BYTES = 45
FINISHED_HEADER_BYTES = 17
HEARTBEAT_HEADER_BYTES = 25


class BatchPlan:
    """Precomputed layout of one packed batch (see :func:`plan_many`).

    Planning and writing are split so callers can learn the exact packed
    size *before* committing an output buffer — the shm ring transport picks
    (and, if needed, splits toward) a ring slot from ``nbytes`` alone, then
    packs straight into the slot's memoryview with :meth:`write_into`.
    """

    __slots__ = ("count", "header_bytes", "params", "payloads", "total_payload", "nbytes")

    def __init__(self, count: int, header_bytes: bytes, params: List[float],
        payloads: List[Array], total_payload: int) -> None:
        self.count = count
        self.header_bytes = header_bytes  # per-type headers, padded to 8 B
        self.params = params
        self.payloads = payloads
        self.total_payload = total_payload
        self.nbytes = (_BATCH_HEADER.size + len(header_bytes) + 8 * len(params) + 4 * total_payload)

    def write_into(self, buf, offset: int = 0) -> int:
        """Write the packed batch at ``buf[offset:]``; returns bytes written.

        ``buf`` is any writable buffer (bytearray, shared-memory memoryview).
        The caller is responsible for bounds — :func:`pack_many_into` is the
        checked public entry point.
        """
        _BATCH_HEADER.pack_into(
            buf, offset,
            WIRE_MAGIC, WIRE_VERSION, 0,
            self.count, len(self.header_bytes),
            len(self.params), self.total_payload,
        )
        cursor = offset + _BATCH_HEADER.size
        end = cursor + len(self.header_bytes)
        buf[cursor:end] = self.header_bytes
        if self.params:
            struct.pack_into(f"<{len(self.params)}d", buf, end, *self.params)
            end += 8 * len(self.params)
        if self.total_payload:
            payload_out = np.frombuffer(buf, dtype=np.float32,
                                        count=self.total_payload, offset=end)
            if len(self.payloads) == 1:
                payload_out[:] = self.payloads[0]
            else:
                np.concatenate(self.payloads, out=payload_out)
        return self.nbytes


def plan_many(messages: Sequence[Message]) -> BatchPlan:
    """Lay out a batch for packing: headers now, numeric blocks on write.

    All parameter tuples are concatenated into a single float64 block and all
    time-step payloads into a single float32 block, so a batch costs one
    output buffer regardless of its length.  Payloads are converted to flat
    float32 (the client-side preprocessing contract) if they are not already.

    """
    headers: List[bytes] = []
    params_flat: List[float] = []
    payload_parts: List[Array] = []
    total_payload = 0

    step_pack = _STEP_HEADER.pack
    for message in messages:
        kind = type(message)
        if kind is TimeStepMessage:
            payload = message.payload
            if payload.dtype != np.float32 or payload.ndim != 1 or not payload.flags.c_contiguous:
                payload = np.ascontiguousarray(payload, dtype=np.float32).ravel()
            headers.append(
                step_pack(
                    _T_STEP,
                    message.client_id,
                    message.time_step,
                    message.time_value,
                    message.sequence_number,
                    len(message.parameters),
                    payload.size,
                )
            )
            params_flat.extend(message.parameters)
            payload_parts.append(payload)
            total_payload += payload.size
        elif kind is ClientHello:
            headers.append(
                _HELLO_HEADER.pack(
                    _T_HELLO,
                    message.client_id,
                    len(message.parameters),
                    message.num_time_steps,
                    message.restart_count,
                    len(message.field_shape),
                )
                + b"".join(_SHAPE_DIM.pack(dim) for dim in message.field_shape)
            )
            params_flat.extend(message.parameters)
        elif kind is ClientFinished:
            headers.append(_FINISHED_HEADER.pack(_T_FINISHED, message.client_id,
                    message.total_sent))
        elif kind is Heartbeat:
            headers.append(_HEARTBEAT_HEADER.pack(_T_HEARTBEAT, message.client_id,
                    message.timestamp, message.progress))
        else:
            raise WireFormatError(f"cannot pack message of type {kind.__name__}")

    header_bytes = b"".join(headers)
    padding = (-len(header_bytes)) % 8  # align the numeric blocks for frombuffer
    if padding:
        header_bytes += b"\x00" * padding
    return BatchPlan(len(messages), header_bytes, params_flat, payload_parts, total_payload)


def pack_many_into(messages: Sequence[Message], buf, offset: int = 0) -> int:
    """Serialise a batch directly into ``buf[offset:]``; returns bytes written.

    The zero-copy counterpart of :func:`pack_many`: the batch header, the
    per-type message headers and both numeric blocks are written straight
    into the caller-provided buffer (a ring-slot memoryview, a reusable
    scratch bytearray), skipping the intermediate ``bytes`` object entirely.
    The written region is byte-for-byte identical to ``pack_many(messages)``.

    Raises :class:`ValueError` when the buffer is too small — callers size
    buffers from :func:`plan_many` (``plan.nbytes``) to avoid the double
    planning pass.
    """
    plan = plan_many(messages)
    room = len(buf) - offset
    if offset < 0 or room < plan.nbytes:
        raise ValueError(
            f"packed batch needs {plan.nbytes} bytes, buffer has {max(room, 0)} "
            f"(offset {offset})"
        )
    return plan.write_into(buf, offset)


def pack_many(messages: Sequence[Message]) -> bytes:
    """Serialise a batch of messages into one contiguous buffer.

    Delegates to the same planner/writer as :func:`pack_many_into`; kept as
    the convenience entry point for callers that want a standalone immutable
    buffer (tests, the control-queue path).
    """
    plan = plan_many(messages)
    out = bytearray(plan.nbytes)
    plan.write_into(out, 0)
    return bytes(out)


def unpack_many(buffer, copy_payloads: bool = False) -> List[Message]:
    """Deserialise a buffer produced by :func:`pack_many` / `pack_many_into`.

    ``buffer`` is any bytes-like object, including a *borrowed* memoryview of
    a shared-memory ring slot.  The two numeric blocks are read with one
    zero-copy ``np.frombuffer`` each; every ``TimeStepMessage.payload`` is a
    float32 view into the payload block, so unpacking performs no per-message
    payload copies.

    Ownership contract: with ``copy_payloads=False`` the payload views
    *borrow* the caller's buffer — they are valid only for as long as the
    caller keeps the buffer alive and unmodified (a ring slot is reused as
    soon as the read cursor advances).  With ``copy_payloads=True`` the
    payload block is copied **once** into a freshly allocated array the
    returned messages collectively own; the buffer can then be released or
    overwritten immediately, and downstream consumers (the aggregator, the
    training buffers) may adopt the payload views without copying again.
    """
    if len(buffer) < _BATCH_HEADER.size:
        raise WireFormatError(f"buffer too short for batch header ({len(buffer)} bytes)")
    magic, version, _flags, count, header_nbytes, total_params, total_payload = (
        _BATCH_HEADER.unpack_from(buffer, 0)
    )
    if magic != WIRE_MAGIC:
        raise WireFormatError(f"bad magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireFormatError(f"unsupported wire version {version}")
    params_offset = _BATCH_HEADER.size + header_nbytes
    payload_offset = params_offset + 8 * total_params
    expected = payload_offset + 4 * total_payload
    if len(buffer) < expected:
        raise WireFormatError(
            f"truncated batch: {len(buffer)} bytes, header promises {expected}"
        )
    # One list conversion for the whole batch: tuple slicing off a plain
    # Python list is far cheaper than one ndarray slice + tolist per message.
    params_list = np.frombuffer(buffer, dtype=np.float64, count=total_params,
                                offset=params_offset).tolist()
    payload_block = np.frombuffer(buffer, dtype=np.float32, count=total_payload,
        offset=payload_offset)
    if copy_payloads:
        payload_block = payload_block.copy()  # one memcpy adopts every payload

    messages: List[Message] = []
    append = messages.append
    make_step = TimeStepMessage
    step_size = _STEP_HEADER.size
    params_cursor = 0
    payload_cursor = 0

    # Fast path: a homogeneous run of time-step headers (every hot-path ring
    # batch) parses with one ``iter_unpack`` sweep instead of per-message
    # ``unpack_from`` calls.  Verification is sequential, so the first
    # non-step message in a size-colliding mixed batch lands its true type
    # byte on a tuple boundary and is caught by the type check below.
    if count and header_nbytes == (count * step_size + 7) // 8 * 8:
        region = memoryview(buffer)[_BATCH_HEADER.size:
                                    _BATCH_HEADER.size + count * step_size]
        for tup in _STEP_HEADER.iter_unpack(region):
            if tup[0] != _T_STEP:
                break  # mixed batch after all: redo with the generic loop
            (_, client_id, time_step, time_value, sequence_number, n_params, payload_len) = tup
            parameters = tuple(params_list[params_cursor:params_cursor + n_params])
            params_cursor += n_params
            payload = payload_block[payload_cursor:payload_cursor + payload_len]
            payload_cursor += payload_len
            append(make_step(client_id, time_step, time_value, parameters,
                    payload, sequence_number))
        else:
            return messages
        messages.clear()
        params_cursor = 0
        payload_cursor = 0

    offset = _BATCH_HEADER.size
    step_unpack = _STEP_HEADER.unpack_from
    for _ in range(count):
        kind = buffer[offset]
        if kind == _T_STEP:
            (_, client_id, time_step, time_value, sequence_number,
                n_params, payload_len) = step_unpack(buffer, offset)
            offset += step_size
            parameters = tuple(params_list[params_cursor:params_cursor + n_params])
            params_cursor += n_params
            payload = payload_block[payload_cursor:payload_cursor + payload_len]
            payload_cursor += payload_len
            # Positional construction: keyword binding costs ~2x on this, the
            # only per-message allocation of the hot unpack loop.  Field
            # order: client_id, time_step, time_value, parameters, payload,
            # sequence_number.
            append(make_step(client_id, time_step, time_value, parameters,
                    payload, sequence_number))
        elif kind == _T_HELLO:
            (_, client_id, n_params, num_time_steps, restart_count, ndim) = (
                _HELLO_HEADER.unpack_from(buffer, offset)
            )
            offset += _HELLO_HEADER.size
            shape = tuple(
                _SHAPE_DIM.unpack_from(buffer, offset + index * _SHAPE_DIM.size)[0]
                for index in range(ndim)
            )
            offset += ndim * _SHAPE_DIM.size
            parameters = tuple(params_list[params_cursor:params_cursor + n_params])
            params_cursor += n_params
            messages.append(
                ClientHello(
                    client_id=client_id,
                    parameters=parameters,
                    num_time_steps=num_time_steps,
                    field_shape=shape,
                    restart_count=restart_count,
                )
            )
        elif kind == _T_FINISHED:
            _, client_id, total_sent = _FINISHED_HEADER.unpack_from(buffer, offset)
            offset += _FINISHED_HEADER.size
            messages.append(ClientFinished(client_id=client_id, total_sent=total_sent))
        elif kind == _T_HEARTBEAT:
            _, client_id, timestamp, progress = _HEARTBEAT_HEADER.unpack_from(buffer, offset)
            offset += _HEARTBEAT_HEADER.size
            messages.append(Heartbeat(client_id=client_id, timestamp=timestamp, progress=progress))
        else:
            raise WireFormatError(f"unknown message type code {kind} at offset {offset}")
    return messages
