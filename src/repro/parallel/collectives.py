"""Explicit collective algorithms (ring all-reduce, tree broadcast).

The communicator's built-in ``allreduce`` gathers everything on rank 0; the
ring algorithm implemented here is the bandwidth-optimal variant used by real
data-parallel training frameworks and is what :mod:`repro.server.ddp` uses for
gradient averaging, so the reproduction exercises the same communication
pattern as PyTorch DDP / NCCL.
"""

from __future__ import annotations

from typing import Any, List

import numpy as np

from repro.parallel.communicator import ThreadCommunicator

Array = np.ndarray

_RING_TAG_BASE = 10_000
_TREE_TAG = 20_000


def _ring_chunks(vector: Array, size: int) -> List[slice]:
    """Split a flat vector into ``size`` contiguous chunk slices."""
    n = vector.size
    base, remainder = divmod(n, size)
    slices: List[slice] = []
    start = 0
    for rank in range(size):
        count = base + (1 if rank < remainder else 0)
        slices.append(slice(start, start + count))
        start += count
    return slices


def ring_allreduce(comm: ThreadCommunicator, vector: Array, average: bool = False) -> Array:
    """Ring all-reduce of a flat numpy vector.

    The algorithm runs ``size - 1`` scatter-reduce steps followed by
    ``size - 1`` all-gather steps, sending one chunk per step to the next rank
    in the ring.  Returns a new array with the element-wise sum (or mean when
    ``average`` is true) across ranks.
    """
    vector = np.asarray(vector)
    if vector.ndim != 1:
        raise ValueError("ring_allreduce expects a flat (1-D) vector")
    size = comm.size
    result = vector.astype(np.float64, copy=True)
    if size == 1:
        return result / 1.0 if not average else result

    chunks = _ring_chunks(result, size)
    rank = comm.rank
    next_rank = (rank + 1) % size
    prev_rank = (rank - 1) % size

    # Scatter-reduce phase: after size-1 steps, chunk (rank+1) % size holds the
    # full sum on this rank.
    for step in range(size - 1):
        send_idx = (rank - step) % size
        recv_idx = (rank - step - 1) % size
        incoming = comm.sendrecv(
            result[chunks[send_idx]],
            dest=next_rank,
            source=prev_rank,
            send_tag=_RING_TAG_BASE + step,
            recv_tag=_RING_TAG_BASE + step,
        )
        result[chunks[recv_idx]] += incoming

    # All-gather phase: circulate the reduced chunks.
    for step in range(size - 1):
        send_idx = (rank - step + 1) % size
        recv_idx = (rank - step) % size
        incoming = comm.sendrecv(
            result[chunks[send_idx]],
            dest=next_rank,
            source=prev_rank,
            send_tag=_RING_TAG_BASE + size + step,
            recv_tag=_RING_TAG_BASE + size + step,
        )
        result[chunks[recv_idx]] = incoming

    if average:
        result /= size
    return result


def tree_broadcast(comm: ThreadCommunicator, payload: Any, root: int = 0) -> Any:
    """Binomial-tree broadcast (log2(size) rounds).

    Functionally equivalent to ``comm.bcast`` but with the communication
    pattern of production MPI implementations; used to broadcast the initial
    model weights to every data-parallel worker.
    """
    size = comm.size
    rank = comm.rank
    # Work in a rotated rank space where the root is virtual rank 0.
    virtual = (rank - root) % size

    mask = 1
    value = payload if rank == root else None
    received = rank == root
    while mask < size:
        if virtual < mask:
            partner_virtual = virtual + mask
            if partner_virtual < size and received:
                partner = (partner_virtual + root) % size
                comm.send(value, partner, tag=_TREE_TAG + mask)
        elif virtual < 2 * mask and not received:
            partner = ((virtual - mask) + root) % size
            value = comm.recv(partner, tag=_TREE_TAG + mask)
            received = True
        mask <<= 1
    comm.barrier()
    return value
