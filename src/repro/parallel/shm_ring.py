"""Shared-memory ring-buffer transport for the hot rank channels.

PR 2's multi-process backend funnels every hot-path packed batch through
``multiprocessing.Queue``: one pickle per buffer, a feeder thread per queue,
two pipe syscalls per batch, and — the documented limitation — a
cross-process writer *lock* that a client SIGKILLed exactly mid-``put`` can
leave held forever, wedging every other pusher to that rank.

This module replaces the hot channel with a fixed-capacity
**single-producer/single-consumer ring buffer** over
``multiprocessing.shared_memory``.  One ring exists per (ring slot,
server-rank) pair — SPSC by construction, because a slot is leased by
exactly one client at a time and a client streams to each rank from exactly
one process — and carries the packed wire format of
:mod:`repro.parallel.messages` written **in place**:

* Every ring slot holds one packed batch behind a 16-byte header: a
  **sequence word** doubling as the commit flag, and the batch length.
* The writer *reserves* the slot (odd write-begin marker), packs the batch
  straight into the slot's memoryview with
  :meth:`repro.parallel.messages.BatchPlan.write_into` (no intermediate
  ``bytes``), then commits: length, even commit word, and only then the
  shared ``writer_cursor``.  A SIGKILL at *any* point before the cursor
  store leaves the cursor unchanged, so the reader simply never observes
  the torn slot: **one batch is lost, nothing wedges**.  There are no
  cross-process locks on the data path at all.
* The stale write-begin marker left behind by a killed writer is detected
  by the restarted writer when it reuses the slot (the marker equals the
  odd sequence it is about to write), counted in the ring's
  ``torn_batches`` counter and surfaced through :class:`TransportStats`.
* The reader *borrows* a committed slot as a memoryview
  (:meth:`ShmRing.try_read_view`), deserialises it in place with
  ``unpack_many(view, copy_payloads=True)`` — one block copy adopts every
  payload — and only then advances the read cursor, so the slot is never
  recycled under a live view.
* Readers use a **busy-wait-then-park hybrid wakeup**: a short spin (the
  common case — data arrives within microseconds under load), then a parked
  wait on a per-rank ``multiprocessing.Semaphore`` gated by a
  ``reader_waiting`` flag so writers only pay the post when the reader is
  actually parked.  A semaphore rather than a ``Condition`` because a post
  is one atomic operation with no critical section: a writer SIGKILLed
  mid-notify cannot orphan anything.

**Slot-table multiplexing**: the ring grid is sized by
``max_concurrent_clients`` — the launcher's concurrency bound — not by the
ensemble size.  A client leases a ring slot at :meth:`connect` (or lazily on
its first push) and the slot is recycled once every rank has delivered the
client's ``ClientFinished``; a paper-scale ensemble of hundreds of
simulations therefore needs only as many rings as run concurrently.  The
lease table lives in shared memory (owner and refcount words under one
``mp.Lock``); leasing is a rare control-path operation, and the per-process
slot cache keeps it off the hot push path.

Control messages (hello/heartbeat/finished) stay on the bounded per-rank
``mp.Queue`` of the parent class: they are rare, they are not on the
throughput path, and the queue gives them multi-producer ordering for free.
``ClientFinished`` is *deferred* server-side until the client's ring for that
rank has drained, so the message that flips a buffer into drain mode can
never overtake the data sent before it.

Cursors and slot headers are aligned 8-byte words written via ``memcpy``;
CPython performs each store as a single aligned copy, which is atomic on
every platform the fork-based launcher supports.  All counters are
monotonic, so a stale read is always conservative (the reader sees *fewer*
committed batches, the writer sees *less* free space).  The publish
protocol additionally relies on store *ordering*: exact on x86 (total
store order); on weakly-ordered CPUs a reader can transiently observe the
cursor ahead of the slot's commit word, which it handles by re-polling the
slot briefly (``_COMMIT_LAG_RETRIES``) and, failing that, skipping it as
torn — counted, never wedged; a buffer published with a stale interior is
rejected by the wire format's magic/length checks and counted as dropped.
True cross-process fences would need a C extension and are out of scope
for this reproduction.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import struct
import time
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Set

from repro.buffers.columns import ColumnBatch
from repro.parallel.messages import (
    BatchPlan,
    ClientFinished,
    Message,
    TimeStepMessage,
    WireFormatError,
    plan_many,
    unpack_columns,
    unpack_many,
)
from repro.parallel.mp_transport import MultiprocessTransport
from repro.parallel.transport import Connection, RouterClosed, TransportStats
from repro.utils.constants import DEFAULT_RING_SLOT_BYTES as _DEFAULT_RING_SLOT_BYTES
from repro.utils.constants import DEFAULT_RING_SLOTS as _DEFAULT_RING_SLOTS
from repro.utils.logging import get_logger

logger = get_logger("parallel.shm_ring")

RING_MAGIC = 0x52425546  # "RBUF"
RING_VERSION = 1

#: Ring header layout (64 bytes, one cache line).  All fields are 8-byte
#: aligned little-endian u64 words except the magic/version pair.
_HDR_MAGIC = 0  # u32 magic, u16 version, u16 pad
_HDR_NUM_SLOTS = 8
_HDR_SLOT_BYTES = 16
_HDR_WRITER_CURSOR = 24  # batches committed (writer-owned)
_HDR_READER_CURSOR = 32  # batches consumed (reader-owned)
_HDR_WRITER_TORN = 40  # stale write-begin markers found by a restarted writer
_HDR_READER_TORN = 48  # corrupt slot headers skipped by the reader
_HDR_HIGH_WATER = 56  # max ring depth observed by the writer
RING_HEADER_BYTES = 64

#: Slot header: sequence/commit word, then payload length.
_SLOT_SEQ = 0
_SLOT_LENGTH = 8
SLOT_HEADER_BYTES = 16

_U64 = struct.Struct("<Q")
_MAGIC_WORD = struct.Struct("<IHH")

#: Busy-wait budget before parking on the condition / sleeping (seconds).
DEFAULT_SPIN_WAIT = 2e-4

#: Spinning is only productive when the writer can run *while* the reader
#: spins.  On a single-CPU box the spin merely steals the writer's
#: timeslice (the reader burns the core checking for data the writer is not
#: being scheduled to produce), so the reader parks immediately instead.
_MULTI_CORE = (os.cpu_count() or 1) > 1

#: Single-core park interval.  Parking on the wakeup semaphore is wrong on
#: one CPU: every commit would wake (and usually preempt) the reader, which
#: drains the single fresh batch, parks again, and forces two context
#: switches per batch.  A short timed nap instead lets the writer run
#: uninterrupted until the ring has accumulated a full sweep's worth of
#: batches, which the reader then drains in one pass.
_SINGLE_CORE_PARK = 5e-4
#: Writer back-off while the ring is full (the reader is busy; sub-ms poll).
#: Kept short on single-core boxes: there the reader naps on a timer while
#: the ring is *empty*, and a long writer back-off overlapping that nap is
#: dead time for both sides (a retry probe costs ~1 µs, so waking often is
#: cheap).
_FULL_RING_BACKOFF = 5e-4 if (os.cpu_count() or 1) > 1 else 1e-4

# Ring geometry defaults live in ``repro.utils.constants`` (single source of
# truth shared with the study config); the names stay re-exported here for
# existing importers.
DEFAULT_RING_SLOTS = _DEFAULT_RING_SLOTS
DEFAULT_RING_SLOT_BYTES = _DEFAULT_RING_SLOT_BYTES

#: How long a connecting client waits for a free ring-slot lease before
#: giving up with an actionable error.  Leases free as soon as every rank
#: has delivered the previous owner's ``ClientFinished``, so under a
#: correctly sized ``max_concurrent_clients`` the wait is milliseconds.
DEFAULT_LEASE_TIMEOUT = 30.0

#: Upper bound on one transport's ring segment.  The slot table allocates
#: ranks x max_concurrent_clients rings upfront; with the grid scaling by
#: concurrency rather than ensemble size this guard only trips on
#: pathological geometry, and the fix is named in the message.
MAX_SEGMENT_BYTES = 1 << 30

#: How many times the reader re-polls a slot whose commit word lags the
#: writer cursor before declaring it torn.  On x86 (total store order) the
#: lag cannot happen; on weakly-ordered CPUs the writer's stores become
#: visible within nanoseconds, so a brief re-read closes the window.
_COMMIT_LAG_RETRIES = 128


class ShmRing:
    """Fixed-capacity SPSC byte-buffer ring over a shared-memory view.

    The ring does not own its memory: it operates on a ``memoryview`` slice
    of a :class:`multiprocessing.shared_memory.SharedMemory` block (see
    :class:`ShmRingTransport`, which packs one ring per (slot, rank) pair
    into a single segment).  All mutable state lives inside the view, so a
    forked child and its parent observe the same cursors.

    Two write APIs exist: :meth:`try_write`/:meth:`write` copy a prepared
    buffer into the slot, and :meth:`try_reserve`/:meth:`reserve` +
    :meth:`commit_write` hand the slot's memoryview to the caller so the
    payload can be *produced* in place (the zero-copy pack path).  Reads are
    symmetric: :meth:`try_read` copies the batch out, while
    :meth:`try_read_view` + :meth:`finish_read` lend the committed slot to
    the caller and recycle it only after the read is finished.
    """

    def __init__(self, buf: memoryview, num_slots: int, slot_bytes: int,
        create: bool = False) -> None:
        if num_slots <= 0:
            raise ValueError("num_slots must be positive")
        if slot_bytes <= 0 or slot_bytes % 8:
            raise ValueError("slot_bytes must be a positive multiple of 8")
        expected = self.layout_bytes(num_slots, slot_bytes)
        if len(buf) < expected:
            raise ValueError(f"ring view too small: {len(buf)} < {expected} bytes")
        self._buf = buf
        self.num_slots = int(num_slots)
        self.slot_bytes = int(slot_bytes)
        self._stride = SLOT_HEADER_BYTES + self.slot_bytes
        self._reserved: Optional[tuple] = None  # (writer, slot offset, reader)
        self._pending_read = -1  # reader cursor of the borrowed slot
        if create:
            buf[:expected] = bytes(expected)
            _MAGIC_WORD.pack_into(buf, _HDR_MAGIC, RING_MAGIC, RING_VERSION, 0)
            _U64.pack_into(buf, _HDR_NUM_SLOTS, self.num_slots)
            _U64.pack_into(buf, _HDR_SLOT_BYTES, self.slot_bytes)
        else:
            magic, version, _pad = _MAGIC_WORD.unpack_from(buf, _HDR_MAGIC)
            if magic != RING_MAGIC or version != RING_VERSION:
                raise ValueError("view does not hold an initialised ShmRing header")
            if (self._load(_HDR_NUM_SLOTS) != self.num_slots
                    or self._load(_HDR_SLOT_BYTES) != self.slot_bytes):
                raise ValueError("ring geometry does not match the header")

    @staticmethod
    def layout_bytes(num_slots: int, slot_bytes: int) -> int:
        """Shared-memory footprint of one ring with this geometry."""
        return RING_HEADER_BYTES + num_slots * (SLOT_HEADER_BYTES + slot_bytes)

    # ------------------------------------------------------------- word access
    def _load(self, offset: int) -> int:
        return _U64.unpack_from(self._buf, offset)[0]

    def _store(self, offset: int, value: int) -> None:
        _U64.pack_into(self._buf, offset, value)

    def _slot_offset(self, cursor: int) -> int:
        return RING_HEADER_BYTES + (cursor % self.num_slots) * self._stride

    # ----------------------------------------------------------------- writer
    def try_reserve(self, length: int) -> Optional[memoryview]:
        """Claim the next slot for an in-place write of ``length`` bytes.

        Stores the odd write-begin marker and returns a writable memoryview
        of the slot's payload region; the caller fills it and publishes with
        :meth:`commit_write` (or backs out with :meth:`abort_write`).
        Returns ``None`` when the ring is full; never blocks.
        """
        if length > self.slot_bytes:
            raise ValueError(
                f"batch of {length} bytes exceeds the {self.slot_bytes}-byte ring slot"
            )
        # Word accesses are inlined (no _load/_store calls): this runs once
        # per published batch and the call overhead is measurable there.
        buf = self._buf
        load, store = _U64.unpack_from, _U64.pack_into
        writer = load(buf, _HDR_WRITER_CURSOR)[0]
        reader = load(buf, _HDR_READER_CURSOR)[0]
        if writer - reader >= self.num_slots:
            return None
        offset = self._slot_offset(writer)
        begin_marker = 2 * writer + 1
        if load(buf, offset + _SLOT_SEQ)[0] == begin_marker:
            # A previous incarnation of this writer died mid-write in this
            # very slot (its cursor was never advanced): count the torn batch
            # the restarted writer is about to overwrite.
            store(buf, _HDR_WRITER_TORN, load(buf, _HDR_WRITER_TORN)[0] + 1)
        store(buf, offset + _SLOT_SEQ, begin_marker)
        self._reserved = (writer, offset, reader)
        payload_at = offset + SLOT_HEADER_BYTES
        return buf[payload_at : payload_at + length]

    def commit_write(self, length: int) -> None:
        """Publish the reserved slot: length, commit word, writer cursor."""
        writer, offset, reader = self._reserved
        self._reserved = None
        buf = self._buf
        store = _U64.pack_into
        store(buf, offset + _SLOT_LENGTH, length)
        store(buf, offset + _SLOT_SEQ, 2 * writer + 2)  # commit flag
        store(buf, _HDR_WRITER_CURSOR, writer + 1)
        depth = writer + 1 - reader
        if depth > _U64.unpack_from(buf, _HDR_HIGH_WATER)[0]:
            store(buf, _HDR_HIGH_WATER, depth)

    def abort_write(self) -> None:
        """Back out of a reservation (clears the write-begin marker)."""
        if self._reserved is not None:
            _writer, offset, _reader = self._reserved
            self._reserved = None
            self._store(offset + _SLOT_SEQ, 0)

    def reserve(
        self,
        length: int,
        timeout: Optional[float] = None,
        should_abort: Optional[Callable[[], bool]] = None,
    ) -> Optional[memoryview]:
        """Blocking :meth:`try_reserve`: spin briefly, then sleep-poll for room.

        Returns ``None`` on timeout or when ``should_abort`` fires; the
        caller decides between ``queue.Full`` and :class:`RouterClosed`
        semantics.  A full ring means the reader is saturated, so the writer
        back-off is a plain sub-millisecond sleep — there is nothing to wake
        it earlier.
        """
        view = self.try_reserve(length)
        if view is not None:
            return view
        start = time.monotonic()
        deadline = None if timeout is None else start + timeout
        # A full ring frees only when the reader runs; spinning for it is
        # pointless on a single-CPU box (see _MULTI_CORE).
        spin_until = start + DEFAULT_SPIN_WAIT if _MULTI_CORE else start
        while True:
            if should_abort is not None and should_abort():
                return None
            if time.monotonic() >= spin_until:
                break
            view = self.try_reserve(length)
            if view is not None:
                return view
        while True:
            view = self.try_reserve(length)
            if view is not None:
                return view
            if should_abort is not None and should_abort():
                return None
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                return None
            pause = _FULL_RING_BACKOFF
            if deadline is not None:
                pause = min(pause, max(deadline - now, 0.0))
            time.sleep(pause)

    def try_write(self, data: bytes) -> bool:
        """Copy one prepared batch in; False when the ring is full."""
        view = self.try_reserve(len(data))
        if view is None:
            return False
        view[:] = data
        view.release()
        self.commit_write(len(data))
        return True

    def write(
        self,
        data: bytes,
        timeout: Optional[float] = None,
        should_abort: Optional[Callable[[], bool]] = None,
    ) -> bool:
        """Blocking :meth:`try_write` over :meth:`reserve`."""
        view = self.reserve(len(data), timeout=timeout, should_abort=should_abort)
        if view is None:
            return False
        view[:] = data
        view.release()
        self.commit_write(len(data))
        return True

    # ----------------------------------------------------------------- reader
    def try_read_view(self) -> Optional[memoryview]:
        """Borrow the next committed batch in place; ``None`` when empty.

        The returned memoryview aliases the ring slot: it stays valid only
        until :meth:`finish_read` recycles the slot, so the caller must
        consume (or copy out of) the view *before* finishing the read —
        and must release the view so the shared segment can be closed.

        A published slot whose commit word or length does not match cannot
        happen under the SPSC protocol on a TSO machine; on weakly-ordered
        CPUs it can transiently lag the cursor, so the slot is re-polled
        briefly and only then skipped — counted in ``torn_batches`` instead
        of wedging the reader on garbage.
        """
        buf = self._buf
        load = _U64.unpack_from
        while True:
            reader = load(buf, _HDR_READER_CURSOR)[0]
            if load(buf, _HDR_WRITER_CURSOR)[0] <= reader:
                return None
            offset = self._slot_offset(reader)
            committed_seq = 2 * reader + 2
            for _ in range(_COMMIT_LAG_RETRIES):
                length = load(buf, offset + _SLOT_LENGTH)[0]
                committed = load(buf, offset + _SLOT_SEQ)[0] == committed_seq
                if committed and length <= self.slot_bytes:
                    break
            if committed and length <= self.slot_bytes:
                payload_at = offset + SLOT_HEADER_BYTES
                self._pending_read = reader
                return buf[payload_at : payload_at + length]
            logger.warning("skipping corrupt ring slot at cursor %d", reader)
            self._store(_HDR_READER_TORN, self._load(_HDR_READER_TORN) + 1)
            self._store(_HDR_READER_CURSOR, reader + 1)

    def finish_read(self) -> None:
        """Recycle the slot borrowed by :meth:`try_read_view`."""
        self._store(_HDR_READER_CURSOR, self._pending_read + 1)

    def try_read(self) -> Optional[bytes]:
        """Pop the next committed batch as an owned copy; ``None`` when empty."""
        view = self.try_read_view()
        if view is None:
            return None
        data = bytes(view)
        view.release()
        self.finish_read()
        return data

    # ------------------------------------------------------------------ state
    @property
    def depth(self) -> int:
        """Committed batches not yet consumed."""
        return self._load(_HDR_WRITER_CURSOR) - self._load(_HDR_READER_CURSOR)

    @property
    def high_water(self) -> int:
        """Deepest the ring has ever been (in batches)."""
        return self._load(_HDR_HIGH_WATER)

    @property
    def torn_batches(self) -> int:
        """Batches lost to a writer killed mid-write (plus defensive skips)."""
        return self._load(_HDR_WRITER_TORN) + self._load(_HDR_READER_TORN)

    def release(self) -> None:
        """Drop the memoryview so the owning shared block can be closed."""
        self._buf.release()


class ShmRingTransport(MultiprocessTransport):
    """Multi-process transport whose hot rank channels are shared-memory rings.

    One :class:`ShmRing` per (ring slot, server-rank) pair carries the
    packed time-step batches; the bounded per-rank ``mp.Queue`` of the
    parent class is kept for control messages only (register/heartbeat/
    finished), which are rare and need multi-producer ordering.  All rings
    live in **one** shared-memory segment created by the server process and
    inherited by the forked clients, so there is nothing to name, attach or
    clean up per client.

    Parameters
    ----------
    num_server_ranks:
        Number of server ranks (one aggregator thread each).
    max_concurrent_clients:
        Size of the ring-slot table: how many clients can hold a ring lease
        simultaneously.  A client leases a slot at :meth:`connect` (blocking
        up to ``lease_timeout`` for one to free) or lazily on its first
        push (non-blocking); the slot is recycled once every rank has
        delivered the client's ``ClientFinished``.  Size it to the
        launcher's concurrency bound — the ensemble size is irrelevant.
        Messages from clients that hold no lease (and find no free slot)
        fall back to the control queue, so the transport stays functional
        for ad-hoc callers.
    ring_slots / ring_slot_bytes:
        Geometry of every ring: ``ring_slots`` batches of at most
        ``ring_slot_bytes`` packed bytes.  A batch that outgrows a slot is
        split in half recursively; a single message that cannot fit raises
        :class:`WireFormatError` naming the knob to raise.
    """

    def __init__(
        self,
        num_server_ranks: int,
        max_concurrent_clients: int = 8,
        max_queue_size: int = 10_000,
        ring_slots: int = DEFAULT_RING_SLOTS,
        ring_slot_bytes: int = DEFAULT_RING_SLOT_BYTES,
        spin_wait: float = DEFAULT_SPIN_WAIT,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    ) -> None:
        super().__init__(num_server_ranks, max_queue_size=max_queue_size)
        if max_concurrent_clients <= 0:
            raise ValueError("max_concurrent_clients must be positive")
        if ring_slots <= 0:
            raise ValueError("ring_slots must be positive")
        if ring_slot_bytes <= 0:
            raise ValueError("ring_slot_bytes must be positive")
        self.max_concurrent_clients = int(max_concurrent_clients)
        self.ring_slots = int(ring_slots)
        self.ring_slot_bytes = int(-(-ring_slot_bytes // 8) * 8)  # 8-byte aligned slots
        self.spin_wait = float(spin_wait)
        self.lease_timeout = float(lease_timeout)

        ring_bytes = ShmRing.layout_bytes(self.ring_slots, self.ring_slot_bytes)
        total = self.num_server_ranks * self.max_concurrent_clients * ring_bytes
        if total > MAX_SEGMENT_BYTES:
            raise ValueError(
                f"shm ring grid needs {total / 2**20:.0f} MiB "
                f"({num_server_ranks} ranks x {max_concurrent_clients} leases x "
                f"{ring_bytes / 2**10:.0f} KiB/ring), above the "
                f"{MAX_SEGMENT_BYTES // 2**20} MiB guard; shrink "
                "ring_slots/ring_slot_bytes or max_concurrent_clients "
                "(the slot table scales with concurrency, not ensemble size)"
            )
        try:
            self._shm = shared_memory.SharedMemory(create=True, size=total)
        except OSError as exc:
            raise OSError(
                f"could not allocate the {total / 2**20:.0f} MiB shm ring segment "
                "(check /dev/shm capacity, or shrink ring_slots/ring_slot_bytes)"
            ) from exc
        self._creator_pid = os.getpid()
        self._released = False
        self._rings: List[List[ShmRing]] = []
        for rank in range(self.num_server_ranks):
            row = []
            for slot in range(self.max_concurrent_clients):
                begin = (rank * self.max_concurrent_clients + slot) * ring_bytes
                view = self._shm.buf[begin : begin + ring_bytes]
                row.append(ShmRing(view, self.ring_slots, self.ring_slot_bytes, create=True))
            self._rings.append(row)
        # Ring-slot lease table: one owner word and one release refcount per
        # slot, shared by every forked client, guarded by one lock.  Leasing
        # happens at connect (rare), so the lock is never on the data path;
        # the per-process ``_slot_cache`` keeps lookups off it entirely.
        self._table_lock = mp.Lock()
        self._slot_owner = mp.RawArray("q", [-1] * self.max_concurrent_clients)
        self._slot_refs = mp.RawArray("q", self.max_concurrent_clients)
        #: Lease generation counter per slot, bumped on every fresh claim:
        #: the server's duplicate-finished guard is keyed by (client, gen),
        #: so a client re-leasing after a fully delivered finished (killed
        #: post-finalize, restarted, resent) gets a fresh dedup key and its
        #: new lease can still be released.
        self._slot_gen = mp.RawArray("q", self.max_concurrent_clients)
        self._slot_cache: Dict[int, int] = {}
        # Reader wakeup: one semaphore per rank, posted by writers only when
        # the rank's reader advertises that it is parked.  A semaphore (one
        # atomic post, no critical section) is kill-safe where a Condition is
        # not: a client SIGKILLed inside a Condition.notify would orphan the
        # condition's lock and wedge the reader — the very failure mode the
        # rings exist to remove.
        self._wakeups = [mp.Semaphore(0) for _ in range(self.num_server_ranks)]
        self._reader_waiting = [mp.Value("b", 0, lock=False)
                                for _ in range(self.num_server_ranks)]
        self._deferred_finished: List[List[ClientFinished]] = [
            [] for _ in range(self.num_server_ranks)
        ]
        # (server-side, per rank) (client, lease-generation) pairs whose
        # finished already released a lease reference — guards the refcount
        # against duplicate finished messages resent within one lease by a
        # client restarted after its finalize.
        self._released_finished: List[Set[tuple]] = [
            set() for _ in range(self.num_server_ranks)
        ]
        self._qsize_broken = False  # macOS: mp.Queue.qsize is unimplemented

    # ------------------------------------------------------------ slot leases
    def connect(self, client_id: int, batch_size: int = 1) -> Connection:
        """Lease a ring slot for ``client_id``, then connect as usual.

        Blocks up to ``lease_timeout`` for a slot to free (slots recycle as
        soon as every rank delivered the previous owner's finished marker);
        a client restarted after a crash finds and reuses its own live
        lease.  Raises :class:`RouterClosed` if the transport closes while
        waiting and ``TimeoutError`` when the table stays full — which means
        more clients run concurrently than ``max_concurrent_clients``.
        """
        self._lease_slot(int(client_id), block=True)
        return super().connect(client_id, batch_size=batch_size)

    def _lease_slot(self, client_id: int, block: bool) -> Optional[int]:
        if client_id < 0:
            # Negative ids would alias the free-slot sentinel (-1) in the
            # owner table; such callers stay on the control queue.
            if block:
                raise ValueError("client_id must be non-negative to lease a ring slot")
            return None
        deadline = time.monotonic() + self.lease_timeout
        while True:
            with self._table_lock:
                owner = self._slot_owner
                for slot in range(self.max_concurrent_clients):
                    if owner[slot] == client_id:
                        # Reuse path (restart mid-lease).  A client killed in
                        # the window between finalize and exit leaves its
                        # finished markers in flight; when they deliver, the
                        # lease frees mid-restream and the client simply
                        # re-leases a free slot on its next push — a benign
                        # re-route, never a wedge or a leak.
                        self._slot_cache[client_id] = slot
                        return slot
                for slot in range(self.max_concurrent_clients):
                    if owner[slot] == -1:
                        owner[slot] = client_id
                        self._slot_refs[slot] = self.num_server_ranks
                        self._slot_gen[slot] += 1
                        self._slot_cache[client_id] = slot
                        return slot
            if not block:
                return None
            if self._closed.is_set():
                raise RouterClosed("transport closed while waiting for a ring slot")
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"client {client_id} found no free ring slot within "
                    f"{self.lease_timeout:.0f}s: more than "
                    f"max_concurrent_clients={self.max_concurrent_clients} clients "
                    "are connected at once; raise "
                    "OnlineStudyConfig.max_concurrent_clients (the ring grid "
                    "scales with it) or finish/release clients faster"
                )
            time.sleep(0.002)

    def _slot_for_push(self, client_id: int) -> Optional[int]:
        """The client's leased ring slot, validating the per-process cache."""
        slot = self._slot_cache.get(client_id)
        if slot is not None and self._slot_owner[slot] == client_id:
            return slot
        if slot is not None:
            # Stale entry (the lease was recycled): drop it under the table
            # lock — thread-mode launchers push from concurrent pool threads,
            # and every other _slot_cache write happens under this lock.
            with self._table_lock:
                self._slot_cache.pop(client_id, None)
        return self._lease_slot(client_id, block=False)

    def _slot_of(self, client_id: int) -> Optional[int]:
        with self._table_lock:
            owner = self._slot_owner
            for slot in range(self.max_concurrent_clients):
                if owner[slot] == client_id:
                    return slot
        return None

    def _release_lease_ref(self, rank: int, client_id: int) -> None:
        """One rank delivered ``client_id``'s finished marker; maybe recycle."""
        released = self._released_finished[rank]
        with self._table_lock:
            owner = self._slot_owner
            for slot in range(self.max_concurrent_clients):
                if owner[slot] == client_id:
                    key = (client_id, self._slot_gen[slot])
                    if key in released:
                        return  # duplicate finished within this lease
                    released.add(key)
                    refs = self._slot_refs[slot] - 1
                    if refs <= 0:
                        owner[slot] = -1
                        self._slot_refs[slot] = 0
                    else:
                        self._slot_refs[slot] = refs
                    return

    def release_client(self, client_id: int) -> None:
        """Force-free a dead client's lease (launcher gave up on restarts).

        Undrained batches still in the client's rings stay readable — every
        message carries its client id, so attribution does not depend on the
        lease — but the slot becomes available to the next client
        immediately.
        """
        with self._table_lock:
            owner = self._slot_owner
            for slot in range(self.max_concurrent_clients):
                if owner[slot] == client_id:
                    owner[slot] = -1
                    self._slot_refs[slot] = 0
            self._slot_cache.pop(client_id, None)

    # ----------------------------------------------------------------- client
    def push_many(self, rank: int, messages: List[Message], timeout: float | None = None) -> None:
        """Route a batch: time steps to their client's leased ring, rest queued.

        A client's data batch is homogeneous (one client, all time steps) —
        that fast path is a single in-place packed ring write.  Mixed batches
        are split into maximal ring-eligible runs to preserve order.
        """
        self._check_rank(rank)
        if not messages:
            return
        if self._closed.is_set():
            self._shared.record_dropped(len(messages))
            raise RouterClosed("transport is closed")
        first = messages[0]
        if type(first) is TimeStepMessage:
            client_id = first.client_id
            for message in messages:
                if type(message) is not TimeStepMessage or message.client_id != client_id:
                    break
            else:
                slot = self._slot_for_push(client_id)
                if slot is None:
                    super().push_many(rank, messages, timeout=timeout)
                    self._notify(rank)
                else:
                    self._write_ring(rank, self._rings[rank][slot], messages, timeout)
                return
        self._push_runs(rank, messages, timeout)

    def _push_runs(self, rank: int, messages: List[Message], timeout: float | None) -> None:
        runs: List[tuple[Optional[ShmRing], List[Message]]] = []
        rings = self._rings[rank]
        for message in messages:
            ring: Optional[ShmRing] = None
            if type(message) is TimeStepMessage:
                slot = self._slot_for_push(message.client_id)
                if slot is not None:
                    ring = rings[slot]
            if runs and runs[-1][0] is ring:
                runs[-1][1].append(message)
            else:
                runs.append((ring, [message]))
        for index, (ring, run) in enumerate(runs):
            try:
                if ring is None:
                    super().push_many(rank, run, timeout=timeout)
                    self._notify(rank)
                else:
                    self._write_ring(rank, ring, run, timeout)
            except (queue.Full, RouterClosed, WireFormatError):
                # The failing run was counted where it failed; the runs after
                # it are never attempted and die with the batch.
                remainder = sum(len(r) for _, r in runs[index + 1 :])
                self._shared.record_dropped(remainder)
                raise

    def _ring_chunks(self, ring: ShmRing,
        run: List[Message]) -> List[tuple[List[Message], BatchPlan]]:
        """Plan ``run`` into slot-sized batches, splitting in half as needed.

        Planning is size-only (no bytes are produced): the actual packing
        happens straight into the reserved ring slot.
        """
        plan = plan_many(run)
        if plan.nbytes <= ring.slot_bytes:
            return [(run, plan)]
        if len(run) == 1:
            raise WireFormatError(
                f"one packed message of {plan.nbytes} bytes exceeds the "
                f"{ring.slot_bytes}-byte ring slot; raise "
                "OnlineStudyConfig.ring_slot_bytes"
            )
        middle = len(run) // 2
        return self._ring_chunks(ring, run[:middle]) + self._ring_chunks(ring, run[middle:])

    def _write_ring(self, rank: int, ring: ShmRing, run: List[Message],
                    timeout: float | None) -> None:
        try:
            chunks = self._ring_chunks(ring, run)
        except WireFormatError:
            self._shared.record_dropped(len(run))
            raise
        for index, (chunk, plan) in enumerate(chunks):
            view = ring.reserve(plan.nbytes, timeout=timeout,
                                should_abort=self._closed.is_set)
            if view is None:
                self._shared.record_dropped(sum(len(c) for c, _ in chunks[index:]))
                if self._closed.is_set():
                    raise RouterClosed("transport is closed")
                raise queue.Full
            try:
                plan.write_into(view, 0)  # pack straight into the ring slot
            except BaseException:
                ring.abort_write()
                raise
            finally:
                view.release()
            ring.commit_write(plan.nbytes)
            self._shared.record_batch(rank, len(chunk), plan.nbytes)
            self._notify(rank)

    def _notify(self, rank: int) -> None:
        """Wake the rank's reader, but only when it is actually parked.

        One semaphore post, taken without any lock, so a writer killed at
        any point here leaves nothing orphaned.  A post that races a reader
        that stopped waiting merely causes one spurious wakeup later.
        """
        if self._reader_waiting[rank].value:
            self._wakeups[rank].release()

    # ----------------------------------------------------------------- server
    def poll_many(self, rank: int, max_messages: int = 64,
        timeout: float | None = 0.05) -> List[Message]:
        return self._poll_items(rank, max_messages, timeout, columnar=False)

    def poll_batches(self, rank: int, max_messages: int = 64,
        timeout: float | None = 0.05) -> list:
        """Columnar drain: ring batches decode in place straight into
        :class:`ColumnBatch` chunks — one structured header parse plus the
        payload-block adoption copy per batch, no per-message objects — with
        control messages interleaved in order, exactly like
        :meth:`poll_many`.
        """
        return self._poll_items(rank, max_messages, timeout, columnar=True)

    def _poll_items(self, rank: int, max_messages: int, timeout: float | None,
                    columnar: bool) -> list:
        if max_messages <= 0:
            raise ValueError("max_messages must be positive")
        self._check_rank(rank)
        items: list = []
        count = self._take_leftover(rank, items, max_messages, columnar)
        self._drain(rank, items, count, max_messages, columnar)
        if items or timeout is None:
            return items
        deadline = time.monotonic() + timeout
        wakeup = self._wakeups[rank]
        waiting = self._reader_waiting[rank]
        while True:
            now = time.monotonic()
            if now >= deadline:
                return items
            if self._ready(rank):
                # A control put may still be in flight through the queue's
                # feeder pipe (qsize leads the readable bytes); yield briefly
                # and re-drain instead of giving up on a non-empty channel.
                time.sleep(min(5e-5, deadline - now))
            else:
                parked = True
                if _MULTI_CORE:
                    spin_until = min(deadline, now + self.spin_wait)
                    while time.monotonic() < spin_until:  # busy-wait: data is near
                        if self._ready(rank):
                            parked = False
                            break
                if parked:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return items
                    if not _MULTI_CORE:
                        # Timed nap (no semaphore, no writer-side posts): the
                        # writer keeps its timeslice and batches accumulate.
                        time.sleep(min(remaining, _SINGLE_CORE_PARK))
                    else:
                        waiting.value = 1
                        try:
                            while wakeup.acquire(False):
                                pass  # drop stale posts before parking
                            if not self._ready(rank):
                                # Bounded so control messages are still seen on
                                # platforms where _ready cannot probe the queue.
                                wakeup.acquire(True, min(remaining, 0.05))
                        finally:
                            waiting.value = 0
            self._drain(rank, items, 0, max_messages, columnar)
            if items:
                return items

    def _ready(self, rank: int) -> bool:
        """Anything deliverable right now? (cheap, lock-free probes)"""
        if not self._qsize_broken:
            try:
                if self._queues[rank].qsize() > 0:
                    return True
            except (NotImplementedError, OSError):  # pragma: no cover - macOS
                # No queue probe on this platform: rely on the bounded park
                # in poll_many to pick control messages up within 50 ms.
                self._qsize_broken = True
        return any(ring.depth for ring in self._rings[rank])

    def _drain(self, rank: int, out: list, count: int, max_messages: int,
               columnar: bool) -> int:
        """One non-blocking sweep: control queue, rings, deferred finished.

        ``count`` is the running message tally of ``out`` (columnar chunks
        count their sample length); the updated tally is returned.
        """
        count = self._drain_control(rank, out, count, max_messages, columnar)
        count = self._drain_rings(rank, out, count, max_messages, columnar)
        return self._release_finished(rank, out, count, max_messages)

    def _drain_control(self, rank: int, out: list, count: int,
                       max_messages: int, columnar: bool) -> int:
        if not self._qsize_broken:
            # Cheap emptiness probe: the common no-control-traffic sweep
            # costs one sem_getvalue instead of a queue.Empty exception.
            try:
                if self._queues[rank].qsize() == 0:
                    return count
            except (NotImplementedError, OSError):  # pragma: no cover - macOS
                self._qsize_broken = True
        while count < max_messages:
            batch = self._get_batch(rank, None, columnar)
            if batch is None:
                return count
            for message in batch:
                if isinstance(message, ClientFinished) and not self._client_drained(
                    rank, message.client_id
                ):
                    # Hold the finished marker until the client's ring for
                    # this rank is empty: it must not overtake the data.
                    self._deferred_finished[rank].append(message)
                else:
                    if isinstance(message, ClientFinished):
                        self._release_lease_ref(rank, message.client_id)
                    count = self._absorb(rank, out, [message], max_messages, count)
        return count

    def _drain_rings(self, rank: int, out: list, count: int,
                     max_messages: int, columnar: bool) -> int:
        rings = self._rings[rank]
        progressed = True
        while progressed and count < max_messages:
            progressed = False
            for ring in rings:
                if count >= max_messages:
                    return count
                view = ring.try_read_view()  # None doubles as the empty probe
                if view is None:
                    continue
                progressed = True
                batch: Optional[list] = None
                try:
                    # In-place deserialisation of the borrowed slot; the one
                    # payload-block copy transfers ownership to the chunk (or
                    # messages), so the slot can be recycled immediately.
                    if columnar:
                        chunk = unpack_columns(view)
                        if chunk is not None:
                            batch = [chunk]
                    if batch is None:
                        batch = unpack_many(view, copy_payloads=True)
                except (WireFormatError, struct.error):
                    logger.warning("rank %d: discarding unparsable ring batch", rank, exc_info=True)
                    self._shared.record_dropped(1)
                finally:
                    view.release()
                    ring.finish_read()
                if batch is not None:
                    count = self._absorb(rank, out, batch, max_messages, count)
        return count

    def _release_finished(self, rank: int, out: list, count: int,
                          max_messages: int) -> int:
        deferred = self._deferred_finished[rank]
        if not deferred:
            return count
        still_waiting: List[ClientFinished] = []
        for message in deferred:
            if count < max_messages and self._client_drained(rank, message.client_id):
                self._release_lease_ref(rank, message.client_id)
                count = self._absorb(rank, out, [message], max_messages, count)
            else:
                still_waiting.append(message)
        self._deferred_finished[rank] = still_waiting
        return count

    def _client_drained(self, rank: int, client_id: int) -> bool:
        slot = self._slot_of(client_id)
        if slot is None:
            return True
        return self._rings[rank][slot].depth == 0

    def pending(self, rank: int) -> int:
        """Leftovers plus queued control batches plus ring batches (leftover
        columnar chunks count by their sample length)."""
        self._check_rank(rank)
        try:
            queued = self._queues[rank].qsize()
        except (NotImplementedError, OSError):  # pragma: no cover - macOS
            queued = 0
        depth = sum(ring.depth for ring in self._rings[rank])
        leftover = sum(
            len(item) if isinstance(item, ColumnBatch) else 1
            for item in self._leftover[rank]
        )
        return (leftover + queued
                + depth + len(self._deferred_finished[rank]))

    # --------------------------------------------------------------- lifecycle
    def shutdown(self) -> None:
        """Close, wake parked readers/writers, drain queues, free the segment.

        Only the creating process unlinks the shared segment; forked clients
        merely drop their inherited mapping when they exit.
        """
        self.close()
        for wakeup in self._wakeups:
            wakeup.release()  # at most one parked reader per rank
        super().shutdown()
        if self._released:
            return
        self._released = True
        for row in self._rings:
            for ring in row:
                ring.release()
        self._rings = []
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - an undropped external view
            logger.warning("shared ring segment still has exported views", exc_info=True)
            return
        if os.getpid() == self._creator_pid:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass

    @property
    def stats(self) -> TransportStats:
        snapshot = self._shared.snapshot()
        high_water: Dict[int, int] = {}
        torn = 0
        for rank, row in enumerate(self._rings):
            torn += sum(ring.torn_batches for ring in row)
            deepest = max((ring.high_water for ring in row), default=0)
            if deepest:
                high_water[rank] = int(deepest)
        snapshot.torn_batches = torn
        snapshot.ring_depth_high_water = high_water
        return snapshot
