"""Shared-memory ring-buffer transport for the hot rank channels.

PR 2's multi-process backend funnels every hot-path packed batch through
``multiprocessing.Queue``: one pickle per buffer, a feeder thread per queue,
two pipe syscalls per batch, and — the documented limitation — a
cross-process writer *lock* that a client SIGKILLed exactly mid-``put`` can
leave held forever, wedging every other pusher to that rank.

This module replaces the hot channel with a fixed-capacity
**single-producer/single-consumer ring buffer** over
``multiprocessing.shared_memory``.  One ring exists per (client, server-rank)
pair — SPSC by construction, because a client streams to each rank from
exactly one process at a time — and carries the existing
:func:`repro.parallel.messages.pack_many` wire format unchanged:

* Every slot holds one packed batch behind a 16-byte header: a **sequence
  word** doubling as the commit flag, and the batch length.
* The writer publishes a batch in four ordered stores: write-begin marker
  (odd sequence), payload bytes, length, commit (even sequence) — and only
  then advances the shared ``writer_cursor``.  A SIGKILL at *any* point
  before the cursor store leaves the cursor unchanged, so the reader simply
  never observes the torn slot: **one batch is lost, nothing wedges**.  There
  are no cross-process locks on the data path at all.
* The stale write-begin marker left behind by a killed writer is detected by
  the restarted writer when it reuses the slot (the marker equals the odd
  sequence it is about to write), counted in the ring's ``torn_batches``
  counter and surfaced through :class:`TransportStats`.
* Readers use a **busy-wait-then-park hybrid wakeup**: a short spin (the
  common case — data arrives within microseconds under load), then a parked
  wait on a per-rank ``multiprocessing.Semaphore`` gated by a
  ``reader_waiting`` flag so writers only pay the post when the reader is
  actually parked.  A semaphore rather than a ``Condition`` because a post
  is one atomic operation with no critical section: a writer SIGKILLed
  mid-notify cannot orphan anything.

Control messages (hello/heartbeat/finished) stay on the bounded per-rank
``mp.Queue`` of the parent class: they are rare, they are not on the
throughput path, and the queue gives them multi-producer ordering for free.
``ClientFinished`` is *deferred* server-side until the client's ring for that
rank has drained, so the message that flips a buffer into drain mode can
never overtake the data sent before it.

Cursors and slot headers are aligned 8-byte words written via ``memcpy``;
CPython performs each store as a single aligned copy, which is atomic on
every platform the fork-based launcher supports.  All counters are
monotonic, so a stale read is always conservative (the reader sees *fewer*
committed batches, the writer sees *less* free space).  The publish
protocol additionally relies on store *ordering*: exact on x86 (total
store order); on weakly-ordered CPUs a reader can transiently observe the
cursor ahead of the slot's commit word, which it handles by re-polling the
slot briefly (``_COMMIT_LAG_RETRIES``) and, failing that, skipping it as
torn — counted, never wedged; a buffer published with a stale interior is
rejected by the wire format's magic/length checks and counted as dropped.
True cross-process fences would need a C extension and are out of scope
for this reproduction.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import struct
import time
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional

from repro.parallel.messages import (
    ClientFinished,
    Message,
    TimeStepMessage,
    WireFormatError,
    pack_many,
    unpack_many,
)
from repro.parallel.mp_transport import MultiprocessTransport
from repro.parallel.transport import RouterClosed, TransportStats
from repro.utils.logging import get_logger

logger = get_logger("parallel.shm_ring")

RING_MAGIC = 0x52425546  # "RBUF"
RING_VERSION = 1

#: Ring header layout (64 bytes, one cache line).  All fields are 8-byte
#: aligned little-endian u64 words except the magic/version pair.
_HDR_MAGIC = 0  # u32 magic, u16 version, u16 pad
_HDR_NUM_SLOTS = 8
_HDR_SLOT_BYTES = 16
_HDR_WRITER_CURSOR = 24  # batches committed (writer-owned)
_HDR_READER_CURSOR = 32  # batches consumed (reader-owned)
_HDR_WRITER_TORN = 40  # stale write-begin markers found by a restarted writer
_HDR_READER_TORN = 48  # corrupt slot headers skipped by the reader
_HDR_HIGH_WATER = 56  # max ring depth observed by the writer
RING_HEADER_BYTES = 64

#: Slot header: sequence/commit word, then payload length.
_SLOT_SEQ = 0
_SLOT_LENGTH = 8
SLOT_HEADER_BYTES = 16

_U64 = struct.Struct("<Q")
_MAGIC_WORD = struct.Struct("<IHH")

#: Busy-wait budget before parking on the condition / sleeping (seconds).
DEFAULT_SPIN_WAIT = 2e-4
#: Writer back-off while the ring is full (the reader is busy; sub-ms poll).
_FULL_RING_BACKOFF = 5e-4

DEFAULT_RING_SLOTS = 16
DEFAULT_RING_SLOT_BYTES = 64 * 1024

#: Upper bound on one transport's ring segment.  The grid allocates
#: ranks x clients rings upfront, so a paper-scale ensemble with the default
#: geometry would silently claim gigabytes of /dev/shm; fail fast with an
#: actionable message instead (slot-table multiplexing is the ROADMAP
#: follow-up that lifts this).
MAX_SEGMENT_BYTES = 1 << 30

#: How many times the reader re-polls a slot whose commit word lags the
#: writer cursor before declaring it torn.  On x86 (total store order) the
#: lag cannot happen; on weakly-ordered CPUs the writer's stores become
#: visible within nanoseconds, so a brief re-read closes the window.
_COMMIT_LAG_RETRIES = 128


class ShmRing:
    """Fixed-capacity SPSC byte-buffer ring over a shared-memory view.

    The ring does not own its memory: it operates on a ``memoryview`` slice
    of a :class:`multiprocessing.shared_memory.SharedMemory` block (see
    :class:`ShmRingTransport`, which packs one ring per (client, rank) pair
    into a single segment).  All mutable state lives inside the view, so a
    forked child and its parent observe the same cursors.
    """

    def __init__(self, buf: memoryview, num_slots: int, slot_bytes: int,
                 create: bool = False) -> None:
        if num_slots <= 0:
            raise ValueError("num_slots must be positive")
        if slot_bytes <= 0 or slot_bytes % 8:
            raise ValueError("slot_bytes must be a positive multiple of 8")
        expected = self.layout_bytes(num_slots, slot_bytes)
        if len(buf) < expected:
            raise ValueError(f"ring view too small: {len(buf)} < {expected} bytes")
        self._buf = buf
        self.num_slots = int(num_slots)
        self.slot_bytes = int(slot_bytes)
        self._stride = SLOT_HEADER_BYTES + self.slot_bytes
        if create:
            buf[:expected] = bytes(expected)
            _MAGIC_WORD.pack_into(buf, _HDR_MAGIC, RING_MAGIC, RING_VERSION, 0)
            _U64.pack_into(buf, _HDR_NUM_SLOTS, self.num_slots)
            _U64.pack_into(buf, _HDR_SLOT_BYTES, self.slot_bytes)
        else:
            magic, version, _pad = _MAGIC_WORD.unpack_from(buf, _HDR_MAGIC)
            if magic != RING_MAGIC or version != RING_VERSION:
                raise ValueError("view does not hold an initialised ShmRing header")
            if (self._load(_HDR_NUM_SLOTS) != self.num_slots
                    or self._load(_HDR_SLOT_BYTES) != self.slot_bytes):
                raise ValueError("ring geometry does not match the header")

    @staticmethod
    def layout_bytes(num_slots: int, slot_bytes: int) -> int:
        """Shared-memory footprint of one ring with this geometry."""
        return RING_HEADER_BYTES + num_slots * (SLOT_HEADER_BYTES + slot_bytes)

    # ------------------------------------------------------------- word access
    def _load(self, offset: int) -> int:
        return _U64.unpack_from(self._buf, offset)[0]

    def _store(self, offset: int, value: int) -> None:
        _U64.pack_into(self._buf, offset, value)

    def _slot_offset(self, cursor: int) -> int:
        return RING_HEADER_BYTES + (cursor % self.num_slots) * self._stride

    # ----------------------------------------------------------------- writer
    def try_write(self, data: bytes) -> bool:
        """Publish one batch; False when the ring is full (never blocks).

        The commit protocol stores, in order: the odd write-begin marker, the
        payload, the length, the even commit word, and finally the writer
        cursor.  Crashing between any two stores leaves the cursor
        unpublished, so the reader never sees the torn slot.
        """
        length = len(data)
        if length > self.slot_bytes:
            raise ValueError(
                f"batch of {length} bytes exceeds the {self.slot_bytes}-byte ring slot"
            )
        writer = self._load(_HDR_WRITER_CURSOR)
        reader = self._load(_HDR_READER_CURSOR)
        if writer - reader >= self.num_slots:
            return False
        offset = self._slot_offset(writer)
        begin_marker = 2 * writer + 1
        if self._load(offset + _SLOT_SEQ) == begin_marker:
            # A previous incarnation of this writer died mid-write in this
            # very slot (its cursor was never advanced): count the torn batch
            # the restarted writer is about to overwrite.
            self._store(_HDR_WRITER_TORN, self._load(_HDR_WRITER_TORN) + 1)
        self._store(offset + _SLOT_SEQ, begin_marker)
        payload_at = offset + SLOT_HEADER_BYTES
        self._buf[payload_at : payload_at + length] = data
        self._store(offset + _SLOT_LENGTH, length)
        self._store(offset + _SLOT_SEQ, 2 * writer + 2)  # commit flag
        self._store(_HDR_WRITER_CURSOR, writer + 1)
        depth = writer + 1 - reader
        if depth > self._load(_HDR_HIGH_WATER):
            self._store(_HDR_HIGH_WATER, depth)
        return True

    def write(
        self,
        data: bytes,
        timeout: Optional[float] = None,
        should_abort: Optional[Callable[[], bool]] = None,
    ) -> bool:
        """Blocking :meth:`try_write`: spin briefly, then sleep-poll for room.

        Returns False on timeout or when ``should_abort`` fires; the caller
        decides between ``queue.Full`` and :class:`RouterClosed` semantics.
        A full ring means the reader is saturated, so the writer back-off is
        a plain sub-millisecond sleep — there is nothing to wake it earlier.
        """
        if self.try_write(data):
            return True
        start = time.monotonic()
        deadline = None if timeout is None else start + timeout
        spin_until = start + DEFAULT_SPIN_WAIT
        while True:
            if should_abort is not None and should_abort():
                return False
            if time.monotonic() >= spin_until:
                break
            if self.try_write(data):
                return True
        while True:
            if self.try_write(data):
                return True
            if should_abort is not None and should_abort():
                return False
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                return False
            pause = _FULL_RING_BACKOFF
            if deadline is not None:
                pause = min(pause, max(deadline - now, 0.0))
            time.sleep(pause)

    # ----------------------------------------------------------------- reader
    def try_read(self) -> Optional[bytes]:
        """Pop the next committed batch; ``None`` when the ring is empty.

        A published slot whose commit word or length does not match cannot
        happen under the SPSC protocol on a TSO machine; on weakly-ordered
        CPUs it can transiently lag the cursor, so the slot is re-polled
        briefly and only then skipped — counted in ``torn_batches`` instead
        of wedging the reader on garbage.
        """
        while True:
            reader = self._load(_HDR_READER_CURSOR)
            if self._load(_HDR_WRITER_CURSOR) <= reader:
                return None
            offset = self._slot_offset(reader)
            committed_seq = 2 * reader + 2
            for _ in range(_COMMIT_LAG_RETRIES):
                length = self._load(offset + _SLOT_LENGTH)
                committed = self._load(offset + _SLOT_SEQ) == committed_seq
                if committed and length <= self.slot_bytes:
                    break
            if committed and length <= self.slot_bytes:
                payload_at = offset + SLOT_HEADER_BYTES
                data = bytes(self._buf[payload_at : payload_at + length])
                self._store(_HDR_READER_CURSOR, reader + 1)
                return data
            logger.warning("skipping corrupt ring slot at cursor %d", reader)
            self._store(_HDR_READER_TORN, self._load(_HDR_READER_TORN) + 1)
            self._store(_HDR_READER_CURSOR, reader + 1)

    # ------------------------------------------------------------------ state
    @property
    def depth(self) -> int:
        """Committed batches not yet consumed."""
        return self._load(_HDR_WRITER_CURSOR) - self._load(_HDR_READER_CURSOR)

    @property
    def high_water(self) -> int:
        """Deepest the ring has ever been (in batches)."""
        return self._load(_HDR_HIGH_WATER)

    @property
    def torn_batches(self) -> int:
        """Batches lost to a writer killed mid-write (plus defensive skips)."""
        return self._load(_HDR_WRITER_TORN) + self._load(_HDR_READER_TORN)

    def release(self) -> None:
        """Drop the memoryview so the owning shared block can be closed."""
        self._buf.release()


class ShmRingTransport(MultiprocessTransport):
    """Multi-process transport whose hot rank channels are shared-memory rings.

    One :class:`ShmRing` per (client, server-rank) pair carries the packed
    time-step batches; the bounded per-rank ``mp.Queue`` of the parent class
    is kept for control messages only (register/heartbeat/finished), which
    are rare and need multi-producer ordering.  All rings live in **one**
    shared-memory segment created by the server process and inherited by the
    forked clients, so there is nothing to name, attach or clean up per
    client.

    Parameters
    ----------
    num_server_ranks:
        Number of server ranks (one aggregator thread each).
    num_clients:
        Ring capacity in clients: client ids ``0..num_clients-1`` get a
        dedicated ring per rank.  Messages from ids outside that range (or
        non-time-step messages) fall back to the control queue, so the
        transport stays functional for ad-hoc callers.
    ring_slots / ring_slot_bytes:
        Geometry of every ring: ``ring_slots`` batches of at most
        ``ring_slot_bytes`` packed bytes.  A batch that outgrows a slot is
        split in half recursively; a single message that cannot fit raises
        :class:`WireFormatError` naming the knob to raise.
    """

    def __init__(
        self,
        num_server_ranks: int,
        num_clients: int = 8,
        max_queue_size: int = 10_000,
        ring_slots: int = DEFAULT_RING_SLOTS,
        ring_slot_bytes: int = DEFAULT_RING_SLOT_BYTES,
        spin_wait: float = DEFAULT_SPIN_WAIT,
    ) -> None:
        super().__init__(num_server_ranks, max_queue_size=max_queue_size)
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if ring_slots <= 0:
            raise ValueError("ring_slots must be positive")
        if ring_slot_bytes <= 0:
            raise ValueError("ring_slot_bytes must be positive")
        self.num_clients = int(num_clients)
        self.ring_slots = int(ring_slots)
        self.ring_slot_bytes = int(-(-ring_slot_bytes // 8) * 8)  # 8-byte aligned slots
        self.spin_wait = float(spin_wait)

        ring_bytes = ShmRing.layout_bytes(self.ring_slots, self.ring_slot_bytes)
        total = self.num_server_ranks * self.num_clients * ring_bytes
        if total > MAX_SEGMENT_BYTES:
            raise ValueError(
                f"shm ring grid needs {total / 2**20:.0f} MiB "
                f"({num_server_ranks} ranks x {num_clients} clients x "
                f"{ring_bytes / 2**10:.0f} KiB/ring), above the "
                f"{MAX_SEGMENT_BYTES // 2**20} MiB guard; shrink "
                "ring_slots/ring_slot_bytes or the client count "
                "(slot-table multiplexing for paper-scale ensembles is a "
                "ROADMAP follow-up)"
            )
        try:
            self._shm = shared_memory.SharedMemory(create=True, size=total)
        except OSError as exc:
            raise OSError(
                f"could not allocate the {total / 2**20:.0f} MiB shm ring segment "
                "(check /dev/shm capacity, or shrink ring_slots/ring_slot_bytes)"
            ) from exc
        self._creator_pid = os.getpid()
        self._released = False
        self._rings: List[List[ShmRing]] = []
        for rank in range(self.num_server_ranks):
            row = []
            for client in range(self.num_clients):
                begin = (rank * self.num_clients + client) * ring_bytes
                view = self._shm.buf[begin : begin + ring_bytes]
                row.append(ShmRing(view, self.ring_slots, self.ring_slot_bytes, create=True))
            self._rings.append(row)
        # Reader wakeup: one semaphore per rank, posted by writers only when
        # the rank's reader advertises that it is parked.  A semaphore (one
        # atomic post, no critical section) is kill-safe where a Condition is
        # not: a client SIGKILLed inside a Condition.notify would orphan the
        # condition's lock and wedge the reader — the very failure mode the
        # rings exist to remove.
        self._wakeups = [mp.Semaphore(0) for _ in range(self.num_server_ranks)]
        self._reader_waiting = [mp.Value("b", 0, lock=False)
                                for _ in range(self.num_server_ranks)]
        self._deferred_finished: List[List[ClientFinished]] = [
            [] for _ in range(self.num_server_ranks)
        ]
        self._qsize_broken = False  # macOS: mp.Queue.qsize is unimplemented

    # ----------------------------------------------------------------- client
    def _ring_for(self, rank: int, message: Message) -> Optional[ShmRing]:
        """The hot-path ring for a message, or ``None`` for the control queue."""
        if type(message) is TimeStepMessage and 0 <= message.client_id < self.num_clients:
            return self._rings[rank][message.client_id]
        return None

    def push_many(self, rank: int, messages: List[Message],
                  timeout: float | None = None) -> None:
        """Route a batch: time steps to their client's ring, the rest queued.

        A client's data batch is homogeneous (one client, all time steps), so
        the common case is a single packed ring write.  Mixed batches are
        split into maximal ring-eligible runs to preserve order.
        """
        self._check_rank(rank)
        if not messages:
            return
        if self._closed.is_set():
            self._shared.record_dropped(len(messages))
            raise RouterClosed("transport is closed")
        runs: List[tuple[Optional[ShmRing], List[Message]]] = []
        for message in messages:
            ring = self._ring_for(rank, message)
            if runs and runs[-1][0] is ring:
                runs[-1][1].append(message)
            else:
                runs.append((ring, [message]))
        for index, (ring, run) in enumerate(runs):
            try:
                if ring is None:
                    super().push_many(rank, run, timeout=timeout)
                    self._notify(rank)
                else:
                    self._write_ring(rank, ring, run, timeout)
            except (queue.Full, RouterClosed, WireFormatError):
                # The failing run was counted where it failed; the runs after
                # it are never attempted and die with the batch.
                remainder = sum(len(r) for _, r in runs[index + 1 :])
                self._shared.record_dropped(remainder)
                raise

    def _ring_chunks(self, ring: ShmRing,
                     run: List[Message]) -> List[tuple[List[Message], bytes]]:
        """Pack ``run`` into slot-sized buffers, splitting in half as needed."""
        buffer = pack_many(run)
        if len(buffer) <= ring.slot_bytes:
            return [(run, buffer)]
        if len(run) == 1:
            raise WireFormatError(
                f"one packed message of {len(buffer)} bytes exceeds the "
                f"{ring.slot_bytes}-byte ring slot; raise "
                "OnlineStudyConfig.ring_slot_bytes"
            )
        middle = len(run) // 2
        return self._ring_chunks(ring, run[:middle]) + self._ring_chunks(ring, run[middle:])

    def _write_ring(self, rank: int, ring: ShmRing, run: List[Message],
                    timeout: float | None) -> None:
        try:
            chunks = self._ring_chunks(ring, run)
        except WireFormatError:
            self._shared.record_dropped(len(run))
            raise
        for index, (chunk, buffer) in enumerate(chunks):
            ok = ring.write(buffer, timeout=timeout, should_abort=self._closed.is_set)
            if not ok:
                self._shared.record_dropped(sum(len(c) for c, _ in chunks[index:]))
                if self._closed.is_set():
                    raise RouterClosed("transport is closed")
                raise queue.Full
            self._shared.record_batch(rank, len(chunk), len(buffer))
            self._notify(rank)

    def _notify(self, rank: int) -> None:
        """Wake the rank's reader, but only when it is actually parked.

        One semaphore post, taken without any lock, so a writer killed at
        any point here leaves nothing orphaned.  A post that races a reader
        that stopped waiting merely causes one spurious wakeup later.
        """
        if self._reader_waiting[rank].value:
            self._wakeups[rank].release()

    # ----------------------------------------------------------------- server
    def poll_many(self, rank: int, max_messages: int = 64,
                  timeout: float | None = 0.05) -> List[Message]:
        if max_messages <= 0:
            raise ValueError("max_messages must be positive")
        self._check_rank(rank)
        messages: List[Message] = []
        leftover = self._leftover[rank]
        while leftover and len(messages) < max_messages:
            messages.append(leftover.popleft())
        self._drain(rank, messages, max_messages)
        if messages or timeout is None:
            return messages
        deadline = time.monotonic() + timeout
        wakeup = self._wakeups[rank]
        waiting = self._reader_waiting[rank]
        while True:
            now = time.monotonic()
            if now >= deadline:
                return messages
            if self._ready(rank):
                # A control put may still be in flight through the queue's
                # feeder pipe (qsize leads the readable bytes); yield briefly
                # and re-drain instead of giving up on a non-empty channel.
                time.sleep(min(5e-5, deadline - now))
            else:
                spin_until = min(deadline, now + self.spin_wait)
                parked = True
                while time.monotonic() < spin_until:  # busy-wait: data is near
                    if self._ready(rank):
                        parked = False
                        break
                if parked:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return messages
                    waiting.value = 1
                    try:
                        while wakeup.acquire(False):
                            pass  # drop stale posts before parking
                        if not self._ready(rank):
                            # Bounded so control messages are still seen on
                            # platforms where _ready cannot probe the queue.
                            wakeup.acquire(True, min(remaining, 0.05))
                    finally:
                        waiting.value = 0
            self._drain(rank, messages, max_messages)
            if messages:
                return messages

    def _ready(self, rank: int) -> bool:
        """Anything deliverable right now? (cheap, lock-free probes)"""
        if not self._qsize_broken:
            try:
                if self._queues[rank].qsize() > 0:
                    return True
            except (NotImplementedError, OSError):  # pragma: no cover - macOS
                # No queue probe on this platform: rely on the bounded park
                # in poll_many to pick control messages up within 50 ms.
                self._qsize_broken = True
        return any(ring.depth for ring in self._rings[rank])

    def _drain(self, rank: int, out: List[Message], max_messages: int) -> None:
        """One non-blocking sweep: control queue, rings, deferred finished."""
        self._drain_control(rank, out, max_messages)
        self._drain_rings(rank, out, max_messages)
        self._release_finished(rank, out, max_messages)

    def _drain_control(self, rank: int, out: List[Message], max_messages: int) -> None:
        while len(out) < max_messages:
            batch = self._get_batch(rank, None)
            if batch is None:
                return
            for message in batch:
                if isinstance(message, ClientFinished) and not self._client_drained(
                    rank, message.client_id
                ):
                    # Hold the finished marker until the client's ring for
                    # this rank is empty: it must not overtake the data.
                    self._deferred_finished[rank].append(message)
                else:
                    self._absorb(rank, out, [message], max_messages)

    def _drain_rings(self, rank: int, out: List[Message], max_messages: int) -> None:
        rings = self._rings[rank]
        progressed = True
        while progressed and len(out) < max_messages:
            progressed = False
            for ring in rings:
                if len(out) >= max_messages:
                    return
                if not ring.depth:
                    continue
                buffer = ring.try_read()
                if buffer is None:
                    continue
                progressed = True
                try:
                    batch = unpack_many(buffer)
                except WireFormatError:
                    logger.warning("rank %d: discarding unparsable ring batch", rank,
                                   exc_info=True)
                    self._shared.record_dropped(1)
                    continue
                self._absorb(rank, out, batch, max_messages)

    def _release_finished(self, rank: int, out: List[Message], max_messages: int) -> None:
        deferred = self._deferred_finished[rank]
        if not deferred:
            return
        still_waiting: List[ClientFinished] = []
        for message in deferred:
            if len(out) < max_messages and self._client_drained(rank, message.client_id):
                self._absorb(rank, out, [message], max_messages)
            else:
                still_waiting.append(message)
        self._deferred_finished[rank] = still_waiting

    def _client_drained(self, rank: int, client_id: int) -> bool:
        if 0 <= client_id < self.num_clients:
            return self._rings[rank][client_id].depth == 0
        return True

    def pending(self, rank: int) -> int:
        """Leftovers plus queued control batches plus ring batches."""
        self._check_rank(rank)
        try:
            queued = self._queues[rank].qsize()
        except (NotImplementedError, OSError):  # pragma: no cover - macOS
            queued = 0
        depth = sum(ring.depth for ring in self._rings[rank])
        return (len(self._leftover[rank]) + queued
                + depth + len(self._deferred_finished[rank]))

    # --------------------------------------------------------------- lifecycle
    def shutdown(self) -> None:
        """Close, wake parked readers/writers, drain queues, free the segment.

        Only the creating process unlinks the shared segment; forked clients
        merely drop their inherited mapping when they exit.
        """
        self.close()
        for wakeup in self._wakeups:
            wakeup.release()  # at most one parked reader per rank
        super().shutdown()
        if self._released:
            return
        self._released = True
        for row in self._rings:
            for ring in row:
                ring.release()
        self._rings = []
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - an undropped external view
            logger.warning("shared ring segment still has exported views", exc_info=True)
            return
        if os.getpid() == self._creator_pid:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass

    @property
    def stats(self) -> TransportStats:
        snapshot = self._shared.snapshot()
        high_water: Dict[int, int] = {}
        torn = 0
        for rank, row in enumerate(self._rings):
            torn += sum(ring.torn_batches for ring in row)
            deepest = max((ring.high_water for ring in row), default=0)
            if deepest:
                high_water[rank] = int(deepest)
        snapshot.torn_batches = torn
        snapshot.ring_depth_high_water = high_water
        return snapshot
