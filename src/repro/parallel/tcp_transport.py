"""TCP transport backend: packed batches as length-prefixed frames.

The first backend where client and server share **no memory**: clients
connect to the server's asyncio front door
(:class:`repro.server.serving.AsyncFrontDoor`) by address and stream the
same packed batched wire format the mp/shm backends use
(:func:`repro.parallel.messages.pack_many` layout), wrapped in the frame
protocol of :mod:`repro.parallel.framing` — so the study's fault protocol
(restart-resend-dedup, heartbeat watchdog) works unchanged over sockets.

Client side: each pushing thread keeps one lazily created
:class:`_ClientWriter` (socket + reusable pack scratch).  The socket is
opened at the first push **after** any fork — the launcher's forked client
processes inherit only the address, never a live socket — and opens with a
handshake frame carrying the client id and its dedup epoch (the hello's
restart count).  Batches are packed with ``plan_many``/``write_into``
straight into the scratch behind a reserved frame header, so the
uncompressed hot path sends without any intermediate copy; per-batch
compression (zlib/lz4) kicks in only when it shrinks the payload.

Server side: the front door enqueues received frames on per-rank
``queue.Queue`` channels; the aggregator threads drain them through the
shared :class:`repro.parallel.transport.PackedDrainMixin` machinery, where
the frame body is inflated and decoded (columnar chunk first, per-message
fallback).  Traffic statistics are recorded at decode time in the server
process; drops that happen inside a forked client process (send timeout,
connection loss) are counted in that process's copy of the stats and
surface server-side as torn or missing frames instead.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
from typing import Dict, List, Optional, Tuple

from repro.buffers.columns import ColumnBatch
from repro.parallel import framing
from repro.parallel.messages import ClientHello, Message, plan_many
from repro.parallel.transport import (
    Connection,
    PackedDrainMixin,
    RouterClosed,
    Transport,
    TransportStats,
)
from repro.utils.exceptions import ConfigurationError
from repro.utils.logging import get_logger

logger = get_logger("parallel.tcp_transport")

_SCRATCH_BYTES = 64 * 1024


class _ClientWriter:
    """One pushing thread's socket to the front door, created lazily post-fork.

    Keyed per (thread, pid): the transport object crosses the launcher's
    fork by reference, but a socket must not — the child opens its own
    connection (and sends its own handshake) at its first push.
    """

    __slots__ = ("host", "port", "compression", "connect_timeout",
                 "client_id", "epoch", "pid", "_sock", "_scratch")

    def __init__(self, host: str, port: int, compression: Optional[str],
                 connect_timeout: float, client_id: int) -> None:
        self.host = host
        self.port = port
        self.compression = compression
        self.connect_timeout = connect_timeout
        self.client_id = int(client_id)
        self.epoch = 0
        self.pid = os.getpid()
        self._sock: Optional[socket.socket] = None
        self._scratch = bytearray(_SCRATCH_BYTES)

    def _ensure_connected(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.connect_timeout)
        # One small frame per control message must not sit in Nagle's buffer
        # waiting for a payload that may be seconds away.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.sendall(framing.encode_hello(self.client_id, self.epoch))
        self._sock = sock
        return sock

    def send_batch(self, rank: int, messages: List[Message],
                   timeout: Optional[float]) -> int:
        """Pack, frame and send one batch; returns the frame's wire bytes."""
        plan = plan_many(messages)
        needed = framing.FRAME_HEADER_BYTES + plan.nbytes
        if len(self._scratch) < needed:
            self._scratch = bytearray(max(needed, 2 * len(self._scratch)))
        scratch = self._scratch
        plan.write_into(scratch, framing.FRAME_HEADER_BYTES)
        payload = memoryview(scratch)[framing.FRAME_HEADER_BYTES:needed]
        body, flags = framing.compress_body(payload, self.compression)
        sock = self._ensure_connected()
        sock.settimeout(timeout)
        if flags == 0:
            # Uncompressed hot path: header written into the reserved scratch
            # prefix, one sendall over the contiguous frame, zero extra copies.
            framing.pack_header_into(scratch, 0, framing.KIND_BATCH, 0, rank,
                                     plan.nbytes, plan.nbytes)
            sock.sendall(memoryview(scratch)[:needed])
            return needed
        header = framing.pack_header(framing.KIND_BATCH, flags, rank,
                                     len(body), plan.nbytes)
        sock.sendall(header)
        sock.sendall(body)
        return framing.FRAME_HEADER_BYTES + len(body)

    def reset(self) -> None:
        """Drop the socket; a timed-out sendall leaves a part-written frame,
        so the stream can only be resynced by reconnecting."""
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass


class TcpTransport(PackedDrainMixin, Transport):
    """Transport whose rank channels are TCP streams into an asyncio front door.

    Parameters
    ----------
    num_server_ranks:
        Number of server ranks (aggregator threads); at most 255 (the frame
        header routes with a u8 rank field).
    max_queue_size:
        Bound of each server-side rank channel **in frames**; with
        client-side batching a frame holds up to ``Connection.batch_size``
        messages.  A full channel stalls that client's reader task, which
        backs the pressure up the TCP window into the client's ``sendall``.
    host, port:
        Bind address of the front door; ``port=0`` binds an ephemeral port,
        resolved in :attr:`address` before any client connects.
    compression:
        ``None``, ``"zlib"`` or ``"lz4"`` — applied per batch and only when
        it shrinks the payload (the frame header flags the codec per frame).
    connect_timeout:
        Client-side bound on establishing a connection.
    """

    #: Frame bodies are decoded with one adoption copy per batch
    #: (``unpack_many(copy_payloads=True)`` / ``unpack_columns``), so polled
    #: messages own their payload memory outright.
    payloads_owned = True

    def __init__(
        self,
        num_server_ranks: int,
        max_queue_size: int = 10_000,
        host: str = "127.0.0.1",
        port: int = 0,
        compression: Optional[str] = None,
        connect_timeout: float = 10.0,
    ) -> None:
        if num_server_ranks <= 0:
            raise ValueError("num_server_ranks must be positive")
        if num_server_ranks > 255:
            raise ValueError("tcp transport routes with a u8 rank field (max 255 ranks)")
        if compression not in (None, "zlib", "lz4"):
            raise ConfigurationError(f"unknown tcp compression {compression!r}")
        if compression == "lz4" and not framing.lz4_available():
            raise ConfigurationError(
                "compression='lz4' requires the optional lz4 package; "
                "use 'zlib' or None"
            )
        self.num_server_ranks = int(num_server_ranks)
        self.max_queue_size = int(max_queue_size)
        self.compression = compression
        self.connect_timeout = float(connect_timeout)
        self._queues: List[queue.Queue] = [
            queue.Queue(maxsize=max_queue_size) for _ in range(num_server_ranks)
        ]
        self._init_leftovers(num_server_ranks)
        self._closed = threading.Event()
        self._stats_lock = threading.Lock()
        self._stats = TransportStats()
        #: client id -> last announced dedup epoch, from connection handshakes.
        self._client_epochs: Dict[int, int] = {}
        self._local = threading.local()
        # Stats live in the server process only (nothing is fork-shared); a
        # forked client that records a drop writes its own copy.  The pid
        # guard keeps such writes from touching a lock that may have been
        # forked while held by a server thread.
        self._origin_pid = os.getpid()
        # The serving tier sits above parallel/ in the layering; imported
        # lazily so the parallel package stays importable on its own.
        from repro.server.serving import AsyncFrontDoor

        self._front_door = AsyncFrontDoor(self, host=host, port=int(port))
        self.host, self.port = self._front_door.start()

    @property
    def address(self) -> Tuple[str, int]:
        """The front door's bound (host, port) — what remote clients dial."""
        return (self.host, self.port)

    # ----------------------------------------------------------------- client
    def connect(self, client_id: int, batch_size: int = 1) -> Connection:
        connection = super().connect(client_id, batch_size)
        # Reset this thread's writer so the next push opens a socket whose
        # handshake announces the new client id.
        self._local.client_id = int(client_id)
        writer = getattr(self._local, "writer", None)
        if writer is not None:
            writer.reset()
            self._local.writer = None
        return connection

    def _writer(self) -> _ClientWriter:
        local = self._local
        writer = getattr(local, "writer", None)
        if writer is None or writer.pid != os.getpid():
            writer = _ClientWriter(
                self.host, self.port, self.compression, self.connect_timeout,
                client_id=int(getattr(local, "client_id", -1)),
            )
            local.writer = writer
        return writer

    def push(self, rank: int, message: Message, timeout: float | None = None) -> None:
        self.push_many(rank, [message], timeout=timeout)

    def push_many(self, rank: int, messages: List[Message],
                  timeout: float | None = None) -> None:
        """Serialise ``messages`` into one frame and send it to the front door."""
        self._check_rank(rank)
        if not messages:
            return
        if self._closed.is_set():
            self._record_dropped(len(messages))
            raise RouterClosed("transport is closed")
        writer = self._writer()
        first = messages[0]
        if isinstance(first, ClientHello):
            # The hello's restart count is the dedup epoch the next-opened
            # connection announces in its handshake (control messages flush
            # ahead of data, so the hello is always the first push of a run).
            writer.epoch = int(first.restart_count)
        try:
            writer.send_batch(rank, messages, timeout)
        except TimeoutError:
            writer.reset()
            self._record_dropped(len(messages))
            raise queue.Full(f"tcp send to rank {rank} timed out") from None
        except OSError as exc:
            writer.reset()
            self._record_dropped(len(messages))
            raise RouterClosed(
                f"tcp connection to {self.host}:{self.port} lost: {exc}"
            ) from exc

    def _record_dropped(self, count: int) -> None:
        if count and os.getpid() == self._origin_pid:
            with self._stats_lock:
                self._stats.dropped_messages += count

    def record_unresponsive_kill(self) -> None:
        """Count one launcher-side kill of an unresponsive client process."""
        with self._stats_lock:
            self._stats.unresponsive_kills += 1

    # ----------------------------------------------- front-door sink interface
    # Called from the event-loop thread; everything here must stay lock-light
    # and non-blocking.
    def try_enqueue(self, rank: int, entry: tuple) -> bool:
        """Enqueue one received frame; ``False`` leaves back-pressure to the caller."""
        try:
            self._queues[rank].put_nowait(entry)
        except queue.Full:
            return False
        return True

    def register_client(self, client_id: int, epoch: int, peer) -> None:
        """Record a connection handshake (client id + dedup epoch)."""
        with self._stats_lock:
            previous = self._client_epochs.get(client_id)
            self._client_epochs[client_id] = max(int(epoch), previous or 0)
        if previous is not None and epoch > previous:
            logger.info("client %d reconnected from %s with epoch %d (was %d): "
                        "expecting a resend, the message log dedups",
                        client_id, peer, epoch, previous)

    def client_epochs(self) -> Dict[int, int]:
        """Snapshot of the announced dedup epochs (diagnostics/tests)."""
        with self._stats_lock:
            return dict(self._client_epochs)

    def record_torn_frame(self) -> None:
        """Count a connection that died mid-frame (client killed mid-send)."""
        with self._stats_lock:
            self._stats.torn_batches += 1

    def record_rejected_frame(self) -> None:
        """Count a frame dropped for protocol violations or at teardown."""
        self._record_dropped(1)

    # ----------------------------------------------------------------- server
    def _get_batch(self, rank: int, timeout: float | None,
                   columnar: bool = False) -> Optional[list]:
        """Pop one received frame, inflate and decode it.

        Traffic is recorded here — at decode, in the server process — since
        pushes happen in client processes whose stats copies are invisible.
        An undecodable body (stream desync, codec mismatch) counts as one
        dropped batch and is skipped, like a corrupt mp queue buffer.
        """
        try:
            if timeout is None:
                entry = self._queues[rank].get_nowait()
            else:
                entry = self._queues[rank].get(timeout=timeout)
        except queue.Empty:
            return None
        body, flags, raw_len, wire_nbytes = entry
        try:
            buffer = framing.decode_body(body, flags, raw_len)
        except framing.FrameError:
            logger.warning("rank %d: discarding undecodable tcp frame", rank, exc_info=True)
            self._record_dropped(1)
            return []
        batch = self._decode_packed(buffer, rank, columnar)
        delivered = sum(
            len(item) if isinstance(item, ColumnBatch) else 1 for item in batch
        )
        if delivered:
            with self._stats_lock:
                self._stats.record_batch(rank, delivered, wire_nbytes)
        return batch

    def pending(self, rank: int) -> int:
        """Decoded leftovers plus queued frames (a frame counts once, like a
        packed mp batch; leftover columnar chunks by their sample count)."""
        self._check_rank(rank)
        return self._leftover_count(rank) + self._queues[rank].qsize()

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        self._closed.set()

    def shutdown(self) -> None:
        """Close, stop the front door and release the queued frames."""
        self.close()
        self._front_door.stop()
        writer = getattr(self._local, "writer", None)
        if writer is not None:
            writer.reset()
            self._local.writer = None
        for rank, q in enumerate(self._queues):
            try:
                while True:
                    q.get_nowait()
            except queue.Empty:
                pass
            self._leftover[rank].clear()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    @property
    def stats(self) -> TransportStats:
        return self._stats
