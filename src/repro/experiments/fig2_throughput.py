"""Figure 2: buffer population and training throughput over time.

The paper's Figure 2 shows, for FIFO, FIRO and Reservoir on a single GPU, the
training throughput (samples/s) and the buffer population as data is produced
by three successive series of clients.  FIFO and FIRO track the production
rate (with drops at the series transitions); the Reservoir stays GPU-bound and
keeps its buffer full.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.results import OnlineStudyResult
from repro.experiments.common import (
    ExperimentScale,
    build_case,
    default_scale,
    run_online_with_buffer,
)

BUFFER_KINDS = ("fifo", "firo", "reservoir")


@dataclass
class BufferRunSeries:
    """Throughput/population series of one buffer policy."""

    buffer_kind: str
    throughput_times: np.ndarray
    throughput_values: np.ndarray
    population_times: np.ndarray
    population_values: np.ndarray
    mean_throughput: float
    total_batches: int
    max_population: int


@dataclass
class Fig2Result:
    """All series of Figure 2 plus the headline comparisons."""

    series: Dict[str, BufferRunSeries] = field(default_factory=dict)
    results: Dict[str, OnlineStudyResult] = field(default_factory=dict)

    def mean_throughput(self, buffer_kind: str) -> float:
        return self.series[buffer_kind].mean_throughput

    def reservoir_speedup_over_fifo(self) -> float:
        fifo = self.mean_throughput("fifo")
        if fifo <= 0:
            return float("nan")
        return self.mean_throughput("reservoir") / fifo

    def summary_rows(self) -> List[dict]:
        return [
            {
                "buffer": kind,
                "mean_throughput": run.mean_throughput,
                "total_batches": run.total_batches,
                "max_population": run.max_population,
            }
            for kind, run in self.series.items()
        ]


def _series_from_result(buffer_kind: str, result: OnlineStudyResult) -> BufferRunSeries:
    metrics = result.metrics
    times, values = metrics.throughput.series()
    population = metrics.buffer_population
    return BufferRunSeries(
        buffer_kind=buffer_kind,
        throughput_times=times,
        throughput_values=values,
        population_times=np.asarray(population.times),
        population_values=np.asarray(population.sizes),
        mean_throughput=result.mean_throughput,
        total_batches=result.total_batches,
        max_population=population.max_population(),
    )


def run_fig2_throughput(
    scale: Optional[ExperimentScale] = None,
    buffer_kinds: tuple = BUFFER_KINDS,
) -> Fig2Result:
    """Run the Figure 2 experiment: one online study per buffer policy.

    Each study uses the same ensemble (same seed, same series submissions) so
    the only variable is the buffer implementation, as in the paper.
    """
    scale = scale or default_scale()
    outcome = Fig2Result()
    for kind in buffer_kinds:
        case = build_case(scale)  # fresh sampler so every run sees the same design
        result = run_online_with_buffer(kind, scale=scale, num_ranks=1, case=case,
                                        validation=None, use_series=True)
        outcome.results[kind] = result
        outcome.series[kind] = _series_from_result(kind, result)
    return outcome
