"""Figure 4: training and validation losses per buffer policy vs offline (1 epoch).

All settings see the same unique samples; they differ only in how those
samples are ordered into batches.  FIFO overfits (low training loss, high
validation loss), FIRO mitigates the bias, the Reservoir matches the
uniformly-shuffled one-epoch offline reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.results import OfflineStudyResult, OnlineStudyResult
from repro.experiments.common import (
    ExperimentScale,
    build_case,
    build_validation,
    default_scale,
    run_offline_baseline,
    run_online_with_buffer,
)

SETTINGS = ("fifo", "firo", "reservoir", "offline")


@dataclass
class LossCurves:
    """Train/validation loss curves of one setting."""

    setting: str
    train_batches: np.ndarray
    train_losses: np.ndarray
    val_batches: np.ndarray
    val_losses: np.ndarray
    best_val_loss: float
    final_train_loss: float
    total_batches: int
    wall_time: float


@dataclass
class Fig4Result:
    """All curves of Figure 4 plus the Table-1-style summary."""

    curves: Dict[str, LossCurves] = field(default_factory=dict)

    def best_val(self, setting: str) -> float:
        return self.curves[setting].best_val_loss

    def generalization_gap(self, setting: str) -> float:
        """Validation minus training loss at end of run (overfitting indicator)."""
        curve = self.curves[setting]
        return float(curve.val_losses[-1] - curve.train_losses[-1]) if curve.val_losses.size else float("nan")

    def summary_rows(self) -> list[dict]:
        return [
            {
                "setting": name,
                "best_val_mse": curve.best_val_loss,
                "final_train_loss": curve.final_train_loss,
                "batches": curve.total_batches,
                "wall_time_s": curve.wall_time,
            }
            for name, curve in self.curves.items()
        ]


def _curves_from_online(setting: str, result: OnlineStudyResult) -> LossCurves:
    losses = result.metrics.losses
    return LossCurves(
        setting=setting,
        train_batches=np.asarray(losses.train_batches),
        train_losses=np.asarray(losses.train_losses),
        val_batches=np.asarray(losses.val_batches),
        val_losses=np.asarray(losses.val_losses),
        best_val_loss=losses.best_validation_loss,
        final_train_loss=losses.final_training_loss,
        total_batches=result.total_batches,
        wall_time=result.total_elapsed,
    )


def _curves_from_offline(result: OfflineStudyResult) -> LossCurves:
    losses = result.metrics.losses
    return LossCurves(
        setting="offline",
        train_batches=np.asarray(losses.train_batches),
        train_losses=np.asarray(losses.train_losses),
        val_batches=np.asarray(losses.val_batches),
        val_losses=np.asarray(losses.val_losses),
        best_val_loss=losses.best_validation_loss,
        final_train_loss=losses.final_training_loss,
        total_batches=int(result.training.summary.get("total_batches", 0)),
        wall_time=result.total_elapsed,
    )


def run_fig4_quality(
    scale: Optional[ExperimentScale] = None,
    settings: tuple = SETTINGS,
) -> Fig4Result:
    """Train the surrogate under each buffer policy plus the 1-epoch offline baseline."""
    scale = scale or default_scale()
    case = build_case(scale)
    validation = build_validation(case, scale)
    outcome = Fig4Result()
    for setting in settings:
        run_case = build_case(scale)  # identical design for every setting
        if setting == "offline":
            result = run_offline_baseline(
                scale=scale, num_epochs=1, num_ranks=1, case=run_case, validation=validation
            )
            outcome.curves[setting] = _curves_from_offline(result)
        else:
            online = run_online_with_buffer(
                setting, scale=scale, num_ranks=1, case=run_case, validation=validation
            )
            outcome.curves[setting] = _curves_from_online(setting, online)
    return outcome
