"""Figure 5 / Table 1: multi-GPU scaling of the buffers.

Training is repeated for 1, 2 and 4 server ranks ("GPUs").  The x-axis of
Figure 5 is the number of simulation time steps seen (n_s = n_b * b * n_GPU);
Table 1 summarises minimum validation MSE and mean throughput.  The paper's
findings: only the Reservoir scales its throughput with the GPU count, and it
consistently reaches the lowest validation loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.common import (
    ExperimentScale,
    build_case,
    build_validation,
    default_scale,
    run_offline_baseline,
    run_online_with_buffer,
)

BUFFER_KINDS = ("fifo", "firo", "reservoir")


@dataclass
class ScalingCurve:
    """Validation loss vs samples seen for one (buffer, gpu count) setting."""

    buffer_kind: str
    num_gpus: int
    samples_seen: np.ndarray
    val_losses: np.ndarray
    best_val_loss: float
    mean_throughput: float
    total_batches: int


@dataclass
class Fig5Result:
    """All scaling curves, keyed by (buffer, num_gpus)."""

    curves: Dict[Tuple[str, int], ScalingCurve] = field(default_factory=dict)
    offline_reference: Dict[int, float] = field(default_factory=dict)

    def throughput(self, buffer_kind: str, num_gpus: int) -> float:
        return self.curves[(buffer_kind, num_gpus)].mean_throughput

    def throughput_scaling(self, buffer_kind: str, gpu_counts: Sequence[int] = (1, 4)) -> float:
        """Throughput ratio between the largest and smallest GPU counts."""
        low, high = min(gpu_counts), max(gpu_counts)
        base = self.throughput(buffer_kind, low)
        if base <= 0:
            return float("nan")
        return self.throughput(buffer_kind, high) / base

    def best_val(self, buffer_kind: str, num_gpus: int) -> float:
        return self.curves[(buffer_kind, num_gpus)].best_val_loss

    def summary_rows(self) -> list[dict]:
        rows = []
        for (buffer_kind, num_gpus), curve in sorted(self.curves.items(), key=lambda kv: (kv[0][1], kv[0][0])):
            rows.append(
                {
                    "buffer": buffer_kind,
                    "gpus": num_gpus,
                    "best_val_mse": curve.best_val_loss,
                    "mean_throughput": curve.mean_throughput,
                    "batches": curve.total_batches,
                }
            )
        return rows


def run_fig5_multigpu(
    scale: Optional[ExperimentScale] = None,
    gpu_counts: Sequence[int] = (1, 2, 4),
    buffer_kinds: Sequence[str] = BUFFER_KINDS,
    include_offline: bool = False,
) -> Fig5Result:
    """Run every (buffer, gpu count) combination on the same ensemble design."""
    scale = scale or default_scale()
    case = build_case(scale)
    validation = build_validation(case, scale)
    outcome = Fig5Result()
    for num_gpus in gpu_counts:
        for buffer_kind in buffer_kinds:
            run_case = build_case(scale)
            result = run_online_with_buffer(
                buffer_kind, scale=scale, num_ranks=num_gpus, case=run_case, validation=validation
            )
            losses = result.metrics.losses
            outcome.curves[(buffer_kind, num_gpus)] = ScalingCurve(
                buffer_kind=buffer_kind,
                num_gpus=num_gpus,
                samples_seen=np.asarray(losses.val_samples),
                val_losses=np.asarray(losses.val_losses),
                best_val_loss=losses.best_validation_loss,
                mean_throughput=result.mean_throughput,
                total_batches=result.total_batches,
            )
        if include_offline:
            offline = run_offline_baseline(
                scale=scale, num_epochs=1, num_ranks=num_gpus,
                case=build_case(scale), validation=validation,
            )
            outcome.offline_reference[num_gpus] = offline.best_validation_loss
    return outcome
