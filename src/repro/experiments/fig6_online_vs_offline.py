"""Figure 6 / headline claim: online (large ensemble) vs multi-epoch offline.

The offline baseline trains for many epochs on a small fixed dataset (and
overfits: its validation loss plateaus while the training loss keeps going
down); online training streams a much larger ensemble through the Reservoir
once and reaches a lower validation loss — the paper reports a 47 %
improvement at 4 GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.results import improvement_percent
from repro.experiments.common import (
    ExperimentScale,
    build_case,
    build_validation,
    default_scale,
    run_offline_baseline,
    run_online_with_buffer,
)


@dataclass
class Fig6Result:
    """Curves and headline numbers of the online-vs-offline comparison."""

    offline_train_samples: np.ndarray
    offline_train_losses: np.ndarray
    offline_val_samples: np.ndarray
    offline_val_losses: np.ndarray
    online_train_samples: np.ndarray
    online_train_losses: np.ndarray
    online_val_samples: np.ndarray
    online_val_losses: np.ndarray
    offline_best_val: float
    online_best_val: float
    offline_epochs: int
    online_unique_samples: int
    offline_unique_samples: int
    improvement_pct: float
    offline_overfit_gap: float
    online_overfit_gap: float


def run_fig6_online_vs_offline(
    scale: Optional[ExperimentScale] = None,
    offline_epochs: int = 8,
    online_simulation_factor: int = 4,
    num_ranks: int = 1,
) -> Fig6Result:
    """Multi-epoch offline on a small dataset vs online Reservoir on a larger ensemble.

    ``online_simulation_factor`` scales how many more unique simulations the
    online run sees (the paper uses 80x: 20 000 vs 250); the scaled default
    keeps the same direction while staying single-node friendly.
    """
    scale = scale or default_scale()
    case = build_case(scale)
    validation = build_validation(case, scale)

    offline = run_offline_baseline(
        scale=scale,
        num_epochs=offline_epochs,
        num_ranks=num_ranks,
        case=build_case(scale),
        validation=validation,
    )

    online_sims = scale.num_simulations * online_simulation_factor
    online = run_online_with_buffer(
        "reservoir",
        scale=scale,
        num_ranks=num_ranks,
        case=build_case(scale),
        validation=validation,
        use_series=False,
        num_simulations=online_sims,
    )

    off_losses = offline.metrics.losses
    on_losses = online.metrics.losses
    offline_gap = (
        float(off_losses.val_losses[-1] - off_losses.train_losses[-1])
        if off_losses.val_losses else float("nan")
    )
    online_gap = (
        float(on_losses.val_losses[-1] - on_losses.train_losses[-1])
        if on_losses.val_losses else float("nan")
    )
    return Fig6Result(
        offline_train_samples=np.asarray(off_losses.train_samples),
        offline_train_losses=np.asarray(off_losses.train_losses),
        offline_val_samples=np.asarray(off_losses.val_samples),
        offline_val_losses=np.asarray(off_losses.val_losses),
        online_train_samples=np.asarray(on_losses.train_samples),
        online_train_losses=np.asarray(on_losses.train_losses),
        online_val_samples=np.asarray(on_losses.val_samples),
        online_val_losses=np.asarray(on_losses.val_losses),
        offline_best_val=offline.best_validation_loss,
        online_best_val=online.best_validation_loss,
        offline_epochs=offline_epochs,
        online_unique_samples=online.unique_samples,
        offline_unique_samples=offline.unique_samples,
        improvement_pct=improvement_percent(offline.best_validation_loss, online.best_validation_loss),
        offline_overfit_gap=offline_gap,
        online_overfit_gap=online_gap,
    )
