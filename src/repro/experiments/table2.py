"""Table 2: large-scale online vs offline comparison.

The paper's Table 2 compares, at 4 GPUs:

* offline: 2 000 cores for generation, 100 GB / 25 000 unique samples, 24.5 h
  total, MSE 25.1, 38 samples/s;
* online (Reservoir): 5 120 cores, 8 TB / 2 000 000 unique samples, 1.97 h
  total, MSE 13.2, 477 samples/s — a ~47 % better MSE and ~13x the batch
  throughput.

Two complementary reproductions are provided:

* ``run_table2`` runs a *measured*, scaled-down version of both settings with
  the real framework (the online run sees several times more unique
  simulations than the offline one, at the same wall-clock order);
* ``extrapolate_table2`` uses the discrete-event performance model with the
  paper's full-scale parameters to reproduce the shape of the published
  numbers (hours, samples/s, storage) without the supercomputer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.results import improvement_percent
from repro.experiments.common import (
    ExperimentScale,
    build_case,
    build_validation,
    default_scale,
    run_offline_baseline,
    run_online_with_buffer,
)
from repro.simulation.costs import ClusterCostModel, IOCostModel, SolverCostModel, TrainingCostModel
from repro.simulation.pipeline import PipelineSimulator, simulate_offline_pipeline


@dataclass
class Table2Row:
    """One row (setting) of Table 2."""

    setting: str
    generation_hours: float
    total_hours: float
    dataset_gb: float
    unique_samples: int
    mse: float
    throughput: float

    def as_dict(self) -> dict:
        return {
            "setting": self.setting,
            "generation_hours": self.generation_hours,
            "total_hours": self.total_hours,
            "dataset_gb": self.dataset_gb,
            "unique_samples": self.unique_samples,
            "mse": self.mse,
            "throughput": self.throughput,
        }


@dataclass
class Table2Result:
    """Measured rows + headline ratios."""

    offline: Table2Row
    online: Table2Row

    @property
    def throughput_ratio(self) -> float:
        if self.offline.throughput <= 0:
            return float("nan")
        return self.online.throughput / self.offline.throughput

    @property
    def mse_improvement_pct(self) -> float:
        return improvement_percent(self.offline.mse, self.online.mse)

    def rows(self) -> list[dict]:
        return [self.offline.as_dict(), self.online.as_dict()]


def run_table2(
    scale: Optional[ExperimentScale] = None,
    offline_epochs: int = 6,
    online_simulation_factor: int = 4,
    num_ranks: int = 2,
    offline_io_delay_per_sample: float = 0.002,
) -> Table2Result:
    """Measured (scaled-down) Table 2: offline multi-epoch vs online Reservoir.

    ``offline_io_delay_per_sample`` injects the per-sample file-read latency
    that dominates the paper's offline baseline; the online path streams
    directly from memory and does not pay it.
    """
    scale = scale or default_scale()
    case = build_case(scale)
    validation = build_validation(case, scale)

    offline = run_offline_baseline(
        scale=scale,
        num_epochs=offline_epochs,
        num_ranks=num_ranks,
        case=build_case(scale),
        validation=validation,
        io_delay_per_sample=offline_io_delay_per_sample,
    )
    online = run_online_with_buffer(
        "reservoir",
        scale=scale,
        num_ranks=num_ranks,
        case=build_case(scale),
        validation=validation,
        use_series=False,
        num_simulations=scale.num_simulations * online_simulation_factor,
    )

    offline_row = Table2Row(
        setting="offline",
        generation_hours=offline.generation_elapsed / 3600.0,
        total_hours=offline.total_elapsed / 3600.0,
        dataset_gb=offline.dataset_gigabytes,
        unique_samples=offline.unique_samples,
        mse=offline.best_validation_loss,
        throughput=offline.mean_throughput,
    )
    online_row = Table2Row(
        setting="online-reservoir",
        generation_hours=0.0,
        total_hours=online.total_elapsed / 3600.0,
        dataset_gb=online.dataset_gigabytes,
        unique_samples=online.unique_samples,
        mse=online.best_validation_loss,
        throughput=online.mean_throughput,
    )
    return Table2Result(offline=offline_row, online=online_row)


@dataclass
class Table2Extrapolation:
    """Full-scale estimates produced by the performance model."""

    offline_total_hours: float
    offline_throughput: float
    offline_dataset_gb: float
    online_total_hours: float
    online_throughput: float
    online_dataset_gb: float
    online_cost_euros: float
    offline_cost_euros: float
    offline_8tb_storage_cost_euros: float

    @property
    def throughput_ratio(self) -> float:
        return self.online_throughput / self.offline_throughput if self.offline_throughput else float("nan")


def extrapolate_table2() -> Table2Extrapolation:
    """Reproduce the shape of the paper's Table 2 with the performance model.

    Offline: 250 simulations (25 000 samples, 100 GB), 100 epochs, 2 000 cores
    for generation, 4 GPUs for training.  Online: 20 000 simulations (2 000 000
    samples, 8 TB), 512 concurrent clients of 10 cores, 4 GPUs, Reservoir.
    """
    grid_cells = 1000 * 1000
    model_parameters = 514_000_000
    solver_cost = SolverCostModel()
    training_cost = TrainingCostModel()
    io_cost = IOCostModel()
    cluster_cost = ClusterCostModel()

    offline = simulate_offline_pipeline(
        num_simulations=250,
        steps_per_simulation=100,
        grid_cells=grid_cells,
        cores_per_client=20,
        concurrent_clients=100,
        num_gpus=4,
        model_parameters=model_parameters,
        num_epochs=100,
        batch_size=10,
        solver_cost=solver_cost,
        training_cost=training_cost,
        io_cost=io_cost,
    )

    online_sim = PipelineSimulator(
        num_simulations=20_000,
        steps_per_simulation=100,
        grid_cells=grid_cells,
        cores_per_client=10,
        concurrent_clients=512,
        num_gpus=4,
        model_parameters=model_parameters,
        batch_size=10,
        buffer_kind="reservoir",
        buffer_capacity=6_000,
        buffer_threshold=1_000,
        tick=10.0,
        solver_cost=solver_cost,
        training_cost=training_cost,
    )
    online = online_sim.run()

    online_dataset_gb = 20_000 * 100 * grid_cells * 4 / 1e9
    offline_dataset_gb = offline.dataset_bytes / 1e9

    online_core_hours = 512 * 10 * online.total_hours
    online_gpu_hours = 4 * online.total_hours
    offline_core_hours = 2_000 * offline.generation_seconds / 3600.0
    offline_gpu_hours = 4 * offline.training_seconds / 3600.0

    return Table2Extrapolation(
        offline_total_hours=offline.total_hours,
        offline_throughput=offline.samples_per_second,
        offline_dataset_gb=offline_dataset_gb,
        online_total_hours=online.total_hours,
        online_throughput=online.mean_throughput,
        online_dataset_gb=online_dataset_gb,
        online_cost_euros=cluster_cost.compute_cost(online_core_hours, online_gpu_hours),
        offline_cost_euros=cluster_cost.compute_cost(offline_core_hours, offline_gpu_hours)
        + cluster_cost.storage_cost(offline_dataset_gb / 1000.0),
        offline_8tb_storage_cost_euros=cluster_cost.storage_cost(online_dataset_gb / 1000.0),
    )
