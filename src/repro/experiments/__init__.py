"""Experiment drivers: one module per paper table/figure.

Every driver exposes a ``run_*`` function returning plain dictionaries /
dataclasses with the same rows or series the paper reports, at a scaled-down
configuration that runs on a single node.  The benchmarks in ``benchmarks/``
call these drivers and print the resulting tables.
"""

from repro.experiments.common import (
    ExperimentScale,
    build_case,
    build_validation,
    default_scale,
    run_offline_baseline,
    run_online_with_buffer,
)
from repro.experiments.fig2_throughput import Fig2Result, run_fig2_throughput
from repro.experiments.fig3_occurrences import Fig3Result, run_fig3_occurrences
from repro.experiments.fig4_quality import Fig4Result, run_fig4_quality
from repro.experiments.fig5_multigpu import Fig5Result, run_fig5_multigpu
from repro.experiments.fig6_online_vs_offline import Fig6Result, run_fig6_online_vs_offline
from repro.experiments.table1 import Table1Row, run_table1
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.appendix_residency import ResidencyResult, run_residency_experiment
from repro.experiments.reporting import format_rows

__all__ = [
    "ExperimentScale",
    "default_scale",
    "build_case",
    "build_validation",
    "run_online_with_buffer",
    "run_offline_baseline",
    "run_fig2_throughput",
    "Fig2Result",
    "run_fig3_occurrences",
    "Fig3Result",
    "run_fig4_quality",
    "Fig4Result",
    "run_fig5_multigpu",
    "Fig5Result",
    "run_fig6_online_vs_offline",
    "Fig6Result",
    "run_table1",
    "Table1Row",
    "run_table2",
    "Table2Result",
    "run_residency_experiment",
    "ResidencyResult",
    "format_rows",
]
