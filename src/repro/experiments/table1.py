"""Table 1: training and throughput performance per buffer and GPU count.

The paper's Table 1 rows are (buffer, #GPUs) combinations of the 250-simulation
study, with columns: generation hours (offline only — online generation
overlaps training), total hours, minimum validation MSE and mean throughput in
samples/second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.common import (
    ExperimentScale,
    build_case,
    build_validation,
    default_scale,
    run_offline_baseline,
    run_online_with_buffer,
)

SETTINGS = ("offline", "fifo", "firo", "reservoir")


@dataclass
class Table1Row:
    """One row of Table 1."""

    buffer: str
    gpus: int
    generation_hours: float
    total_hours: float
    min_mse: float
    mean_throughput: float
    batches: int

    def as_dict(self) -> dict:
        return {
            "buffer": self.buffer,
            "gpus": self.gpus,
            "generation_hours": self.generation_hours,
            "total_hours": self.total_hours,
            "min_mse": self.min_mse,
            "mean_throughput": self.mean_throughput,
            "batches": self.batches,
        }


def run_table1(
    scale: Optional[ExperimentScale] = None,
    gpu_counts: Sequence[int] = (1, 2, 4),
    settings: Sequence[str] = SETTINGS,
) -> List[Table1Row]:
    """Run every (setting, gpu count) cell of Table 1 at the scaled configuration."""
    scale = scale or default_scale()
    case = build_case(scale)
    validation = build_validation(case, scale)
    rows: List[Table1Row] = []
    for num_gpus in gpu_counts:
        for setting in settings:
            if setting == "offline":
                result = run_offline_baseline(
                    scale=scale, num_epochs=1, num_ranks=num_gpus,
                    case=build_case(scale), validation=validation,
                )
                rows.append(
                    Table1Row(
                        buffer="offline",
                        gpus=num_gpus,
                        generation_hours=result.generation_elapsed / 3600.0,
                        total_hours=result.total_elapsed / 3600.0,
                        min_mse=result.best_validation_loss,
                        mean_throughput=result.mean_throughput,
                        batches=int(result.training.summary.get("total_batches", 0)),
                    )
                )
            else:
                result = run_online_with_buffer(
                    setting, scale=scale, num_ranks=num_gpus,
                    case=build_case(scale), validation=validation,
                )
                rows.append(
                    Table1Row(
                        buffer=setting,
                        gpus=num_gpus,
                        generation_hours=0.0,
                        total_hours=result.total_elapsed / 3600.0,
                        min_mse=result.best_validation_loss,
                        mean_throughput=result.mean_throughput,
                        batches=result.total_batches,
                    )
                )
    return rows
