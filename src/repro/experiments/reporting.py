"""Plain-text table formatting for the experiment drivers and benchmarks."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def _format_value(value: object, precision: int = 4) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e4 or (abs(value) < 1e-3 and value != 0.0):
            return f"{value:.3e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_rows(rows: Sequence[Dict[str, object]], title: str | None = None) -> str:
    """Format a list of dict rows as an aligned text table (paper-style)."""
    if not rows:
        return "(empty table)"
    columns: List[str] = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(width) for col, width in zip(columns, widths, strict=True))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for line in rendered:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(line, widths, strict=True)))
    return "\n".join(lines)


def format_histogram(histogram: Dict[int, int], title: str | None = None, width: int = 40) -> str:
    """ASCII bar chart of an occurrence histogram (Figure 3 style)."""
    if not histogram:
        return "(empty histogram)"
    lines = [title] if title else []
    peak = max(histogram.values())
    for occurrences in sorted(histogram):
        count = histogram[occurrences]
        bar = "#" * max(1, int(round(width * count / peak)))
        lines.append(f"{occurrences:>4}x | {bar} {count}")
    return "\n".join(lines)


def format_series(times: Iterable[float], values: Iterable[float], label: str,
    max_points: int = 20) -> str:
    """Compact textual rendering of a time series (for benchmark output)."""
    times = list(times)
    values = list(values)
    if not times:
        return f"{label}: (no data)"
    stride = max(1, len(times) // max_points)
    points = ", ".join(
        f"({times[i]:.2f}s, {values[i]:.1f})" for i in range(0, len(times), stride)
    )
    return f"{label}: {points}"
