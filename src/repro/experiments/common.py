"""Shared plumbing of the experiment drivers.

The paper's experiments all share the same use case (heat-equation surrogate)
and differ only in the buffer policy, the number of GPUs and the ensemble
size.  :class:`ExperimentScale` collects the scaled-down knobs; the helpers
build the case, the validation set, and run one online or offline training
with a given buffer policy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple, Union

from repro.core.config import OfflineStudyConfig, OnlineStudyConfig, SurrogateArchitecture
from repro.core.heat_usecase import HeatSurrogateCase, HeatSurrogateSpec
from repro.core.results import OfflineStudyResult, OnlineStudyResult
from repro.core.study import OfflineStudy, OnlineStudy
from repro.offline.storage import SimulationStore
from repro.parallel.transport import TransportConfig
from repro.server.validation import ValidationSet
from repro.solvers.heat2d import HeatEquationConfig


@dataclass(frozen=True)
class ExperimentScale:
    """Scaled-down experiment size (the paper values are in the docstrings).

    Paper: 1000x1000 grid, 100 steps/simulation, 250 simulations (25 000 unique
    samples), buffer capacity 6 000 and threshold 1 000 per rank, MLP 256x256,
    batch size 10, validation on 10 held-out simulations.
    """

    nx: int = 12
    ny: int = 12
    num_steps: int = 15
    num_simulations: int = 18
    series_sizes: Tuple[int, ...] = (8, 8, 2)
    hidden_sizes: Tuple[int, ...] = (32, 32)
    buffer_capacity: int = 64
    buffer_threshold: int = 16
    batch_size: int = 10
    validation_simulations: int = 3
    validation_interval: int = 20
    lr_step_samples: int = 600
    client_step_delay: float = 0.002
    inter_series_delay: float = 0.3
    max_concurrent_clients: int = 4
    batch_compute_delay: float = 0.002
    #: Per-sample read latency of the offline baseline.  The paper's offline
    #: training is I/O bound (4 MB samples over GPFS, ~38 samples/s on 4 GPUs);
    #: the scaled samples are tiny, so this delay restores the paper's regime
    #: where offline throughput sits well below the online data-production rate.
    offline_io_delay_per_sample: float = 0.004
    seed: int = 7

    @property
    def unique_samples(self) -> int:
        return self.num_simulations * self.num_steps


def default_scale() -> ExperimentScale:
    """The default scaled configuration used by tests and benchmarks."""
    return ExperimentScale()


def build_case(scale: ExperimentScale) -> HeatSurrogateCase:
    """Build the heat-equation surrogate case at the requested scale."""
    spec = HeatSurrogateSpec(
        solver=HeatEquationConfig(nx=scale.nx, ny=scale.ny, num_steps=scale.num_steps),
        architecture=SurrogateArchitecture(hidden_sizes=scale.hidden_sizes),
        seed=scale.seed,
    )
    return HeatSurrogateCase(spec)


def build_validation(case: HeatSurrogateCase, scale: ExperimentScale) -> ValidationSet:
    """Generate the held-out validation simulations (never used for training)."""
    return case.generate_validation_set(num_simulations=scale.validation_simulations)


def online_config(
    scale: ExperimentScale,
    buffer_kind: str,
    num_ranks: int = 1,
    use_series: bool = True,
    max_batches: Optional[int] = None,
    transport: Union[str, TransportConfig] = "inproc",
    transport_batch_size: Optional[int] = None,
    ring_slots: Optional[int] = None,
    ring_slot_bytes: Optional[int] = None,
    client_heartbeat_timeout: Optional[float] = None,
    num_shards: Optional[int] = None,
) -> OnlineStudyConfig:
    """Online study configuration for one buffer policy and GPU count.

    ``transport`` takes a backend name or a full
    :class:`~repro.parallel.transport.TransportConfig`; the remaining flat
    transport keywords are legacy conveniences folded into it here (through
    ``TransportConfig.resolve``, the same normalization the study config
    applies), so the returned config never trips the deprecation path.
    ``num_shards`` switches the study onto the sharded serving tier.
    """
    transport = TransportConfig.resolve(
        transport,
        transport_batch_size=transport_batch_size,
        ring_slots=ring_slots,
        ring_slot_bytes=ring_slot_bytes,
        client_heartbeat_timeout=client_heartbeat_timeout,
        num_shards=num_shards,
    )
    return OnlineStudyConfig(
        num_simulations=scale.num_simulations,
        series_sizes=list(scale.series_sizes) if use_series else None,
        max_concurrent_clients=scale.max_concurrent_clients,
        inter_series_delay=scale.inter_series_delay if use_series else 0.0,
        client_step_delay=scale.client_step_delay,
        num_ranks=num_ranks,
        buffer_kind=buffer_kind,
        buffer_capacity=scale.buffer_capacity,
        buffer_threshold=scale.buffer_threshold,
        batch_size=scale.batch_size,
        validation_interval=scale.validation_interval,
        max_batches=max_batches,
        lr_step_samples=scale.lr_step_samples,
        batch_compute_delay=scale.batch_compute_delay,
        seed=scale.seed,
        transport=transport,
    )


def run_online_with_buffer(
    buffer_kind: str,
    scale: ExperimentScale | None = None,
    num_ranks: int = 1,
    case: Optional[HeatSurrogateCase] = None,
    validation: Optional[ValidationSet] = None,
    use_series: bool = True,
    max_batches: Optional[int] = None,
    num_simulations: Optional[int] = None,
    transport: Union[str, TransportConfig] = "inproc",
    transport_batch_size: Optional[int] = None,
    ring_slots: Optional[int] = None,
    ring_slot_bytes: Optional[int] = None,
    client_heartbeat_timeout: Optional[float] = None,
    num_shards: Optional[int] = None,
) -> OnlineStudyResult:
    """Run one online study with the given buffer policy and rank count."""
    scale = scale or default_scale()
    case = case or build_case(scale)
    config = online_config(scale, buffer_kind, num_ranks, use_series, max_batches,
        transport=transport, transport_batch_size=transport_batch_size,
        ring_slots=ring_slots, ring_slot_bytes=ring_slot_bytes,
        client_heartbeat_timeout=client_heartbeat_timeout,
        num_shards=num_shards)
    if num_simulations is not None:
        config.num_simulations = num_simulations
        config.series_sizes = None
    study = OnlineStudy(case, config, validation=validation)
    return study.run()


def run_offline_baseline(
    scale: ExperimentScale | None = None,
    num_epochs: int = 1,
    num_ranks: int = 1,
    case: Optional[HeatSurrogateCase] = None,
    validation: Optional[ValidationSet] = None,
    store: Optional[SimulationStore] = None,
    store_dir=None,
    max_batches: Optional[int] = None,
    io_delay_per_sample: Optional[float] = None,
) -> OfflineStudyResult:
    """Run the offline baseline: generate a dataset to disk and train epochs."""
    scale = scale or default_scale()
    case = case or build_case(scale)
    if io_delay_per_sample is None:
        io_delay_per_sample = scale.offline_io_delay_per_sample
    config = OfflineStudyConfig(
        num_simulations=scale.num_simulations,
        num_epochs=num_epochs,
        num_ranks=num_ranks,
        batch_size=scale.batch_size,
        validation_interval=scale.validation_interval,
        lr_step_samples=scale.lr_step_samples,
        max_batches=max_batches,
        seed=scale.seed,
        store_dir=store_dir,
        io_delay_per_sample=io_delay_per_sample,
        batch_compute_delay=scale.batch_compute_delay,
    )
    study = OfflineStudy(case, config, validation=validation, store=store)
    return study.run()


def smaller(scale: ExperimentScale, **overrides) -> ExperimentScale:
    """Return a modified copy of a scale (convenience for tests)."""
    return replace(scale, **overrides)
