"""Appendix A: expected residency time of a sample in the Reservoir.

The paper proves that with random-overwrite insertion into a container of
capacity ``n``, the expected number of insertions an item survives is ``n-1``.
The experiment measures it empirically for several capacities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro.buffers.stats import expected_residency_time, measure_residency_times


@dataclass
class ResidencyResult:
    """Measured vs analytic residency times."""

    capacities: Sequence[int]
    measured_means: Dict[int, float] = field(default_factory=dict)
    analytic_means: Dict[int, float] = field(default_factory=dict)
    relative_errors: Dict[int, float] = field(default_factory=dict)

    def max_relative_error(self) -> float:
        return max(self.relative_errors.values(), default=float("nan"))

    def summary_rows(self) -> list[dict]:
        return [
            {
                "capacity": capacity,
                "measured_mean": self.measured_means[capacity],
                "analytic_mean": self.analytic_means[capacity],
                "relative_error": self.relative_errors[capacity],
            }
            for capacity in self.capacities
        ]


def run_residency_experiment(
    capacities: Sequence[int] = (16, 64, 256),
    insertions_per_capacity: int = 200,
    seed: int = 0,
) -> ResidencyResult:
    """Measure mean residency for each capacity and compare with ``n - 1``."""
    result = ResidencyResult(capacities=tuple(capacities))
    for capacity in capacities:
        num_insertions = capacity * insertions_per_capacity
        residencies = measure_residency_times(capacity, num_insertions, seed=seed)
        measured = float(np.mean(residencies)) if residencies.size else float("nan")
        analytic = expected_residency_time(capacity)
        result.measured_means[capacity] = measured
        result.analytic_means[capacity] = analytic
        result.relative_errors[capacity] = abs(measured - analytic) / analytic
    return result
