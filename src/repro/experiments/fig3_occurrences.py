"""Figure 3: histogram of sample occurrences in Reservoir batches.

The paper's Figure 3 counts, for Reservoir runs on 1, 2 and 4 GPUs, how many
times each simulation time step was selected in a training batch.  Most
samples appear a couple of times, rarely more than ~8, and the repetition rate
grows with the number of GPUs (each rank's buffer receives fewer fresh samples
while consuming more).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.experiments.common import (
    ExperimentScale,
    build_case,
    default_scale,
    run_online_with_buffer,
)


@dataclass
class Fig3Result:
    """Occurrence histograms per GPU count."""

    histograms: Dict[int, Dict[int, int]] = field(default_factory=dict)
    mean_occurrences: Dict[int, float] = field(default_factory=dict)
    max_occurrences: Dict[int, int] = field(default_factory=dict)

    def repetition_rate(self, num_gpus: int) -> float:
        """Average number of times a selected sample was used for ``num_gpus``."""
        return self.mean_occurrences[num_gpus]

    def summary_rows(self) -> list[dict]:
        return [
            {
                "gpus": gpus,
                "mean_occurrences": self.mean_occurrences[gpus],
                "max_occurrences": self.max_occurrences[gpus],
            }
            for gpus in sorted(self.histograms)
        ]


def _merge_histograms(per_rank_histograms: Sequence[Dict[int, int]]) -> Dict[int, int]:
    merged: Dict[int, int] = {}
    for histogram in per_rank_histograms:
        for occurrences, count in histogram.items():
            merged[occurrences] = merged.get(occurrences, 0) + count
    return dict(sorted(merged.items()))


def run_fig3_occurrences(
    scale: Optional[ExperimentScale] = None,
    gpu_counts: Sequence[int] = (1, 2, 4),
) -> Fig3Result:
    """Run the Reservoir study at several GPU counts and collect occurrence stats."""
    scale = scale or default_scale()
    outcome = Fig3Result()
    for num_gpus in gpu_counts:
        case = build_case(scale)
        result = run_online_with_buffer(
            "reservoir", scale=scale, num_ranks=num_gpus, case=case, use_series=True
        )
        histogram = _merge_histograms(
            [metrics.occurrence_histogram for metrics in result.server.per_rank_metrics]
        )
        outcome.histograms[num_gpus] = histogram
        counts = np.array([occ for occ, n in histogram.items() for _ in range(n)])
        outcome.mean_occurrences[num_gpus] = float(counts.mean()) if counts.size else 0.0
        outcome.max_occurrences[num_gpus] = int(counts.max()) if counts.size else 0
    return outcome
