"""Launcher: orchestrates client execution, series submission and restarts."""

from repro.launcher.launcher import ClientSpec, Launcher, LauncherConfig, LauncherReport

__all__ = ["Launcher", "LauncherConfig", "ClientSpec", "LauncherReport"]
