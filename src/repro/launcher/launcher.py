"""The launcher: runs the ensemble of simulation clients.

The paper's launcher interacts with the batch scheduler to start client jobs,
monitor them, kill unresponsive ones and restart failed ones.  Here client
"jobs" are Python callables executed on a bounded thread pool; the launcher
preserves the orchestration logic that matters for the experiments:

* **series submission**: clients are started in successive series (the paper
  uses 100/100/50 concurrent simulations), the next series starting only once
  the previous one completed — the cause of the production stalls visible in
  Figure 2;
* **bounded concurrency** inside a series (the "c concurrent clients" of the
  inter-simulation bias discussion);
* **fault tolerance**: a client raising an exception is restarted (up to a
  configurable number of attempts); restarted clients resend data which the
  server deduplicates through its message log.

With ``client_mode="process"`` each client runs in a forked OS process (the
paper's real deployment shape) instead of a pool thread: the process streams
through a multi-process transport backend, reports its step count over a
pipe, and a dead or killed process is restarted like a failed one — the
restarted client resends from step zero and the server deduplicates.  The
transport crosses the fork by reference but its live channels do not need
to: the ``tcp`` backend's forked clients inherit only the front door's
``(host, port)`` and dial their own connection (handshake included) at the
first push, so the same launcher drives shared-memory and socket backends
(the study picks the mode via ``TransportConfig.client_mode``).
"""

from __future__ import annotations

import multiprocessing as _std_mp
import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.client.simulation_client import SimulationClient, SimulationFailure
from repro.utils.logging import get_logger

logger = get_logger("launcher")

Array = np.ndarray

_fork_context = None


def _fork_mp():
    """The ``fork`` multiprocessing context, resolved lazily.

    Clients are forked, not spawned: the client factory closes over solver
    and transport objects that are inherited through fork without pickling.
    Resolving lazily keeps thread-mode studies importable on platforms
    without the fork start method (Windows); only ``client_mode="process"``
    requires it.
    """
    global _fork_context
    if _fork_context is None:
        try:
            _fork_context = _std_mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError(
                "client_mode='process' requires the 'fork' multiprocessing start "
                "method, which this platform does not provide"
            ) from exc
    return _fork_context


_noise_filter_installed = False


def _install_after_fork_noise_filter() -> None:
    """Silence a harmless CPython 3.11.7 artifact in forked clients.

    Forking a thread-heavy parent leaves a stale C-level exception in the
    child, so the first statement of ``threading._after_fork`` reports
    ``SystemError: ... returned a result with an exception set`` through
    ``sys.unraisablehook`` (the lock is created and the child runs
    correctly).  The hook is inherited through fork, so installing the
    filter in the parent suppresses exactly that report in every client
    process while delegating all other unraisables unchanged.
    """
    global _noise_filter_installed
    if _noise_filter_installed:
        return
    _noise_filter_installed = True
    import sys
    import threading

    previous = sys.unraisablehook

    def hook(unraisable, /):
        if (unraisable.exc_type is SystemError
                and getattr(unraisable.object, "__name__", "") == "_after_fork"
                and getattr(unraisable.object, "__module__", "") == threading.__name__):
            return
        previous(unraisable)

    sys.unraisablehook = hook


def _client_process_main(client: SimulationClient, solver_params: object, conn) -> None:
    """Entry point of a forked client process: run, report the outcome."""
    status, steps = "error", 0
    try:
        result = client.run(solver_params=solver_params)
        status, steps = "ok", result.steps_sent
    except SimulationFailure:
        status = "failed"
    except BaseException:  # noqa: BLE001 - report then exit, parent decides
        logger.exception("client %d process crashed", client.client_id)
    try:
        conn.send((status, steps))
        conn.close()
    except OSError:  # pragma: no cover - parent already gone
        pass


@dataclass
class ClientSpec:
    """Description of one ensemble member to run."""

    client_id: int
    parameters: Array
    solver_params: object | None = None
    fail_at_step: Optional[int] = None
    #: Fault injection: hang (stop sending, stay alive) after this many
    #: steps — the failure mode the heartbeat watchdog exists to catch.
    hang_at_step: Optional[int] = None


@dataclass
class LauncherConfig:
    """Launcher behaviour.

    Attributes
    ----------
    series_sizes:
        Number of clients in each successive series; the remaining clients (if
        the sizes do not cover all specs) form a final series.  ``None`` runs
        everything as a single series.
    max_concurrent_clients:
        Thread-pool width: how many clients execute simultaneously inside a
        series (models the finite CPU partition).
    inter_series_delay:
        Seconds to wait between the end of a series and the start of the next,
        reproducing the scheduling gap observed on the real machine.
    max_restarts:
        How many times a failing client is restarted before giving up.
    client_mode:
        ``"thread"`` runs clients on the pool threads; ``"process"`` forks one
        OS process per client attempt (required for real transport isolation,
        selected automatically by studies using the ``"mp"`` transport).
    process_join_timeout:
        In process mode, how long to wait for a client process before killing
        it and treating it as failed (``None`` waits forever).  This caps a
        client's *total runtime*; liveness is the heartbeat deadline below.
    heartbeat_timeout:
        In process mode, kill a client process whose last server-observed
        activity (hello/time step/heartbeat, tracked by the study's
        :class:`~repro.server.fault.HeartbeatMonitor`) is older than this
        many seconds — the paper's "watch for unresponsive clients, ask the
        launcher to properly kill and restart" protocol.  The killed client
        is restarted like a failed one (the server deduplicates the resend)
        and the kill is counted in ``TransportStats.unresponsive_kills``.
        ``None`` disables the watchdog.
    """

    series_sizes: Optional[Sequence[int]] = None
    max_concurrent_clients: int = 8
    inter_series_delay: float = 0.0
    max_restarts: int = 2
    client_mode: str = "thread"
    process_join_timeout: Optional[float] = None
    heartbeat_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_concurrent_clients <= 0:
            raise ValueError("max_concurrent_clients must be positive")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if self.client_mode not in ("thread", "process"):
            raise ValueError("client_mode must be 'thread' or 'process'")
        if self.heartbeat_timeout is not None and self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive or None")


@dataclass
class LauncherReport:
    """Outcome of the ensemble execution."""

    clients_completed: int = 0
    clients_failed: int = 0
    restarts: int = 0
    unresponsive_kills: int = 0
    series_boundaries: List[float] = field(default_factory=list)
    elapsed: float = 0.0
    per_client_steps: Dict[int, int] = field(default_factory=dict)
    #: Cluster-level breakdown of a sharded study: steps and completed
    #: clients per shard, keyed by shard index (empty when unsharded).
    per_shard_steps: Dict[int, int] = field(default_factory=dict)
    per_shard_clients: Dict[int, int] = field(default_factory=dict)

    @property
    def total_steps_sent(self) -> int:
        return int(sum(self.per_client_steps.values()))


class Launcher:
    """Run all ensemble members through a client factory, series by series."""

    def __init__(
        self,
        client_factory: Callable[[ClientSpec], SimulationClient],
        specs: Sequence[ClientSpec],
        config: LauncherConfig | None = None,
        heartbeat_monitor: object | None = None,
        transport: object | None = None,
        shard_ring: object | None = None,
    ) -> None:
        self.client_factory = client_factory
        self.specs = list(specs)
        self.config = config or LauncherConfig()
        #: Liveness tracker shared with the server (fed by its aggregators);
        #: required for the heartbeat watchdog in process client mode.
        self.heartbeat_monitor = heartbeat_monitor
        #: Transport backend, for kill accounting
        #: (``record_unresponsive_kill``) and for recycling a dead client's
        #: ring-slot lease (``release_client``) when restarts are exhausted.
        self.transport = transport
        #: Hash ring of a sharded study (``shard_for(client_id)``); when
        #: present, the report also aggregates per-shard totals so the
        #: cluster-level breakdown ships with the ensemble outcome.
        self.shard_ring = shard_ring
        self.report = LauncherReport()
        #: Guards every ``self.report`` mutation: restart and kill counters
        #: are incremented from concurrent pool threads, and ``+=`` on a
        #: shared attribute is not atomic — unguarded increments lose counts.
        self._report_lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._started = False

    # ----------------------------------------------------------------- series
    def _split_series(self) -> List[List[ClientSpec]]:
        sizes = self.config.series_sizes
        if not sizes:
            return [self.specs]
        series: List[List[ClientSpec]] = []
        cursor = 0
        for size in sizes:
            if cursor >= len(self.specs):
                break
            series.append(self.specs[cursor : cursor + size])
            cursor += size
        if cursor < len(self.specs):
            series.append(self.specs[cursor:])
        return series

    # ------------------------------------------------------------------- run
    def _run_client(self, spec: ClientSpec) -> int:
        """Run one client with restart-on-failure; returns steps sent."""
        if self.config.client_mode == "process":
            return self._run_client_in_process(spec)
        client = self.client_factory(spec)
        if spec.fail_at_step is not None:
            client.fail_at_step = spec.fail_at_step
        attempts = 0
        total_steps = 0
        while True:
            try:
                result = client.run(solver_params=spec.solver_params)
                total_steps += result.steps_sent
                return total_steps
            except SimulationFailure as exc:
                attempts += 1
                with self._report_lock:
                    self.report.restarts += 1
                logger.warning("client %d failed (%s), restart %d", spec.client_id, exc, attempts)
                if attempts > self.config.max_restarts:
                    raise
                client.prepare_restart()

    def _run_client_in_process(self, spec: ClientSpec) -> int:
        """Fork one OS process per attempt; restart on failure or death.

        The parent keeps its own copy of the client object: a restart
        increments ``restart_count`` and clears the injected fault, but the
        child's in-memory checkpoint dies with the process, so the restarted
        client resends everything and relies on the server's message log for
        deduplication — the non-checkpointed recovery path of the paper.
        """
        context = _fork_mp()
        _install_after_fork_noise_filter()
        client = self.client_factory(spec)
        if spec.fail_at_step is not None:
            client.fail_at_step = spec.fail_at_step
        if spec.hang_at_step is not None:
            client.hang_at_step = spec.hang_at_step
        attempts = 0
        while True:
            recv_conn, send_conn = context.Pipe(duplex=False)
            process = context.Process(
                target=_client_process_main,
                args=(client, spec.solver_params, send_conn),
                name=f"client-{spec.client_id}",
                daemon=True,
            )
            process.start()
            send_conn.close()
            self._watch_client_process(spec, process)
            status, steps = "killed", 0
            if recv_conn.poll(0):
                try:
                    status, steps = recv_conn.recv()
                except EOFError:
                    # A killed child closes the pipe without sending: poll()
                    # reports the EOF as readable, but there is no result.
                    pass
            recv_conn.close()
            if status == "ok":
                return steps
            if status == "error":
                raise SimulationFailure(
                    f"client {spec.client_id} process crashed (exit code {process.exitcode})"
                )
            attempts += 1
            with self._report_lock:
                self.report.restarts += 1
            logger.warning(
                "client %d process %s (exit code %s), restart %d",
                spec.client_id, status, process.exitcode, attempts,
            )
            if attempts > self.config.max_restarts:
                raise SimulationFailure(
                    f"client {spec.client_id} exhausted its {self.config.max_restarts} restarts"
                )
            client.prepare_restart()

    def _watch_client_process(self, spec: ClientSpec, process) -> None:
        """Join a client process under the runtime cap and heartbeat deadline.

        Blocks until the process exits or is killed.  Two guards run while
        waiting: ``process_join_timeout`` caps the total runtime, and
        ``heartbeat_timeout`` kills a client whose last server-observed
        activity (queried from the shared :class:`HeartbeatMonitor`) is too
        old — a client that was never observed is judged by its runtime
        instead, so a hang before the hello message is caught too.  A
        heartbeat kill is counted in the report and in
        ``TransportStats.unresponsive_kills``; the caller then restarts the
        client like any failed one and the server deduplicates the resend.
        """
        heartbeat_timeout = self.config.heartbeat_timeout
        if self.heartbeat_monitor is None:
            heartbeat_timeout = None
        runtime_cap = self.config.process_join_timeout
        if heartbeat_timeout is None and runtime_cap is None:
            process.join()
            return
        poll = 0.25
        if heartbeat_timeout is not None:
            poll = min(poll, heartbeat_timeout / 4)
        started = time.monotonic()
        deadline = None if runtime_cap is None else started + runtime_cap
        while True:
            process.join(poll)
            if not process.is_alive():
                return
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                logger.warning("client %d exceeded its runtime cap, killing process",
                    spec.client_id)
                break
            if heartbeat_timeout is not None:
                if self.heartbeat_monitor.is_finished(spec.client_id):
                    continue  # done, just tearing down: never heartbeat-kill
                silence = self.heartbeat_monitor.silence(spec.client_id, now=now)
                if silence is None:
                    # Never seen: judge by this attempt's runtime, with a 2x
                    # grace — the client may legitimately be waiting for a
                    # ring-slot lease or a slow solver warm-up before its
                    # first message reaches the server.
                    silence = (now - started) / 2
                else:
                    # A restarted attempt inherits the monitor record of its
                    # dead predecessor; activity cannot predate this attempt.
                    silence = min(silence, now - started)
                if silence > heartbeat_timeout:
                    logger.warning(
                        "client %d missed its heartbeat deadline (silent %.1fs), "
                        "killing process", spec.client_id, silence,
                    )
                    with self._report_lock:
                        self.report.unresponsive_kills += 1
                    recorder = getattr(self.transport, "record_unresponsive_kill", None)
                    if recorder is not None:
                        recorder()
                    break
        process.kill()
        process.join()

    def run(self) -> LauncherReport:
        """Execute every series and return the report (blocking)."""
        start = time.monotonic()
        series = self._split_series()
        for index, group in enumerate(series):
            if index > 0 and self.config.inter_series_delay > 0:
                time.sleep(self.config.inter_series_delay)
            with self._report_lock:
                self.report.series_boundaries.append(time.monotonic() - start)
            with ThreadPoolExecutor(
                max_workers=self.config.max_concurrent_clients,
                thread_name_prefix=f"client-series-{index}",
            ) as pool:
                futures = {pool.submit(self._run_client, spec): spec for spec in group}
                for future in as_completed(futures):
                    spec = futures[future]
                    try:
                        steps = future.result()
                    except Exception:  # noqa: BLE001 - client exhausted its restarts
                        with self._report_lock:
                            self.report.clients_failed += 1
                        logger.error("client %d permanently failed", spec.client_id)
                        # Recycle the dead client's ring-slot lease so a
                        # later ensemble member is not starved by it.
                        release = getattr(self.transport, "release_client", None)
                        if release is not None:
                            release(spec.client_id)
                    else:
                        with self._report_lock:
                            self.report.clients_completed += 1
                            self.report.per_client_steps[spec.client_id] = steps
        self._aggregate_shard_totals()
        with self._report_lock:
            self.report.elapsed = time.monotonic() - start
        return self.report

    def _aggregate_shard_totals(self) -> None:
        """Fold per-client steps into per-shard totals (sharded studies only)."""
        if self.shard_ring is None:
            return
        shard_for = self.shard_ring.shard_for
        with self._report_lock:
            per_client = dict(self.report.per_client_steps)
        per_shard_steps: Dict[int, int] = {}
        per_shard_clients: Dict[int, int] = {}
        for client_id, steps in per_client.items():
            shard = int(shard_for(client_id))
            per_shard_steps[shard] = per_shard_steps.get(shard, 0) + int(steps)
            per_shard_clients[shard] = per_shard_clients.get(shard, 0) + 1
        with self._report_lock:
            self.report.per_shard_steps = per_shard_steps
            self.report.per_shard_clients = per_shard_clients

    # ---------------------------------------------------------- async control
    def start(self) -> None:
        """Run the ensemble on a background thread (non-blocking)."""
        if self._started:
            raise RuntimeError("launcher already started")
        self._started = True
        self._thread = threading.Thread(target=self.run, name="launcher", daemon=True)
        self._thread.start()

    def join(self, timeout: Optional[float] = None) -> LauncherReport:
        """Wait for a background run started with :meth:`start`."""
        if self._thread is None:
            raise RuntimeError("launcher was not started")
        self._thread.join(timeout=timeout)
        return self.report

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()
