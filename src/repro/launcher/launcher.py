"""The launcher: runs the ensemble of simulation clients.

The paper's launcher interacts with the batch scheduler to start client jobs,
monitor them, kill unresponsive ones and restart failed ones.  Here client
"jobs" are Python callables executed on a bounded thread pool; the launcher
preserves the orchestration logic that matters for the experiments:

* **series submission**: clients are started in successive series (the paper
  uses 100/100/50 concurrent simulations), the next series starting only once
  the previous one completed — the cause of the production stalls visible in
  Figure 2;
* **bounded concurrency** inside a series (the "c concurrent clients" of the
  inter-simulation bias discussion);
* **fault tolerance**: a client raising an exception is restarted (up to a
  configurable number of attempts); restarted clients resend data which the
  server deduplicates through its message log.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.client.simulation_client import SimulationClient, SimulationFailure
from repro.utils.logging import get_logger

logger = get_logger("launcher")

Array = np.ndarray


@dataclass
class ClientSpec:
    """Description of one ensemble member to run."""

    client_id: int
    parameters: Array
    solver_params: object | None = None
    fail_at_step: Optional[int] = None


@dataclass
class LauncherConfig:
    """Launcher behaviour.

    Attributes
    ----------
    series_sizes:
        Number of clients in each successive series; the remaining clients (if
        the sizes do not cover all specs) form a final series.  ``None`` runs
        everything as a single series.
    max_concurrent_clients:
        Thread-pool width: how many clients execute simultaneously inside a
        series (models the finite CPU partition).
    inter_series_delay:
        Seconds to wait between the end of a series and the start of the next,
        reproducing the scheduling gap observed on the real machine.
    max_restarts:
        How many times a failing client is restarted before giving up.
    """

    series_sizes: Optional[Sequence[int]] = None
    max_concurrent_clients: int = 8
    inter_series_delay: float = 0.0
    max_restarts: int = 2

    def __post_init__(self) -> None:
        if self.max_concurrent_clients <= 0:
            raise ValueError("max_concurrent_clients must be positive")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")


@dataclass
class LauncherReport:
    """Outcome of the ensemble execution."""

    clients_completed: int = 0
    clients_failed: int = 0
    restarts: int = 0
    series_boundaries: List[float] = field(default_factory=list)
    elapsed: float = 0.0
    per_client_steps: Dict[int, int] = field(default_factory=dict)

    @property
    def total_steps_sent(self) -> int:
        return int(sum(self.per_client_steps.values()))


class Launcher:
    """Run all ensemble members through a client factory, series by series."""

    def __init__(
        self,
        client_factory: Callable[[ClientSpec], SimulationClient],
        specs: Sequence[ClientSpec],
        config: LauncherConfig | None = None,
    ) -> None:
        self.client_factory = client_factory
        self.specs = list(specs)
        self.config = config or LauncherConfig()
        self.report = LauncherReport()
        self._thread: Optional[threading.Thread] = None
        self._started = False

    # ----------------------------------------------------------------- series
    def _split_series(self) -> List[List[ClientSpec]]:
        sizes = self.config.series_sizes
        if not sizes:
            return [self.specs]
        series: List[List[ClientSpec]] = []
        cursor = 0
        for size in sizes:
            if cursor >= len(self.specs):
                break
            series.append(self.specs[cursor : cursor + size])
            cursor += size
        if cursor < len(self.specs):
            series.append(self.specs[cursor:])
        return series

    # ------------------------------------------------------------------- run
    def _run_client(self, spec: ClientSpec) -> int:
        """Run one client with restart-on-failure; returns steps sent."""
        client = self.client_factory(spec)
        if spec.fail_at_step is not None:
            client.fail_at_step = spec.fail_at_step
        attempts = 0
        total_steps = 0
        while True:
            try:
                result = client.run(solver_params=spec.solver_params)
                total_steps += result.steps_sent
                return total_steps
            except SimulationFailure as exc:
                attempts += 1
                self.report.restarts += 1
                logger.warning("client %d failed (%s), restart %d", spec.client_id, exc, attempts)
                if attempts > self.config.max_restarts:
                    raise
                client.prepare_restart()

    def run(self) -> LauncherReport:
        """Execute every series and return the report (blocking)."""
        start = time.monotonic()
        series = self._split_series()
        for index, group in enumerate(series):
            if index > 0 and self.config.inter_series_delay > 0:
                time.sleep(self.config.inter_series_delay)
            self.report.series_boundaries.append(time.monotonic() - start)
            with ThreadPoolExecutor(
                max_workers=self.config.max_concurrent_clients,
                thread_name_prefix=f"client-series-{index}",
            ) as pool:
                futures = {pool.submit(self._run_client, spec): spec for spec in group}
                for future in as_completed(futures):
                    spec = futures[future]
                    try:
                        steps = future.result()
                    except Exception:  # noqa: BLE001 - client exhausted its restarts
                        self.report.clients_failed += 1
                        logger.error("client %d permanently failed", spec.client_id)
                    else:
                        self.report.clients_completed += 1
                        self.report.per_client_steps[spec.client_id] = steps
        self.report.elapsed = time.monotonic() - start
        return self.report

    # ---------------------------------------------------------- async control
    def start(self) -> None:
        """Run the ensemble on a background thread (non-blocking)."""
        if self._started:
            raise RuntimeError("launcher already started")
        self._started = True
        self._thread = threading.Thread(target=self.run, name="launcher", daemon=True)
        self._thread.start()

    def join(self, timeout: Optional[float] = None) -> LauncherReport:
        """Wait for a background run started with :meth:`start`."""
        if self._thread is None:
            raise RuntimeError("launcher was not started")
        self._thread.join(timeout=timeout)
        return self.report

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()
