"""Client side of the framework: the simulation instrumentation API.

A *client* is one member of the ensemble: an instance of the simulation code
running with its own parameter vector ``X``.  The paper instruments the solver
with a minimal API (``init_communication`` / ``send`` / ``finalize``); the
same API is provided here, plus a ready-made :class:`SimulationClient` that
wraps any solver exposing ``iter_steps``.
"""

from repro.client.api import ClientAPI
from repro.client.simulation_client import ClientRunResult, SimulationClient, SimulationFailure

__all__ = ["ClientAPI", "SimulationClient", "ClientRunResult", "SimulationFailure"]
