"""A client that runs a solver instance and streams every time step.

This is the glue between a solver (anything exposing ``iter_steps(params)``)
and the :class:`repro.client.api.ClientAPI`.  It supports:

* an optional per-step delay emulating the compute cost of the full-scale
  solver (the scaled-down grids used in tests are much cheaper than the
  paper's 1000x1000 grid, so the delay restores a realistic production rate);
* fault injection (fail after a prescribed number of steps) and restart with
  checkpointing semantics: on restart the client resumes from the last
  checkpointed step, resending nothing that the server already received when
  checkpointing is enabled, or resending everything (for the server to
  deduplicate) when it is not.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Protocol, Tuple

import numpy as np

from repro.client.api import ClientAPI
from repro.parallel.transport import Transport
from repro.utils.exceptions import ReproError

Array = np.ndarray


class SimulationFailure(ReproError):
    """Raised by a client whose simulation failed (fault injection or real error)."""


class SupportsIterSteps(Protocol):
    """Protocol of the solver objects a client can drive."""

    def iter_steps(self, params) -> Iterator[Tuple[int, float, Array]]:  # pragma: no cover
        ...


@dataclass
class ClientRunResult:
    """Summary returned by :meth:`SimulationClient.run`."""

    client_id: int
    steps_sent: int
    elapsed: float
    restarted_from_step: int = 0
    failed_at_step: Optional[int] = None

    @property
    def completed(self) -> bool:
        return self.failed_at_step is None


@dataclass
class SimulationClient:
    """Run one ensemble member and stream its time steps to the server.

    Parameters
    ----------
    client_id:
        Ensemble-member identifier (also used for round-robin offsetting).
    parameters:
        The simulation input vector ``X``.
    solver:
        Object with ``iter_steps(parameters)`` yielding ``(step, time, field)``.
    router:
        Transport backend connecting to the server ranks.
    num_time_steps:
        Number of steps the simulation will produce (sent in the hello message).
    step_delay:
        Optional sleep after each computed step, emulating solver cost.
    fail_at_step:
        Fault injection: raise :class:`SimulationFailure` after sending this
        many steps (None disables).
    checkpoint_enabled:
        When true, restarts resume from the last completed step instead of
        recomputing (and resending) everything.
    send_batch_size:
        Client-side batching width handed to :class:`ClientAPI`: time steps
        accumulate per server rank and each rank's batch travels as one
        transport push (one packed buffer on the multi-process backend).
    """

    client_id: int
    parameters: Tuple[float, ...]
    solver: SupportsIterSteps
    router: Transport
    num_time_steps: int
    step_delay: float = 0.0
    send_batch_size: int = 1
    fail_at_step: Optional[int] = None
    #: Fault injection: after sending this many steps, stop making progress
    #: without exiting (an infinite sleep loop) — the unresponsive-client
    #: shape the launcher's heartbeat watchdog must kill.  Fires once: the
    #: injected hang is cleared on restart, like ``fail_at_step``.
    hang_at_step: Optional[int] = None
    checkpoint_enabled: bool = True
    restart_count: int = field(default=0, init=False)
    _checkpoint_step: int = field(default=0, init=False)

    def run(self, solver_params: object | None = None) -> ClientRunResult:
        """Execute the simulation, streaming each step; returns a run summary.

        ``solver_params`` is the object passed to ``solver.iter_steps`` (for the
        heat solver this is a :class:`HeatParameters`); when ``None`` the raw
        parameter tuple is used.
        """
        api = ClientAPI(self.router, self.client_id,
                        send_batch_size=self.send_batch_size)
        start = time.monotonic()
        params_obj = solver_params if solver_params is not None else self.parameters
        resume_from = self._checkpoint_step if self.checkpoint_enabled else 0

        api.init_communication(
            parameters=self.parameters,
            num_time_steps=self.num_time_steps,
            field_shape=(),
            restart_count=self.restart_count,
        )
        steps_sent = 0
        failed_at: Optional[int] = None
        try:
            for step, time_value, field_values in self.solver.iter_steps(params_obj):
                if self.fail_at_step is not None and step > self.fail_at_step:
                    raise SimulationFailure(
                        f"client {self.client_id} injected failure after step {self.fail_at_step}"
                    )
                if self.hang_at_step is not None and step > self.hang_at_step:
                    while True:  # unresponsive, not dead: only a kill ends this
                        time.sleep(0.05)
                if step <= resume_from:
                    # Checkpointed restart: this step was already delivered.
                    continue
                api.send(step, time_value, self.parameters, field_values)
                steps_sent += 1
                self._checkpoint_step = step
                if self.step_delay > 0:
                    time.sleep(self.step_delay)
        except SimulationFailure:
            # Steps still buffered client-side (send batching) died with the
            # connection; rewind the checkpoint below the oldest of them so a
            # checkpointed restart recomputes and resends them — the server
            # deduplicates the overlap, but it cannot recover a skipped step.
            undelivered = api.undelivered_steps()
            if undelivered:
                self._checkpoint_step = min(self._checkpoint_step, min(undelivered) - 1)
            failed_at = self._checkpoint_step
            raise
        finally:
            elapsed = time.monotonic() - start
            if failed_at is None:
                api.finalize_communication()
        return ClientRunResult(
            client_id=self.client_id,
            steps_sent=steps_sent,
            elapsed=elapsed,
            restarted_from_step=resume_from,
            failed_at_step=None,
        )

    def prepare_restart(self) -> None:
        """Bookkeeping before re-running a failed client (called by the launcher)."""
        self.restart_count += 1
        self.fail_at_step = None  # the injected fault fires only once
        self.hang_at_step = None
        if not self.checkpoint_enabled:
            self._checkpoint_step = 0


def make_heat_client_factory(
    solver_factory: Callable[[], SupportsIterSteps],
    router: Transport,
    num_time_steps: int,
    step_delay: float = 0.0,
) -> Callable[[int, Array], SimulationClient]:
    """Convenience factory used by the launcher to build heat-equation clients."""

    def factory(client_id: int, parameters: Array) -> SimulationClient:
        return SimulationClient(
            client_id=client_id,
            parameters=tuple(float(p) for p in np.asarray(parameters).ravel()),
            solver=solver_factory(),
            router=router,
            num_time_steps=num_time_steps,
            step_delay=step_delay,
        )

    return factory
