"""Minimal Melissa-like client API.

Mirrors the paper's three-call instrumentation contract:

* ``init_communication`` — connect the client to every server rank and
  announce the simulation metadata;
* ``send`` — stream one time step as soon as it is computed (the field is
  converted to float32 before transmission, as the paper's clients do);
* ``finalize_communication`` — signal that no more data will be sent.

The API object keeps the per-client sequence number used by the server for
deduplication after a client restart.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.parallel.messages import ClientFinished, ClientHello, Heartbeat, TimeStepMessage
from repro.parallel.transport import Connection, Transport

Array = np.ndarray


class ClientAPI:
    """Streaming API handed to an instrumented simulation code.

    ``send_batch_size`` enables client-side batching: time steps accumulate
    per server rank and each rank's batch is pushed as one transport call
    (one packed buffer on the multi-process backend).  Control messages flush
    pending batches first, so the server never observes a ``ClientFinished``
    ahead of data sent before it.
    """

    def __init__(self, transport: Transport, client_id: int, send_batch_size: int = 1) -> None:
        self._transport = transport
        self.client_id = int(client_id)
        self.send_batch_size = int(send_batch_size)
        self._connection: Connection | None = None
        self._sequence = 0
        self._finalized = False

    # ------------------------------------------------------------------ setup
    def init_communication(
        self,
        parameters: Sequence[float],
        num_time_steps: int,
        field_shape: Tuple[int, ...],
        restart_count: int = 0,
    ) -> None:
        """Connect to the server and announce this client's metadata."""
        if self._connection is not None:
            raise RuntimeError("init_communication called twice")
        self._connection = self._transport.connect(
            self.client_id, batch_size=self.send_batch_size
        )
        hello = ClientHello(
            client_id=self.client_id,
            parameters=tuple(float(p) for p in parameters),
            num_time_steps=int(num_time_steps),
            field_shape=tuple(int(s) for s in field_shape),
            restart_count=int(restart_count),
        )
        self._connection.broadcast(hello)

    @property
    def connected(self) -> bool:
        return self._connection is not None and not self._finalized

    def _require_connection(self) -> Connection:
        if self._connection is None:
            raise RuntimeError("init_communication must be called before sending data")
        if self._finalized:
            raise RuntimeError("cannot send after finalize_communication")
        return self._connection

    # ------------------------------------------------------------------- send
    def send(
        self,
        time_step: int,
        time_value: float,
        parameters: Sequence[float],
        field: Array,
    ) -> int:
        """Stream one time step to the server; returns the server rank used.

        The field is flattened and converted to float32 on the client, which is
        the preprocessing the paper performs in situ to avoid overloading the
        server.

        Ownership: the message may keep a zero-copy view of ``field`` (when
        it is already flat float32), so the caller must not mutate the array
        after sending it — solvers hand over a freshly built field per step.
        """
        connection = self._require_connection()
        payload = np.asarray(field, dtype=np.float32).ravel()
        message = TimeStepMessage(
            client_id=self.client_id,
            time_step=int(time_step),
            time_value=float(time_value),
            parameters=tuple(float(p) for p in parameters),
            payload=payload,
            sequence_number=self._sequence,
        )
        self._sequence += 1
        return connection.send_round_robin(message)

    def send_heartbeat(self, timestamp: float, progress: float) -> None:
        """Send a liveness signal to server rank 0 (fault-detection channel).

        Pending batches are flushed first so the reported progress never
        overstates what the server has actually received.
        """
        connection = self._require_connection()
        connection.flush()
        connection.send_to(0, Heartbeat(client_id=self.client_id, timestamp=timestamp,
                                        progress=progress))

    def undelivered_steps(self) -> list[int]:
        """Time steps buffered client-side (batching) and not yet pushed.

        A failing client uses this to rewind its checkpoint below any step
        that never reached the transport, so a checkpointed restart cannot
        silently skip samples the server never saw.
        """
        if self._connection is None:
            return []
        return sorted(
            message.time_step
            for message in self._connection.pending()
            if isinstance(message, TimeStepMessage)
        )

    # --------------------------------------------------------------- teardown
    def finalize_communication(self) -> None:
        """Tell every server rank that this client will not send more data."""
        connection = self._require_connection()
        connection.broadcast(ClientFinished(client_id=self.client_id, total_sent=self._sequence))
        self._finalized = True

    @property
    def messages_sent(self) -> int:
        """Number of time-step messages sent so far."""
        return self._sequence
