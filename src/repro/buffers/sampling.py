"""Fast uniform index sampling for the buffers' batched hot path.

The batched ``get_batch`` path replaces per-sample scalar RNG calls with one
vectorized draw per batch.  ``Generator.integers``/``Generator.choice`` carry
several microseconds of call overhead each, which matters at the per-batch
granularity of the training loop, so these helpers draw uniform indices via a
single ``Generator.random`` call (the cheapest vectorized primitive) and do
the remaining arithmetic in plain Python.

``sample_without_replacement`` uses rejection sampling: iid uniform draws with
duplicates discarded yield exactly the distribution of sequential draws from a
shrinking population (the per-sample semantics of the FIRO/drain paths).  When
the requested size is a large fraction of the population, rejection degrades,
so it falls back to ``Generator.choice``.

Both helpers return *positions* into a policy's live-slot list (not row slots
themselves): the columnar buffers translate positions to row slots and hand
the slot array to the column store for one fancy-indexed gather.  Returning
plain Python ints is deliberate — the policies consume them with list
swap-remove operations, where scalar ``ndarray`` items would pay a boxing
penalty per access.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["sample_with_replacement", "sample_without_replacement"]


def sample_with_replacement(rng: np.random.Generator, population: int, size: int) -> List[int]:
    """``size`` iid uniform indices in ``[0, population)`` as Python ints."""
    return (rng.random(size) * population).astype(np.intp).tolist()


def sample_without_replacement(
    rng: np.random.Generator, population: int, size: int
) -> List[int]:
    """``size`` distinct uniform indices in ``[0, population)``, in draw order.

    Distributionally identical to drawing one uniform index at a time from the
    shrinking remainder (first-occurrence order of an iid stream is exactly
    that process).
    """
    if size >= population:
        return rng.permutation(population).tolist()
    if 4 * size >= population:
        return rng.choice(population, size=size, replace=False).tolist()
    draws = (rng.random(size) * population).astype(np.intp).tolist()
    taken = set(draws)
    if len(taken) == size:  # no collision: the common case for size << population
        return draws
    chosen: List[int] = []
    taken.clear()
    while True:
        for index in draws:
            if index not in taken:
                taken.add(index)
                chosen.append(index)
        missing = size - len(chosen)
        if missing == 0:
            return chosen
        draws = (rng.random(missing) * population).astype(np.intp).tolist()
