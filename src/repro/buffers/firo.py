"""FIRO training buffer (first in, random out)."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.buffers.base import TrainingBuffer
from repro.buffers.sampling import sample_without_replacement
from repro.utils.seeding import derive_rng

Array = np.ndarray


class FIROBuffer(TrainingBuffer):
    """First-in random-out buffer with a minimum-population threshold.

    Behaviour (Section 3.2.3 of the paper):

    * newly received samples are appended at the end of a list;
    * samples are *evicted upon reading*, drawn from a uniformly random
      position, which de-biases batches relative to FIFO;
    * batches may only be extracted while the population exceeds the
      threshold; the threshold is set to zero once data production is over so
      the remaining samples can be consumed.

    Each sample is still seen exactly once, so the consumption rate cannot
    exceed the production rate in steady state — the limitation the Reservoir
    removes.

    Columnar layout: ``_slots`` is the position-addressed list of live row
    slots (the old record list, with integers in place of records) and
    ``_free`` the stack of unused slots; random eviction is the same
    swap-with-tail on ``_slots``, so the RNG consumption — and hence the
    drawn sequence — is unchanged from the per-record implementation.
    """

    def __init__(self, capacity: int, threshold: int = 0, seed: int = 0) -> None:
        super().__init__(capacity=capacity, threshold=threshold)
        self._slots: List[int] = []
        self._free: List[int] = list(range(capacity - 1, -1, -1))  # pop() -> 0, 1, ...
        self._rng = derive_rng("firo-buffer", seed)

    def _size_locked(self) -> int:
        return len(self._slots)

    def _can_put_locked(self) -> bool:
        return len(self._slots) < self.capacity

    def _can_get_locked(self) -> bool:
        if not self._slots:
            return False
        if self._reception_over:
            # Threshold released at end of reception: drain whatever remains.
            return True
        return len(self._slots) > self.threshold

    def _take_slots_locked(self, want: int) -> Array:
        take = min(want, self.capacity - len(self._slots))
        free = self._free
        # Slice instead of ``take`` repeated pop() calls: same slots in the
        # same (reversed-tail) order, without a Python-level loop.
        taken = free[-take:][::-1] if take else []
        del free[len(free) - take :]
        self._slots.extend(taken)
        return np.asarray(taken, dtype=np.intp)

    def _draw_slot_locked(self) -> int:
        slots = self._slots
        index = int(self._rng.integers(len(slots)))
        # Swap-remove keeps eviction O(1); order within the list is irrelevant
        # because reads pick uniformly random positions anyway.
        slot = slots[index]
        slots[index] = slots[-1]
        slots.pop()
        self._free.append(slot)
        return slot

    def _draw_slots_locked(self, max_count: int) -> Array:
        # Sequential uniform draws from the shrinking population are exactly a
        # uniform without-replacement sample, so the whole batch needs one
        # vectorized RNG call.  While reception is ongoing the population may
        # only be drawn down to the threshold.
        available = len(self._slots)
        if not self._reception_over:
            available -= self.threshold
        take = min(max_count, available)
        if take <= 0:
            return np.empty(0, dtype=np.intp)
        chosen = sample_without_replacement(self._rng, len(self._slots), take)
        slots = self._slots
        drawn = [slots[index] for index in chosen]
        for index in sorted(chosen, reverse=True):
            slots[index] = slots[-1]
            slots.pop()
        self._free.extend(drawn)
        return np.asarray(drawn, dtype=np.intp)
