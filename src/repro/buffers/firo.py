"""FIRO training buffer (first in, random out)."""

from __future__ import annotations

from typing import List

from repro.buffers.base import SampleRecord, TrainingBuffer
from repro.utils.seeding import derive_rng


class FIROBuffer(TrainingBuffer):
    """First-in random-out buffer with a minimum-population threshold.

    Behaviour (Section 3.2.3 of the paper):

    * newly received samples are appended at the end of a list;
    * samples are *evicted upon reading*, drawn from a uniformly random
      position, which de-biases batches relative to FIFO;
    * batches may only be extracted while the population exceeds the
      threshold; the threshold is set to zero once data production is over so
      the remaining samples can be consumed.

    Each sample is still seen exactly once, so the consumption rate cannot
    exceed the production rate in steady state — the limitation the Reservoir
    removes.
    """

    def __init__(self, capacity: int, threshold: int = 0, seed: int = 0) -> None:
        super().__init__(capacity=capacity, threshold=threshold)
        self._items: List[SampleRecord] = []
        self._rng = derive_rng("firo-buffer", seed)

    def _size_locked(self) -> int:
        return len(self._items)

    def _can_put_locked(self) -> bool:
        return len(self._items) < self.capacity

    def _can_get_locked(self) -> bool:
        if not self._items:
            return False
        if self._reception_over:
            # Threshold released at end of reception: drain whatever remains.
            return True
        return len(self._items) > self.threshold

    def _do_put_locked(self, record: SampleRecord) -> None:
        self._items.append(record)

    def _do_get_locked(self) -> SampleRecord:
        index = int(self._rng.integers(len(self._items)))
        # Swap-remove keeps eviction O(1); order within the list is irrelevant
        # because reads pick uniformly random positions anyway.
        self._items[index], self._items[-1] = self._items[-1], self._items[index]
        return self._items.pop()
