"""FIRO training buffer (first in, random out)."""

from __future__ import annotations

from typing import List

from repro.buffers.base import SampleRecord, TrainingBuffer
from repro.buffers.sampling import sample_without_replacement
from repro.utils.seeding import derive_rng


class FIROBuffer(TrainingBuffer):
    """First-in random-out buffer with a minimum-population threshold.

    Behaviour (Section 3.2.3 of the paper):

    * newly received samples are appended at the end of a list;
    * samples are *evicted upon reading*, drawn from a uniformly random
      position, which de-biases batches relative to FIFO;
    * batches may only be extracted while the population exceeds the
      threshold; the threshold is set to zero once data production is over so
      the remaining samples can be consumed.

    Each sample is still seen exactly once, so the consumption rate cannot
    exceed the production rate in steady state — the limitation the Reservoir
    removes.
    """

    def __init__(self, capacity: int, threshold: int = 0, seed: int = 0) -> None:
        super().__init__(capacity=capacity, threshold=threshold)
        self._items: List[SampleRecord] = []
        self._rng = derive_rng("firo-buffer", seed)

    def _size_locked(self) -> int:
        return len(self._items)

    def _can_put_locked(self) -> bool:
        return len(self._items) < self.capacity

    def _can_get_locked(self) -> bool:
        if not self._items:
            return False
        if self._reception_over:
            # Threshold released at end of reception: drain whatever remains.
            return True
        return len(self._items) > self.threshold

    def _do_put_locked(self, record: SampleRecord) -> None:
        self._items.append(record)

    def _do_get_locked(self) -> SampleRecord:
        index = int(self._rng.integers(len(self._items)))
        # Swap-remove keeps eviction O(1); order within the list is irrelevant
        # because reads pick uniformly random positions anyway.
        self._items[index], self._items[-1] = self._items[-1], self._items[index]
        return self._items.pop()

    def _get_batch_locked(self, max_count: int) -> List[SampleRecord]:
        # Sequential uniform draws from the shrinking population are exactly a
        # uniform without-replacement sample, so the whole batch needs one
        # vectorized RNG call.  While reception is ongoing the population may
        # only be drawn down to the threshold.
        available = len(self._items)
        if not self._reception_over:
            available -= self.threshold
        take = min(max_count, available)
        if take <= 0:
            return []
        chosen = sample_without_replacement(self._rng, len(self._items), take)
        batch = [self._items[index] for index in chosen]
        for index in sorted(chosen, reverse=True):
            self._items[index] = self._items[-1]
            self._items.pop()
        return batch

    def _put_many_locked(self, records: List[SampleRecord]) -> int:
        take = min(self.capacity - len(self._items), len(records))
        self._items.extend(records[:take])
        return take
