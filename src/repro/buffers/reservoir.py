"""The Reservoir training buffer (Algorithm 1 of the paper).

The Reservoir distinguishes *unseen* samples (never selected in a batch) from
*seen* ones.  Compared to FIFO/FIRO it:

* lets data be selected more than once, so the consumer never starves while
  waiting for fresh data (throughput);
* always accepts newly produced data while the number of unseen samples is
  below capacity, evicting an already-seen sample when full, so no unseen
  sample is ever discarded (diversity);
* draws batch elements uniformly, with replacement, over the union of seen and
  unseen samples, moving each freshly selected unseen sample into the seen
  list;
* blocks batch extraction until the population exceeds the threshold, and
  lifts the blocking once data reception is over, after which samples are
  removed as they are drawn until the buffer empties out and training stops.

Columnar layout: the seen/unseen lists hold row-slot integers instead of
records (plus a free-slot stack); every list operation — swap-with-tail
eviction, unseen→seen migration — is performed on the same positions as the
per-record implementation, so RNG consumption and the drawn sequences are
unchanged.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.buffers.base import SampleRecord, TrainingBuffer
from repro.buffers.sampling import sample_with_replacement, sample_without_replacement
from repro.utils.seeding import derive_rng

Array = np.ndarray


class ReservoirBuffer(TrainingBuffer):
    """Training reservoir with seen/unseen bookkeeping (paper Algorithm 1)."""

    def __init__(self, capacity: int, threshold: int = 0, seed: int = 0) -> None:
        super().__init__(capacity=capacity, threshold=threshold)
        self._seen: List[int] = []
        self._not_seen: List[int] = []
        self._free: List[int] = list(range(capacity - 1, -1, -1))  # pop() -> 0, 1, ...
        self._rng = derive_rng("reservoir-buffer", seed)
        # Counters used by the experiments.
        self.evicted_seen = 0
        self.repeated_reads = 0

    # ----------------------------------------------------------- inspection
    @property
    def num_seen(self) -> int:
        with self._lock:
            return len(self._seen)

    @property
    def num_unseen(self) -> int:
        with self._lock:
            return len(self._not_seen)

    def _size_locked(self) -> int:
        return len(self._seen) + len(self._not_seen)

    def snapshot(self) -> dict:
        snap = super().snapshot()
        with self._lock:
            snap.update(
                num_seen=len(self._seen),
                num_unseen=len(self._not_seen),
                evicted_seen=self.evicted_seen,
                repeated_reads=self.repeated_reads,
            )
        return snap

    # ------------------------------------------------------------------- put
    def _can_put_locked(self) -> bool:
        # Block only when the buffer is full of *unseen* samples: evicting one
        # of them would discard data never used for training (Algorithm 1,
        # lines 21-22).
        return len(self._not_seen) < self.capacity

    def _take_slots_locked(self, want: int) -> Array:
        # Per-sample semantics: each insert beyond a full buffer evicts one
        # uniformly random *seen* sample; sequential uniform evictions from the
        # shrinking seen list are a uniform without-replacement set, so all
        # victims are picked with one vectorized RNG call (lines 24-26).
        count = min(want, self.capacity - len(self._not_seen))
        total = len(self._seen) + len(self._not_seen)
        free = max(0, self.capacity - total)
        evictions = count - free
        if evictions > 0:
            victims = sample_without_replacement(self._rng, len(self._seen), evictions)
            seen = self._seen
            for index in sorted(victims, reverse=True):
                self._free.append(seen[index])
                seen[index] = seen[-1]
                seen.pop()
            self.evicted_seen += evictions
        free_slots = self._free
        # Slice instead of ``count`` repeated pop() calls: same slots in the
        # same (reversed-tail) order, without a Python-level loop.
        taken = free_slots[-count:][::-1] if count else []
        del free_slots[len(free_slots) - count :]
        self._not_seen.extend(taken)
        return np.asarray(taken, dtype=np.intp)

    # ------------------------------------------------------------------- get
    def _can_get_locked(self) -> bool:
        total = len(self._seen) + len(self._not_seen)
        if total == 0:
            return False
        if self._reception_over:
            # Threshold lifted once reception is over (Section 3.2.3).
            return True
        return total > self.threshold

    def _draw_slot_locked(self) -> int:
        total = len(self._seen) + len(self._not_seen)
        index = int(self._rng.integers(total))
        if index < len(self._not_seen):
            # Selected an unseen sample: remove it from the unseen list and,
            # while reception is ongoing, keep it around in the seen list.
            slot = self._not_seen[index]
            self._not_seen[index] = self._not_seen[-1]
            self._not_seen.pop()
            if not self._reception_over:
                self._seen.append(slot)
            else:
                self._free.append(slot)
        else:
            seen_index = index - len(self._not_seen)
            slot = self._seen[seen_index]
            self.repeated_reads += 1
            if self._reception_over:
                # Drain mode: empty the buffer as samples are consumed.
                self._seen[seen_index] = self._seen[-1]
                self._seen.pop()
                self._free.append(slot)
        return slot

    def _slot_at_locked(self, index: int) -> int:
        """Slot at ``index`` in the unseen-then-seen population ordering."""
        num_unseen = len(self._not_seen)
        if index < num_unseen:
            return self._not_seen[index]
        return self._seen[index - num_unseen]

    def _draw_slots_locked(self, max_count: int) -> Array:
        total = len(self._seen) + len(self._not_seen)
        if total == 0:
            return np.empty(0, dtype=np.intp)
        num_unseen = len(self._not_seen)
        if self._reception_over:
            # Drain mode: every draw removes its sample, so sequential uniform
            # draws are a uniform without-replacement sample of the snapshot.
            take = min(max_count, total)
            chosen = sample_without_replacement(self._rng, total, take)
            drawn = [self._slot_at_locked(index) for index in chosen]
            unseen_idx = [i for i in chosen if i < num_unseen]
            seen_idx = [i - num_unseen for i in chosen if i >= num_unseen]
            self.repeated_reads += len(seen_idx)
            for index in sorted(unseen_idx, reverse=True):
                self._free.append(self._not_seen[index])
                self._not_seen[index] = self._not_seen[-1]
                self._not_seen.pop()
            for index in sorted(seen_idx, reverse=True):
                self._free.append(self._seen[index])
                self._seen[index] = self._seen[-1]
                self._seen.pop()
            return np.asarray(drawn, dtype=np.intp)
        # Reception ongoing: draws never shrink the population (unseen samples
        # merely move to the seen list), so the batch is iid uniform *with*
        # replacement over a fixed snapshot — one vectorized RNG call.  A
        # repeat of an unseen sample counts as a repeated read from its second
        # occurrence on, matching the per-sample bookkeeping.  The returned
        # slot array may therefore contain duplicates.
        chosen = sample_with_replacement(self._rng, total, max_count)
        drawn = []
        newly_seen = set()
        for index in chosen:
            if index < num_unseen:
                drawn.append(self._not_seen[index])
                newly_seen.add(index)
            else:
                drawn.append(self._seen[index - num_unseen])
        self.repeated_reads += max_count - len(newly_seen)
        for index in sorted(newly_seen, reverse=True):
            self._seen.append(self._not_seen[index])
            self._not_seen[index] = self._not_seen[-1]
            self._not_seen.pop()
        return np.asarray(drawn, dtype=np.intp)

    # -------------------------------------------------------------- sampling
    def sample_without_replacement(self, batch_size: int) -> Optional[List[SampleRecord]]:
        """Variant mentioned by the paper: draw a batch without replacement.

        Returns ``None`` when fewer than ``batch_size`` samples are currently
        available (no blocking).  Provided for the ablation benchmark; the
        default :meth:`get`/:meth:`get_batch` path samples with replacement as
        in Algorithm 1.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        with self._lock:
            total = len(self._seen) + len(self._not_seen)
            if total < batch_size or (not self._reception_over and total <= self.threshold):
                return None
            chosen = self._rng.choice(total, size=batch_size, replace=False)
            slots: List[int] = []
            # Process indices in decreasing order so removals do not shift the
            # positions of indices still to be processed.
            for index in sorted((int(i) for i in chosen), reverse=True):
                if index < len(self._not_seen):
                    slot = self._not_seen[index]
                    self._not_seen[index] = self._not_seen[-1]
                    self._not_seen.pop()
                    if not self._reception_over:
                        self._seen.append(slot)
                else:
                    seen_index = index - len(self._not_seen)
                    slot = self._seen[seen_index]
                    self.repeated_reads += 1
                    if self._reception_over:
                        self._seen[seen_index] = self._seen[-1]
                        self._seen.pop()
                        self._free.append(slot)
                slots.append(slot)
                self.total_got += 1
            batch = self._store.gather(np.asarray(slots, dtype=np.intp)).records()
            self._lock.notify_all()
            return batch
