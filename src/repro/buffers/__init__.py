"""Training buffers: FIFO, FIRO and the paper's Reservoir (Algorithm 1).

A training buffer sits between the server's data-aggregator thread (producer)
and its training thread (consumer).  Its job is twofold: de-bias the inherently
ordered data stream so that batches are well-mixed, and decouple the data
production rate from the GPU consumption rate so the GPU never starves.

* :class:`FIFOBuffer` — plain streaming: samples consumed once in arrival order.
* :class:`FIROBuffer` — "first in, random out": random eviction on read, plus a
  minimum-population threshold before batches may be drawn.
* :class:`ReservoirBuffer` — the paper's contribution: seen/unseen bookkeeping,
  eviction of already *seen* samples on write when full, uniform selection with
  replacement across seen+unseen, threshold lifted at end of reception.

Storage is columnar (structure-of-arrays): every buffer backs its samples
with a preallocated :class:`~repro.buffers.columns.ColumnStore` and the hot
path moves :class:`~repro.buffers.columns.ColumnBatch` chunks — see
``docs/data_path.md`` for the layout and ownership rules.
"""

from repro.buffers.base import BufferClosedError, SampleRecord, TrainingBuffer
from repro.buffers.columns import ColumnBatch, ColumnStore
from repro.buffers.fifo import FIFOBuffer
from repro.buffers.firo import FIROBuffer
from repro.buffers.reservoir import ReservoirBuffer
from repro.buffers.stats import BufferStatistics, OccurrenceTracker, expected_residency_time

__all__ = [
    "TrainingBuffer",
    "SampleRecord",
    "ColumnBatch",
    "ColumnStore",
    "BufferClosedError",
    "FIFOBuffer",
    "FIROBuffer",
    "ReservoirBuffer",
    "OccurrenceTracker",
    "BufferStatistics",
    "expected_residency_time",
    "make_buffer",
]


def make_buffer(kind: str, capacity: int, threshold: int = 0, seed: int = 0):
    """Instantiate a buffer by name ("fifo", "firo", "reservoir")."""
    kind = kind.lower()
    if kind == "fifo":
        return FIFOBuffer(capacity=capacity)
    if kind == "firo":
        return FIROBuffer(capacity=capacity, threshold=threshold, seed=seed)
    if kind == "reservoir":
        return ReservoirBuffer(capacity=capacity, threshold=threshold, seed=seed)
    raise KeyError(f"unknown buffer kind {kind!r}; available: fifo, firo, reservoir")
