"""Common interface and bookkeeping of the training buffers."""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.exceptions import BufferClosedError

Array = np.ndarray

__all__ = ["SampleRecord", "TrainingBuffer", "BufferClosedError", "contiguous_rows"]


def contiguous_rows(arrays: List[Array]) -> Optional[Array]:
    """Zero-copy ``(n, ...)`` view over rows that are physically consecutive.

    The batched ingestion path hands every record of a drained chunk a view
    into one shared block (the adopted payload block, the vectorized inputs
    matrix).  When such records are later drawn *in order* — a FIFO batch,
    or any batch that happens to preserve arrival adjacency — their rows
    still sit back to back in memory, and stacking them for the nn forward
    pass needs no copy at all: this helper detects that case and returns a
    strided view over the underlying block.  Returns ``None`` whenever the
    rows are not provably consecutive same-layout views of one base buffer
    (the caller then falls back to a gathering copy).
    """
    first = arrays[0]
    base = first.base
    if base is None or not first.flags.c_contiguous:
        return None
    row_nbytes = first.nbytes
    shape = first.shape
    dtype = first.dtype
    ptr = first.__array_interface__["data"][0]
    for row in arrays[1:]:
        if (row.base is not base or row.dtype is not dtype
                or row.shape != shape or not row.flags.c_contiguous):
            return None
        next_ptr = row.__array_interface__["data"][0]
        if next_ptr != ptr + row_nbytes:
            return None
        ptr = next_ptr
    return np.lib.stride_tricks.as_strided(
        first, shape=(len(arrays),) + shape, strides=(row_nbytes,) + first.strides
    )


@dataclass(frozen=True)
class SampleRecord:
    """One training sample held by a buffer.

    Attributes
    ----------
    inputs:
        The surrogate input vector ``(X, t)``.
    target:
        The flattened field ``u_t_X`` (float32).
    source_id:
        Identifier of the producing simulation (ensemble member).
    time_step:
        Time-step index within that simulation.
    """

    inputs: Array
    target: Array
    source_id: int = -1
    time_step: int = -1

    def key(self) -> Tuple[int, int]:
        """Unique identity of the sample within a study."""
        return (self.source_id, self.time_step)


class TrainingBuffer:
    """Thread-safe bounded sample container shared by producer and consumer.

    The API follows Algorithm 1 of the paper:

    * :meth:`put` — called by the data-aggregator thread for each received
      time step; may block when the buffer cannot accept new data.
    * :meth:`get` — called by the training thread to draw one sample; may
      block until the population passes the threshold.
    * :meth:`signal_reception_over` — called once all clients have finished;
      lifts the threshold and (for policies that retain data) switches the
      buffer into draining mode.

    Batches are built by :meth:`get_batch`, which acquires the lock once and
    delegates to the policy hook :meth:`_get_batch_locked` (vectorized in the
    concrete buffers); bulk insertion goes through :meth:`put_many` and
    :meth:`_put_many_locked`.  Both preserve the blocking / threshold /
    exhaustion contract of the per-sample :meth:`get` / :meth:`put` path.
    """

    def __init__(self, capacity: int, threshold: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("buffer capacity must be positive")
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        if threshold > capacity:
            raise ValueError("threshold cannot exceed capacity")
        self.capacity = int(capacity)
        self.threshold = int(threshold)
        self._lock = threading.Condition()
        self._reception_over = False
        self._closed = False
        # Counters shared by all policies.
        self.total_put = 0
        self.total_got = 0

    # ----------------------------------------------------------------- hooks
    def _size_locked(self) -> int:
        raise NotImplementedError

    def _can_put_locked(self) -> bool:
        raise NotImplementedError

    def _can_get_locked(self) -> bool:
        raise NotImplementedError

    def _do_put_locked(self, record: SampleRecord) -> None:
        raise NotImplementedError

    def _do_get_locked(self) -> SampleRecord:
        raise NotImplementedError

    def _get_batch_locked(self, max_count: int) -> List[SampleRecord]:
        """Draw up to ``max_count`` samples; lock held, ``_can_get_locked()`` True.

        The default implementation repeats the per-sample hook and therefore
        matches it exactly; concrete buffers override it with a vectorized
        draw (one RNG call for the whole batch).  Implementations must stop
        as soon as another draw would violate the policy's threshold/drain
        invariants, i.e. exactly when ``_can_get_locked()`` turns False.
        """
        drawn: List[SampleRecord] = []
        while len(drawn) < max_count and self._can_get_locked():
            drawn.append(self._do_get_locked())
        return drawn

    def _put_many_locked(self, records: List[SampleRecord]) -> int:
        """Insert a prefix of ``records``; lock held, ``_can_put_locked()`` True.

        Returns the number of records inserted.  The default repeats the
        per-sample hook; concrete buffers override it with a bulk insert.
        """
        count = 0
        for record in records:
            if not self._can_put_locked():
                break
            self._do_put_locked(record)
            count += 1
        return count

    # ------------------------------------------------------------------- api
    def __len__(self) -> int:
        with self._lock:
            return self._size_locked()

    @property
    def reception_over(self) -> bool:
        with self._lock:
            return self._reception_over

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def put(self, record: SampleRecord, timeout: Optional[float] = None) -> None:
        """Insert a new sample, blocking while the buffer cannot accept it."""
        with self._lock:
            if self._closed:
                raise BufferClosedError("cannot put into a closed buffer")
            if not self._lock.wait_for(
                lambda: self._can_put_locked() or self._closed, timeout=timeout
            ):
                raise TimeoutError("timed out waiting for buffer space")
            if self._closed:
                raise BufferClosedError("buffer closed while waiting to put")
            self._do_put_locked(record)
            self.total_put += 1
            self._lock.notify_all()

    def try_put(self, record: SampleRecord) -> bool:
        """Non-blocking put; returns False when the buffer cannot accept data now."""
        with self._lock:
            if self._closed:
                raise BufferClosedError("cannot put into a closed buffer")
            if not self._can_put_locked():
                return False
            self._do_put_locked(record)
            self.total_put += 1
            self._lock.notify_all()
            return True

    def put_many(
        self, records: List[SampleRecord], timeout: Optional[float] = None
    ) -> int:
        """Insert many samples under a single lock acquisition.

        Blocks while the buffer cannot accept more data, inserting in bulk
        whenever space frees up.  Returns the number of records inserted:
        ``len(records)`` when ``timeout`` is None (full blocking insert), or
        possibly fewer when a ``timeout`` is given and it expires while
        waiting for space — the caller can retry with the remaining suffix,
        which is what lets the aggregator's shutdown path stay responsive.

        Ownership contract: the buffer *adopts* each record's arrays as-is —
        no defensive copy is made on insertion, and the arrays may be views
        into a block shared by the rest of the chunk (the zero-copy
        ingestion path).  Callers must hand in records whose memory is
        immutable for the record's lifetime; in exchange, a block stays
        allocated until the last record viewing it is evicted (a bounded,
        chunk-sized over-retention that buys the copy-free hot path).

        Raises :class:`BufferClosedError` when the buffer is (or becomes)
        closed, mirroring :meth:`put`.
        """
        records = list(records)
        inserted = 0
        with self._lock:
            if self._closed:
                raise BufferClosedError("cannot put into a closed buffer")
            while inserted < len(records):
                if not self._lock.wait_for(
                    lambda: self._can_put_locked() or self._closed, timeout=timeout
                ):
                    return inserted
                if self._closed:
                    raise BufferClosedError("buffer closed while waiting to put")
                count = self._put_many_locked(records[inserted:])
                if count <= 0:  # defensive: a policy must accept >= 1 here
                    break
                inserted += count
                self.total_put += count
                self._lock.notify_all()
        return inserted

    def get(self, timeout: Optional[float] = None) -> Optional[SampleRecord]:
        """Draw one sample, blocking until one is available.

        Returns ``None`` when the buffer is exhausted: reception is over and no
        sample can ever be produced again (this is the training-loop
        termination condition described in the paper).
        """
        with self._lock:
            def ready() -> bool:
                return self._can_get_locked() or self._exhausted_locked() or self._closed

            if not self._lock.wait_for(ready, timeout=timeout):
                raise TimeoutError("timed out waiting for a sample")
            if self._closed or self._exhausted_locked():
                return None
            record = self._do_get_locked()
            self.total_got += 1
            self._lock.notify_all()
            return record

    def get_batch(self, batch_size: int, timeout: Optional[float] = None) -> List[SampleRecord]:
        """Draw ``batch_size`` samples (shorter batch only when exhausted).

        The whole batch is extracted under a single lock acquisition via the
        vectorized :meth:`_get_batch_locked` hook; when the policy cannot
        supply the full batch yet (population at the threshold) the call
        waits, exactly like repeated :meth:`get` calls would, with
        ``timeout`` bounding each wait.

        ``TimeoutError`` is raised only when the timeout expires with *no*
        sample drawn; a timeout mid-batch returns the partial batch instead,
        so samples already extracted from the buffer are never discarded.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        batch: List[SampleRecord] = []
        with self._lock:
            def ready() -> bool:
                return self._can_get_locked() or self._exhausted_locked() or self._closed

            while len(batch) < batch_size:
                if not self._lock.wait_for(ready, timeout=timeout):
                    if batch:
                        break
                    raise TimeoutError("timed out waiting for a sample")
                if self._closed or self._exhausted_locked():
                    break
                drawn = self._get_batch_locked(batch_size - len(batch))
                if not drawn:  # defensive: ready() guaranteed >= 1 available
                    break
                self.total_got += len(drawn)
                batch.extend(drawn)
                self._lock.notify_all()
        return batch

    def get_batch_per_sample(
        self, batch_size: int, timeout: Optional[float] = None
    ) -> List[SampleRecord]:
        """Reference batch extraction through repeated :meth:`get` calls.

        Semantically equivalent to :meth:`get_batch` (one lock acquisition and
        one RNG call per sample); kept as the baseline for the property tests
        and the batched-path benchmark.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        batch: List[SampleRecord] = []
        for _ in range(batch_size):
            try:
                record = self.get(timeout=timeout)
            except TimeoutError:
                if batch:  # same contract as get_batch: keep drawn samples
                    break
                raise
            if record is None:
                break
            batch.append(record)
        return batch

    def _exhausted_locked(self) -> bool:
        """True when reception is over and no further sample can be produced."""
        return self._reception_over and not self._can_get_locked()

    @property
    def exhausted(self) -> bool:
        with self._lock:
            return self._exhausted_locked()

    def signal_reception_over(self) -> None:
        """Notify the buffer that no new data will ever arrive."""
        with self._lock:
            self._reception_over = True
            self._lock.notify_all()

    def close(self) -> None:
        """Abort: wake every waiter; subsequent puts raise, gets return None."""
        with self._lock:
            self._closed = True
            self._lock.notify_all()

    # -------------------------------------------------------------- inspection
    def snapshot(self) -> dict:
        """Population counters used by the monitoring/metrics code."""
        with self._lock:
            return {
                "size": self._size_locked(),
                "capacity": self.capacity,
                "threshold": self.threshold,
                "total_put": self.total_put,
                "total_got": self.total_got,
                "reception_over": self._reception_over,
            }
