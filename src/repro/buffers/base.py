"""Common interface and bookkeeping of the training buffers."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.utils.exceptions import BufferClosedError

Array = np.ndarray

__all__ = ["SampleRecord", "TrainingBuffer", "BufferClosedError"]


@dataclass(frozen=True)
class SampleRecord:
    """One training sample held by a buffer.

    Attributes
    ----------
    inputs:
        The surrogate input vector ``(X, t)``.
    target:
        The flattened field ``u_t_X`` (float32).
    source_id:
        Identifier of the producing simulation (ensemble member).
    time_step:
        Time-step index within that simulation.
    """

    inputs: Array
    target: Array
    source_id: int = -1
    time_step: int = -1

    def key(self) -> Tuple[int, int]:
        """Unique identity of the sample within a study."""
        return (self.source_id, self.time_step)


class TrainingBuffer:
    """Thread-safe bounded sample container shared by producer and consumer.

    The API follows Algorithm 1 of the paper:

    * :meth:`put` — called by the data-aggregator thread for each received
      time step; may block when the buffer cannot accept new data.
    * :meth:`get` — called by the training thread to draw one sample; may
      block until the population passes the threshold.
    * :meth:`signal_reception_over` — called once all clients have finished;
      lifts the threshold and (for policies that retain data) switches the
      buffer into draining mode.

    Batches are built by repeated :meth:`get` calls (:meth:`get_batch`).
    """

    def __init__(self, capacity: int, threshold: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("buffer capacity must be positive")
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        if threshold > capacity:
            raise ValueError("threshold cannot exceed capacity")
        self.capacity = int(capacity)
        self.threshold = int(threshold)
        self._lock = threading.Condition()
        self._reception_over = False
        self._closed = False
        # Counters shared by all policies.
        self.total_put = 0
        self.total_got = 0

    # ----------------------------------------------------------------- hooks
    def _size_locked(self) -> int:
        raise NotImplementedError

    def _can_put_locked(self) -> bool:
        raise NotImplementedError

    def _can_get_locked(self) -> bool:
        raise NotImplementedError

    def _do_put_locked(self, record: SampleRecord) -> None:
        raise NotImplementedError

    def _do_get_locked(self) -> SampleRecord:
        raise NotImplementedError

    # ------------------------------------------------------------------- api
    def __len__(self) -> int:
        with self._lock:
            return self._size_locked()

    @property
    def reception_over(self) -> bool:
        with self._lock:
            return self._reception_over

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def put(self, record: SampleRecord, timeout: Optional[float] = None) -> None:
        """Insert a new sample, blocking while the buffer cannot accept it."""
        with self._lock:
            if self._closed:
                raise BufferClosedError("cannot put into a closed buffer")
            if not self._lock.wait_for(
                lambda: self._can_put_locked() or self._closed, timeout=timeout
            ):
                raise TimeoutError("timed out waiting for buffer space")
            if self._closed:
                raise BufferClosedError("buffer closed while waiting to put")
            self._do_put_locked(record)
            self.total_put += 1
            self._lock.notify_all()

    def try_put(self, record: SampleRecord) -> bool:
        """Non-blocking put; returns False when the buffer cannot accept data now."""
        with self._lock:
            if self._closed:
                raise BufferClosedError("cannot put into a closed buffer")
            if not self._can_put_locked():
                return False
            self._do_put_locked(record)
            self.total_put += 1
            self._lock.notify_all()
            return True

    def get(self, timeout: Optional[float] = None) -> Optional[SampleRecord]:
        """Draw one sample, blocking until one is available.

        Returns ``None`` when the buffer is exhausted: reception is over and no
        sample can ever be produced again (this is the training-loop
        termination condition described in the paper).
        """
        with self._lock:
            def ready() -> bool:
                return self._can_get_locked() or self._exhausted_locked() or self._closed

            if not self._lock.wait_for(ready, timeout=timeout):
                raise TimeoutError("timed out waiting for a sample")
            if self._closed or self._exhausted_locked():
                return None
            record = self._do_get_locked()
            self.total_got += 1
            self._lock.notify_all()
            return record

    def get_batch(self, batch_size: int, timeout: Optional[float] = None) -> List[SampleRecord]:
        """Draw ``batch_size`` samples (shorter batch only when exhausted)."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        batch: List[SampleRecord] = []
        for _ in range(batch_size):
            record = self.get(timeout=timeout)
            if record is None:
                break
            batch.append(record)
        return batch

    def _exhausted_locked(self) -> bool:
        """True when reception is over and no further sample can be produced."""
        return self._reception_over and not self._can_get_locked()

    @property
    def exhausted(self) -> bool:
        with self._lock:
            return self._exhausted_locked()

    def signal_reception_over(self) -> None:
        """Notify the buffer that no new data will ever arrive."""
        with self._lock:
            self._reception_over = True
            self._lock.notify_all()

    def close(self) -> None:
        """Abort: wake every waiter; subsequent puts raise, gets return None."""
        with self._lock:
            self._closed = True
            self._lock.notify_all()

    # -------------------------------------------------------------- inspection
    def snapshot(self) -> dict:
        """Population counters used by the monitoring/metrics code."""
        with self._lock:
            return {
                "size": self._size_locked(),
                "capacity": self.capacity,
                "threshold": self.threshold,
                "total_put": self.total_put,
                "total_got": self.total_got,
                "reception_over": self._reception_over,
            }
