"""Common interface and bookkeeping of the training buffers.

Since the columnar rebuild, every concrete buffer is a *policy over row
slots*: samples live in the preallocated column blocks of a
:class:`~repro.buffers.columns.ColumnStore`, and the policy hooks only
decide which slot indices a put writes and a get drains.  The blocking /
threshold / exhaustion contract is unchanged from the per-record era and is
implemented once, here.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.buffers.columns import ColumnBatch, ColumnStore, SampleRecord
from repro.utils.exceptions import BufferClosedError

Array = np.ndarray

__all__ = [
    "SampleRecord",
    "ColumnBatch",
    "TrainingBuffer",
    "BufferClosedError",
    "contiguous_rows",
]


def contiguous_rows(arrays: List[Array]) -> Optional[Array]:
    """Zero-copy ``(n, ...)`` view over rows that are physically consecutive.

    The columnar path hands every record of a gathered batch a view into one
    shared block (the batch's inputs/targets matrices).  When such records
    are kept in order their rows still sit back to back in memory, and
    stacking them for the nn forward pass needs no copy at all: this helper
    detects that case and returns a strided view over the underlying block.
    Returns ``None`` whenever the rows are not provably consecutive
    same-layout views of one base buffer (the caller then falls back to a
    gathering copy).
    """
    first = arrays[0]
    base = first.base
    if base is None or not first.flags.c_contiguous:
        return None
    row_nbytes = first.nbytes
    shape = first.shape
    dtype = first.dtype
    ptr = first.__array_interface__["data"][0]
    for row in arrays[1:]:
        if (row.base is not base or row.dtype != dtype
                or row.shape != shape or not row.flags.c_contiguous):
            return None
        next_ptr = row.__array_interface__["data"][0]
        if next_ptr != ptr + row_nbytes:
            return None
        ptr = next_ptr
    return np.lib.stride_tricks.as_strided(
        first, shape=(len(arrays),) + shape, strides=(row_nbytes,) + first.strides
    )


class TrainingBuffer:
    """Thread-safe bounded sample container shared by producer and consumer.

    The API follows Algorithm 1 of the paper:

    * :meth:`put` — called by the data-aggregator thread for each received
      time step; may block when the buffer cannot accept new data.
    * :meth:`get` — called by the training thread to draw one sample; may
      block until the population passes the threshold.
    * :meth:`signal_reception_over` — called once all clients have finished;
      lifts the threshold and (for policies that retain data) switches the
      buffer into draining mode.

    Storage is columnar: a :class:`ColumnStore` holds the samples as
    ``(capacity, d_in)`` float64 inputs, ``(capacity, d_out)`` float32
    targets and int64 id/step vectors.  Policies implement three slot hooks:

    * :meth:`_take_slots_locked` — allocate row slots for a put (evicting
      per policy when full);
    * :meth:`_draw_slot_locked` — pick one slot for a per-sample get,
      consuming it per policy (the scalar-RNG reference path);
    * :meth:`_draw_slots_locked` — pick a batch of slots with one vectorized
      RNG call, matching the per-sample path draw for draw.

    The base class turns slots into data: :meth:`put_many` accepts either a
    record list or a :class:`ColumnBatch` (whose columns are written with
    one fancy-indexed write per column), and :meth:`get_batch_columns`
    returns the drained rows as a ``ColumnBatch`` gathered under the lock —
    crucially *before* the slots can be rewritten, so the batch owns its
    rows.  :meth:`get_batch` is the same draw delivered as the
    :class:`SampleRecord` compatibility view.
    """

    def __init__(self, capacity: int, threshold: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("buffer capacity must be positive")
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        if threshold > capacity:
            raise ValueError("threshold cannot exceed capacity")
        self.capacity = int(capacity)
        self.threshold = int(threshold)
        self._store = ColumnStore(self.capacity)
        self._lock = threading.Condition()
        self._reception_over = False
        self._closed = False
        # Counters shared by all policies.
        self.total_put = 0
        self.total_got = 0

    # ----------------------------------------------------------------- hooks
    def _size_locked(self) -> int:
        raise NotImplementedError

    def _can_put_locked(self) -> bool:
        raise NotImplementedError

    def _can_get_locked(self) -> bool:
        raise NotImplementedError

    def _take_slots_locked(self, want: int) -> Array:
        """Allocate up to ``want`` row slots for a put; lock held,
        ``_can_put_locked()`` True — at least one slot must be returned.

        The policy records the slots as live (in arrival order) and performs
        any eviction its semantics call for; evicted slots may be reused
        within the same call.
        """
        raise NotImplementedError

    def _draw_slot_locked(self) -> int:
        """Consume and return one slot; lock held, ``_can_get_locked()`` True.

        The scalar reference path: one RNG call per sample, kept draw-for-
        draw identical to the pre-columnar per-sample semantics.
        """
        raise NotImplementedError

    def _draw_slots_locked(self, max_count: int) -> Array:
        """Draw up to ``max_count`` slots; lock held, ``_can_get_locked()`` True.

        The default repeats the per-sample hook and therefore matches it
        exactly; concrete buffers override it with a vectorized draw (one
        RNG call for the whole batch).  Implementations must stop as soon as
        another draw would violate the policy's threshold/drain invariants,
        i.e. exactly when ``_can_get_locked()`` turns False.  Policies that
        sample with replacement may return duplicate slots.
        """
        slots: List[int] = []
        while len(slots) < max_count and self._can_get_locked():
            slots.append(self._draw_slot_locked())
        return np.asarray(slots, dtype=np.intp)

    # ------------------------------------------------------------------- api
    def __len__(self) -> int:
        with self._lock:
            return self._size_locked()

    @property
    def reception_over(self) -> bool:
        with self._lock:
            return self._reception_over

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def put(self, record: SampleRecord, timeout: Optional[float] = None) -> None:
        """Insert a new sample, blocking while the buffer cannot accept it."""
        with self._lock:
            if self._closed:
                raise BufferClosedError("cannot put into a closed buffer")
            if not self._lock.wait_for(
                lambda: self._can_put_locked() or self._closed, timeout=timeout
            ):
                raise TimeoutError("timed out waiting for buffer space")
            if self._closed:
                raise BufferClosedError("buffer closed while waiting to put")
            slots = self._take_slots_locked(1)
            self._store.write_record(int(slots[0]), record)
            self.total_put += 1
            self._lock.notify_all()

    def try_put(self, record: SampleRecord) -> bool:
        """Non-blocking put; returns False when the buffer cannot accept data now."""
        with self._lock:
            if self._closed:
                raise BufferClosedError("cannot put into a closed buffer")
            if not self._can_put_locked():
                return False
            slots = self._take_slots_locked(1)
            self._store.write_record(int(slots[0]), record)
            self.total_put += 1
            self._lock.notify_all()
            return True

    def put_many(
        self,
        records: Union[Sequence[SampleRecord], ColumnBatch],
        timeout: Optional[float] = None,
    ) -> int:
        """Insert many samples under a single lock acquisition.

        Accepts a list of records or, on the hot path, a
        :class:`ColumnBatch` whose rows are written into the column store
        with one fancy-indexed write per column — no per-sample loop.

        Blocks while the buffer cannot accept more data, inserting in bulk
        whenever space frees up.  Returns the number of samples inserted:
        all of them when ``timeout`` is None (full blocking insert), or
        possibly fewer when a ``timeout`` is given and it expires while
        waiting for space — the caller can retry with the remaining suffix,
        which is what lets the aggregator's shutdown path stay responsive.

        Ownership contract: the dense store *copies* each inserted row into
        its preallocated columns — for an adopted wire chunk this is the one
        and only copy on the put side — so the caller's chunk is dead the
        moment ``put_many`` returns and pins no memory.  (The ragged
        object-rows fallback adopts row references instead; callers hand in
        rows that stay immutable, as before.)

        Raises :class:`BufferClosedError` when the buffer is (or becomes)
        closed, mirroring :meth:`put`.
        """
        if isinstance(records, ColumnBatch):
            batch = records
            total = len(batch)

            def write(slots: Array, offset: int) -> None:
                self._store.write_batch(slots, batch, offset)

        else:
            items = list(records)
            total = len(items)

            def write(slots: Array, offset: int) -> None:
                self._store.write_records(slots, items, offset)

        inserted = 0
        with self._lock:
            if self._closed:
                raise BufferClosedError("cannot put into a closed buffer")
            while inserted < total:
                if not self._lock.wait_for(
                    lambda: self._can_put_locked() or self._closed, timeout=timeout
                ):
                    return inserted
                if self._closed:
                    raise BufferClosedError("buffer closed while waiting to put")
                slots = self._take_slots_locked(total - inserted)
                count = len(slots)
                if count <= 0:  # defensive: a policy must accept >= 1 here
                    break
                write(slots, inserted)
                inserted += count
                self.total_put += count
                self._lock.notify_all()
        return inserted

    def get(self, timeout: Optional[float] = None) -> Optional[SampleRecord]:
        """Draw one sample, blocking until one is available.

        Returns ``None`` when the buffer is exhausted: reception is over and no
        sample can ever be produced again (this is the training-loop
        termination condition described in the paper).
        """
        with self._lock:
            def ready() -> bool:
                return self._can_get_locked() or self._exhausted_locked() or self._closed

            if not self._lock.wait_for(ready, timeout=timeout):
                raise TimeoutError("timed out waiting for a sample")
            if self._closed or self._exhausted_locked():
                return None
            slot = self._draw_slot_locked()
            record = self._store.record_at(slot)
            self.total_got += 1
            self._lock.notify_all()
            return record

    def _collect_columns(self, batch_size: int, timeout: Optional[float]) -> ColumnBatch:
        """Shared draw loop of :meth:`get_batch`/:meth:`get_batch_columns`.

        Each piece is gathered from the store *under the lock*, before any
        producer can recycle the freed slots, so the returned batch owns its
        rows outright.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        pieces: List[ColumnBatch] = []
        drawn = 0
        with self._lock:
            def ready() -> bool:
                return self._can_get_locked() or self._exhausted_locked() or self._closed

            while drawn < batch_size:
                if not self._lock.wait_for(ready, timeout=timeout):
                    if drawn:
                        break
                    raise TimeoutError("timed out waiting for a sample")
                if self._closed or self._exhausted_locked():
                    break
                slots = self._draw_slots_locked(batch_size - drawn)
                count = len(slots)
                if count == 0:  # defensive: ready() guaranteed >= 1 available
                    break
                pieces.append(self._store.gather(slots))
                drawn += count
                self.total_got += count
                self._lock.notify_all()
        if not pieces:
            return self._store.gather(np.empty(0, dtype=np.intp))
        if len(pieces) == 1:
            return pieces[0]
        return ColumnBatch.concat(pieces)

    def get_batch_columns(
        self, batch_size: int, timeout: Optional[float] = None
    ) -> ColumnBatch:
        """Draw ``batch_size`` samples as one :class:`ColumnBatch`.

        The columnar twin of :meth:`get_batch` — same blocking, threshold,
        partial-batch-on-timeout and exhaustion contract, but the batch
        reaches the caller as two matrices plus id/step vectors instead of a
        record list (an empty batch, ``len() == 0``, when exhausted).
        """
        return self._collect_columns(batch_size, timeout)

    def get_batch(self, batch_size: int, timeout: Optional[float] = None) -> List[SampleRecord]:
        """Draw ``batch_size`` samples (shorter batch only when exhausted).

        The whole batch is extracted under a single lock acquisition via the
        vectorized :meth:`_draw_slots_locked` hook; when the policy cannot
        supply the full batch yet (population at the threshold) the call
        waits, exactly like repeated :meth:`get` calls would, with
        ``timeout`` bounding each wait.  The result is the
        :class:`SampleRecord` view of the same columnar draw: records hold
        row views into the gathered batch's blocks.

        ``TimeoutError`` is raised only when the timeout expires with *no*
        sample drawn; a timeout mid-batch returns the partial batch instead,
        so samples already extracted from the buffer are never discarded.
        """
        return self._collect_columns(batch_size, timeout).records()

    def get_batch_per_sample(
        self, batch_size: int, timeout: Optional[float] = None
    ) -> List[SampleRecord]:
        """Reference batch extraction through repeated :meth:`get` calls.

        Semantically equivalent to :meth:`get_batch` (one lock acquisition and
        one RNG call per sample); kept as the baseline for the property tests
        and the batched-path benchmark.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        batch: List[SampleRecord] = []
        for _ in range(batch_size):
            try:
                record = self.get(timeout=timeout)
            except TimeoutError:
                if batch:  # same contract as get_batch: keep drawn samples
                    break
                raise
            if record is None:
                break
            batch.append(record)
        return batch

    def _exhausted_locked(self) -> bool:
        """True when reception is over and no further sample can be produced."""
        return self._reception_over and not self._can_get_locked()

    @property
    def exhausted(self) -> bool:
        with self._lock:
            return self._exhausted_locked()

    def signal_reception_over(self) -> None:
        """Notify the buffer that no new data will ever arrive."""
        with self._lock:
            self._reception_over = True
            self._lock.notify_all()

    def close(self) -> None:
        """Abort: wake every waiter; subsequent puts raise, gets return None."""
        with self._lock:
            self._closed = True
            self._lock.notify_all()

    # -------------------------------------------------------------- inspection
    def snapshot(self) -> dict:
        """Population counters used by the monitoring/metrics code."""
        with self._lock:
            return {
                "size": self._size_locked(),
                "capacity": self.capacity,
                "threshold": self.threshold,
                "total_put": self.total_put,
                "total_got": self.total_got,
                "reception_over": self._reception_over,
            }
