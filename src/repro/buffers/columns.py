"""Columnar (structure-of-arrays) sample storage shared by the data plane.

The wire format is already columnar — a packed batch carries one contiguous
float64 params block and one float32 payload block — and the training loop
consumes matrices, so the only reason per-message Python objects ever existed
between the two was the buffer API.  This module removes that reason:

* :class:`ColumnBatch` is the unit that flows through the hot path: one
  ``(n, d_in)`` float64 inputs matrix, one ``(n, d_out)`` float32 targets
  matrix and int64 ``source_id``/``time_step`` vectors, all arrival-ordered.
  A drained wire chunk becomes a ``ColumnBatch`` with a single block copy
  (the adoption copy), the buffer inserts it with fancy-indexed row writes,
  and a gathered batch hands the forward pass its two matrices as-is.
* :class:`ColumnStore` is the preallocated backing storage of one training
  buffer: dense column blocks addressed by row slot.  Buffer policies map
  logical order (FIFO ring, FIRO list, Reservoir seen/unseen) to slot
  indices; the store only reads and writes rows.

:class:`SampleRecord` lives here too, as the thin per-sample compatibility
view: ``records()``/``record_at`` materialise row views over the column
blocks so every pre-columnar consumer (``buffer.get()``, occurrence
tracking, tests) keeps working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

Array = np.ndarray

__all__ = ["SampleRecord", "ColumnBatch", "ColumnStore"]


@dataclass(frozen=True)
class SampleRecord:
    """One training sample held by a buffer.

    Attributes
    ----------
    inputs:
        The surrogate input vector ``(X, t)``.
    target:
        The flattened field ``u_t_X`` (float32).
    source_id:
        Identifier of the producing simulation (ensemble member).
    time_step:
        Time-step index within that simulation.
    """

    inputs: Array
    target: Array
    source_id: int = -1
    time_step: int = -1

    def key(self) -> Tuple[int, int]:
        """Unique identity of the sample within a study."""
        return (self.source_id, self.time_step)


class ColumnBatch:
    """An arrival-ordered run of samples as parallel columns.

    ``inputs`` is ``(n, d_in)`` float64 and ``targets`` ``(n, d_out)``
    float32 for the dense hot path; ragged ensembles (mixed parameter or
    field lengths) degrade to 1-D object arrays holding one row array per
    sample.  ``sequence_numbers`` is optional — the buffers do not store it,
    so batches gathered from a store carry ``None``.

    A batch owns its columns (or shares them with sibling slices); nothing
    downstream mutates them, which is what lets slices and row views be
    handed out freely.
    """

    __slots__ = ("inputs", "targets", "source_ids", "time_steps", "sequence_numbers")

    def __init__(
        self,
        inputs: Array,
        targets: Array,
        source_ids: Array,
        time_steps: Array,
        sequence_numbers: Optional[Array] = None,
    ) -> None:
        self.inputs = inputs
        self.targets = targets
        self.source_ids = source_ids
        self.time_steps = time_steps
        self.sequence_numbers = sequence_numbers

    def __len__(self) -> int:
        return len(self.source_ids)

    def __getitem__(self, index: slice) -> "ColumnBatch":
        """Slice into a sub-batch of column *views* (no copies)."""
        if not isinstance(index, slice):
            raise TypeError("ColumnBatch supports slice indexing only")
        seq = self.sequence_numbers
        return ColumnBatch(
            self.inputs[index],
            self.targets[index],
            self.source_ids[index],
            self.time_steps[index],
            None if seq is None else seq[index],
        )

    @property
    def is_dense(self) -> bool:
        """False for the ragged (object-rows) fallback representation."""
        return self.inputs.dtype.kind != "O"

    def compatible_with(self, other: "ColumnBatch") -> bool:
        """True when ``other``'s rows could be rows of this batch (concat-safe)."""
        return (
            self.inputs.dtype == other.inputs.dtype
            and self.targets.dtype == other.targets.dtype
            and self.inputs.shape[1:] == other.inputs.shape[1:]
            and self.targets.shape[1:] == other.targets.shape[1:]
        )

    def compress(self, keep: Array) -> "ColumnBatch":
        """Rows where the boolean ``keep`` mask is True, as fresh columns."""
        seq = self.sequence_numbers
        return ColumnBatch(
            self.inputs[keep],
            self.targets[keep],
            self.source_ids[keep],
            self.time_steps[keep],
            None if seq is None else seq[keep],
        )

    def keys(self) -> List[Tuple[int, int]]:
        """Per-row ``(source_id, time_step)`` identities, in order."""
        return list(zip(self.source_ids.tolist(), self.time_steps.tolist()))

    def records(self) -> List[SampleRecord]:
        """The per-sample compatibility view: one record per row.

        Dense batches hand out row views sharing this batch's blocks, so a
        batch of ``n`` records costs ``n`` small objects but zero copies —
        and arrival-ordered record lists remain stackable back into the
        underlying matrices without a copy (``contiguous_rows``).
        """
        ids = self.source_ids.tolist()
        steps = self.time_steps.tolist()
        inputs = self.inputs
        targets = self.targets
        return [
            SampleRecord(inputs[row], targets[row], ids[row], steps[row])
            for row in range(len(ids))
        ]

    @classmethod
    def concat(cls, chunks: Sequence["ColumnBatch"]) -> "ColumnBatch":
        """Concatenate compatible chunks (see :meth:`compatible_with`)."""
        if len(chunks) == 1:
            return chunks[0]
        seqs = [chunk.sequence_numbers for chunk in chunks]
        return cls(
            np.concatenate([chunk.inputs for chunk in chunks]),
            np.concatenate([chunk.targets for chunk in chunks]),
            np.concatenate([chunk.source_ids for chunk in chunks]),
            np.concatenate([chunk.time_steps for chunk in chunks]),
            None if any(seq is None for seq in seqs) else np.concatenate(seqs),
        )

    @classmethod
    def from_records(cls, records: Sequence[SampleRecord]) -> "ColumnBatch":
        """Columnise a record list (tests and benchmarks; not the hot path)."""
        count = len(records)
        source_ids = np.fromiter((r.source_id for r in records), np.int64, count)
        time_steps = np.fromiter((r.time_step for r in records), np.int64, count)
        rows = [(np.asarray(r.inputs), np.asarray(r.target)) for r in records]
        dense = count > 0 and all(
            inp.ndim == 1
            and tgt.ndim == 1
            and inp.shape == rows[0][0].shape
            and tgt.shape == rows[0][1].shape
            for inp, tgt in rows
        )
        if dense:
            inputs = np.empty((count, rows[0][0].shape[0]), dtype=np.float64)
            targets = np.empty((count, rows[0][1].shape[0]), dtype=np.float32)
            for row, (inp, tgt) in enumerate(rows):
                inputs[row] = inp
                targets[row] = tgt
        else:
            inputs = np.empty(count, dtype=object)
            targets = np.empty(count, dtype=object)
            for row, (inp, tgt) in enumerate(rows):
                inputs[row] = inp
                targets[row] = tgt
        return cls(inputs, targets, source_ids, time_steps)


class ColumnStore:
    """Preallocated structure-of-arrays backing one training buffer.

    The store is pure storage: it never tracks which rows are live.  The
    owning buffer's policy maps logical positions to row slots and is the
    single reader/writer, holding the buffer lock around every call — in
    particular a policy frees slots and gathers their rows under the *same*
    lock acquisition, so a freed slot can never be overwritten before its
    row has been copied out.

    The dense blocks are allocated lazily on the first write (row widths are
    only known then).  Writes into the dense store copy the row data (cast
    to the column dtypes); that is the single adoption copy of the put path.
    Ragged ensembles — a row whose shape does not match the allocated
    columns — migrate the store to 1-D object arrays holding one array per
    row, which adopt row references instead (the pre-columnar behaviour).
    """

    __slots__ = ("capacity", "inputs", "targets", "source_ids", "time_steps")

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self.inputs: Optional[Array] = None
        self.targets: Optional[Array] = None
        self.source_ids = np.full(self.capacity, -1, dtype=np.int64)
        self.time_steps = np.full(self.capacity, -1, dtype=np.int64)

    @property
    def object_rows(self) -> bool:
        """True once the store fell back to per-row object storage."""
        return self.inputs is not None and self.inputs.dtype.kind == "O"

    # ------------------------------------------------------------- allocation
    def _allocate(self, input_shape: Tuple[int, ...], target_shape: Tuple[int, ...]) -> None:
        if len(input_shape) == 1 and len(target_shape) == 1:
            self.inputs = np.empty((self.capacity, input_shape[0]), dtype=np.float64)
            self.targets = np.empty((self.capacity, target_shape[0]), dtype=np.float32)
        else:
            self._to_object_rows()

    def _to_object_rows(self) -> None:
        """Degrade to one arbitrary array per row (mixed-shape ensembles)."""
        inputs = np.empty(self.capacity, dtype=object)
        targets = np.empty(self.capacity, dtype=object)
        if self.inputs is not None and self.inputs.dtype.kind != "O":
            # Live rows become views into the old dense blocks, which are
            # never written again once replaced.
            for slot in range(self.capacity):
                inputs[slot] = self.inputs[slot]
                targets[slot] = self.targets[slot]
        elif self.inputs is not None:
            inputs[:] = self.inputs
            targets[:] = self.targets
        self.inputs = inputs
        self.targets = targets

    def _fits(self, input_row: Array, target_row: Array) -> bool:
        return (
            input_row.ndim == 1
            and target_row.ndim == 1
            and input_row.shape[0] == self.inputs.shape[1]
            and target_row.shape[0] == self.targets.shape[1]
        )

    # ----------------------------------------------------------------- writes
    def _write_row(self, slot: int, input_row: Array, target_row: Array) -> None:
        if self.inputs is None:
            self._allocate(np.shape(input_row), np.shape(target_row))
        if not self.object_rows:
            inp = np.asarray(input_row)
            tgt = np.asarray(target_row)
            if self._fits(inp, tgt):
                self.inputs[slot] = inp
                self.targets[slot] = tgt
                return
            self._to_object_rows()
        self.inputs[slot] = input_row
        self.targets[slot] = target_row

    def write_record(self, slot: int, record: SampleRecord) -> None:
        """Insert one record at ``slot`` (the per-sample compatibility path)."""
        self._write_row(slot, record.inputs, record.target)
        self.source_ids[slot] = record.source_id
        self.time_steps[slot] = record.time_step

    def write_records(self, slots: Array, records: Sequence[SampleRecord], offset: int = 0) -> None:
        """Insert ``records[offset:offset + len(slots)]`` at ``slots``."""
        for position, slot in enumerate(slots.tolist()):
            self.write_record(slot, records[offset + position])

    def write_batch(self, slots: Array, batch: ColumnBatch, offset: int = 0) -> None:
        """Insert ``batch[offset:offset + len(slots)]`` at ``slots``.

        Matching dense shapes take the vectorized path: one fancy-indexed
        write per column.  Anything else falls back to per-row writes (and
        possibly an object-rows migration).
        """
        count = len(slots)
        rows = slice(offset, offset + count)
        inputs = batch.inputs
        targets = batch.targets
        if self.inputs is None and inputs.dtype.kind != "O":
            self._allocate(inputs.shape[1:], targets.shape[1:])
        if (
            inputs.dtype.kind != "O"
            and not self.object_rows
            and inputs.shape[1] == self.inputs.shape[1]
            and targets.shape[1] == self.targets.shape[1]
        ):
            self.inputs[slots] = inputs[rows]
            self.targets[slots] = targets[rows]
        else:
            for position, slot in enumerate(slots.tolist()):
                row = offset + position
                self._write_row(slot, inputs[row], targets[row])
        self.source_ids[slots] = batch.source_ids[rows]
        self.time_steps[slots] = batch.time_steps[rows]

    # ------------------------------------------------------------------ reads
    def gather(self, slots: Array) -> ColumnBatch:
        """Rows at ``slots`` as a fresh :class:`ColumnBatch`.

        Fancy indexing copies, so the returned batch owns its columns and
        stays valid after the slots are recycled.  (Object-rows stores hand
        out row references instead; those rows are rebound, never mutated.)
        """
        ids = self.source_ids[slots]
        steps = self.time_steps[slots]
        if self.inputs is None:
            return ColumnBatch(
                np.empty((0, 0), dtype=np.float64),
                np.empty((0, 0), dtype=np.float32),
                ids,
                steps,
            )
        return ColumnBatch(self.inputs[slots], self.targets[slots], ids, steps)

    def record_at(self, slot: int) -> SampleRecord:
        """One row as a standalone record (dense rows are copied out)."""
        if self.object_rows:
            inputs = self.inputs[slot]
            target = self.targets[slot]
        else:
            inputs = self.inputs[slot].copy()
            target = self.targets[slot].copy()
        return SampleRecord(
            inputs, target, int(self.source_ids[slot]), int(self.time_steps[slot])
        )
