"""Buffer statistics: sample-occurrence tracking and residency-time analysis.

* :class:`OccurrenceTracker` produces the histogram of Figure 3 (how many
  times each simulation time step appears in training batches).
* :func:`expected_residency_time` is the analytic result of Appendix A: the
  expected number of insertions a sample survives in a container of capacity
  ``n`` with random-overwrite insertion is ``n - 1``.
* :func:`measure_residency_times` measures it empirically, used by the
  property tests and the residency benchmark.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Tuple

import numpy as np

from repro.utils.seeding import derive_rng


class OccurrenceTracker:
    """Counts how many times each sample key appears in training batches."""

    def __init__(self) -> None:
        self._counts: Counter = Counter()

    def record(self, key: Hashable) -> None:
        """Record one occurrence of ``key`` in a batch."""
        self._counts[key] += 1

    def record_batch(self, keys: Iterable[Hashable]) -> None:
        """Record every key of a batch."""
        for key in keys:
            self._counts[key] += 1

    def record_columns(self, source_ids: np.ndarray, time_steps: np.ndarray) -> None:
        """Record every ``(source_id, time_step)`` key of a columnar batch.

        The vectorised twin of :meth:`record_batch`: one ``Counter.update``
        over the zipped id/step vectors, no per-sample Python call.
        """
        self._counts.update(zip(source_ids.tolist(), time_steps.tolist()))

    @property
    def num_unique(self) -> int:
        """Number of distinct samples ever selected."""
        return len(self._counts)

    @property
    def total_occurrences(self) -> int:
        """Total number of selections (batch slots filled)."""
        return int(sum(self._counts.values()))

    def count(self, key: Hashable) -> int:
        return self._counts.get(key, 0)

    def histogram(self) -> Dict[int, int]:
        """Mapping occurrence-count -> number of samples seen that many times.

        This is exactly the data plotted in the paper's Figure 3.
        """
        histogram: Counter = Counter(self._counts.values())
        return dict(sorted(histogram.items()))

    def max_occurrences(self) -> int:
        """Largest number of times any single sample was selected."""
        return max(self._counts.values(), default=0)

    def mean_occurrences(self) -> float:
        """Average selections per distinct selected sample."""
        if not self._counts:
            return 0.0
        return self.total_occurrences / self.num_unique


@dataclass
class BufferStatistics:
    """Time series of buffer population and throughput, sampled during a run."""

    times: List[float] = field(default_factory=list)
    sizes: List[int] = field(default_factory=list)
    unseen_sizes: List[int] = field(default_factory=list)
    throughputs: List[float] = field(default_factory=list)

    def record(self, time: float, size: int, unseen: int | None = None,
        throughput: float | None = None) -> None:
        self.times.append(float(time))
        self.sizes.append(int(size))
        self.unseen_sizes.append(int(unseen) if unseen is not None else int(size))
        self.throughputs.append(float(throughput) if throughput is not None else float("nan"))

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(times, sizes, unseen_sizes, throughputs) as numpy arrays."""
        return (
            np.asarray(self.times),
            np.asarray(self.sizes),
            np.asarray(self.unseen_sizes),
            np.asarray(self.throughputs),
        )

    def mean_population(self) -> float:
        return float(np.mean(self.sizes)) if self.sizes else 0.0

    def mean_throughput(self) -> float:
        values = [t for t in self.throughputs if np.isfinite(t)]
        return float(np.mean(values)) if values else 0.0


def expected_residency_time(capacity: int) -> float:
    """Appendix A: expected number of insertions a sample survives is ``n - 1``."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    return float(capacity - 1)


def measure_residency_times(
    capacity: int,
    num_insertions: int,
    seed: int = 0,
) -> np.ndarray:
    """Empirical residency times of the random-overwrite insertion process.

    Simulates the Appendix A process: a container of ``capacity`` slots where
    each new item overwrites a uniformly random slot, and returns the number of
    subsequent insertions each evicted item survived.  Items still in the
    container at the end are not counted (their residency is censored), which
    matches the appendix's asymptotic setting ``m >> n``.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    if num_insertions <= 0:
        raise ValueError("num_insertions must be positive")
    rng = derive_rng("residency-measure", capacity, seed)
    birth = np.full(capacity, -1, dtype=np.int64)
    residencies: List[int] = []
    for step in range(num_insertions):
        slot = int(rng.integers(capacity))
        if birth[slot] >= 0:
            # The item survived the insertions strictly between its own and the
            # one evicting it, matching the paper's definition of p(k).
            residencies.append(step - int(birth[slot]) - 1)
        birth[slot] = step
    return np.asarray(residencies, dtype=np.int64)
