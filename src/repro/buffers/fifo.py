"""FIFO training buffer (pure streaming baseline)."""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, List

from repro.buffers.base import SampleRecord, TrainingBuffer


class FIFOBuffer(TrainingBuffer):
    """First-in first-out buffer.

    Data are batched for training in exactly the order they are received, and
    each sample is seen once and only once.  Production blocks when the buffer
    is full; consumption blocks when it is empty.  This is the paper's
    streaming baseline whose throughput tracks the instantaneous data
    production rate.
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity=capacity, threshold=0)
        self._queue: Deque[SampleRecord] = deque()

    def _size_locked(self) -> int:
        return len(self._queue)

    def _can_put_locked(self) -> bool:
        return len(self._queue) < self.capacity

    def _can_get_locked(self) -> bool:
        return len(self._queue) > 0

    def _do_put_locked(self, record: SampleRecord) -> None:
        self._queue.append(record)

    def _do_get_locked(self) -> SampleRecord:
        return self._queue.popleft()

    def _get_batch_locked(self, max_count: int) -> List[SampleRecord]:
        take = min(max_count, len(self._queue))
        drawn = list(itertools.islice(self._queue, take))
        for _ in range(take):
            self._queue.popleft()
        return drawn

    def _put_many_locked(self, records: List[SampleRecord]) -> int:
        take = min(self.capacity - len(self._queue), len(records))
        self._queue.extend(records[:take])
        return take
