"""FIFO training buffer (pure streaming baseline)."""

from __future__ import annotations

import numpy as np

from repro.buffers.base import TrainingBuffer

Array = np.ndarray


class FIFOBuffer(TrainingBuffer):
    """First-in first-out buffer.

    Data are batched for training in exactly the order they are received, and
    each sample is seen once and only once.  Production blocks when the buffer
    is full; consumption blocks when it is empty.  This is the paper's
    streaming baseline whose throughput tracks the instantaneous data
    production rate.

    Columnar layout: the live rows form a ring over the store's slots — two
    integers (``head``, ``count``) replace the deque, and a put or get is
    pure index arithmetic (a wrapped ``arange`` of slots).
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity=capacity, threshold=0)
        self._head = 0
        self._count = 0

    def _size_locked(self) -> int:
        return self._count

    def _can_put_locked(self) -> bool:
        return self._count < self.capacity

    def _can_get_locked(self) -> bool:
        return self._count > 0

    def _take_slots_locked(self, want: int) -> Array:
        take = min(want, self.capacity - self._count)
        tail = self._head + self._count
        slots = np.arange(tail, tail + take, dtype=np.intp) % self.capacity
        self._count += take
        return slots

    def _draw_slot_locked(self) -> int:
        slot = self._head
        self._head = (self._head + 1) % self.capacity
        self._count -= 1
        return slot

    def _draw_slots_locked(self, max_count: int) -> Array:
        take = min(max_count, self._count)
        slots = np.arange(self._head, self._head + take, dtype=np.intp) % self.capacity
        self._head = (self._head + take) % self.capacity
        self._count -= take
        return slots
