"""FIFO training buffer (pure streaming baseline)."""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.buffers.base import SampleRecord, TrainingBuffer


class FIFOBuffer(TrainingBuffer):
    """First-in first-out buffer.

    Data are batched for training in exactly the order they are received, and
    each sample is seen once and only once.  Production blocks when the buffer
    is full; consumption blocks when it is empty.  This is the paper's
    streaming baseline whose throughput tracks the instantaneous data
    production rate.
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity=capacity, threshold=0)
        self._queue: Deque[SampleRecord] = deque()

    def _size_locked(self) -> int:
        return len(self._queue)

    def _can_put_locked(self) -> bool:
        return len(self._queue) < self.capacity

    def _can_get_locked(self) -> bool:
        return len(self._queue) > 0

    def _do_put_locked(self, record: SampleRecord) -> None:
        self._queue.append(record)

    def _do_get_locked(self) -> SampleRecord:
        return self._queue.popleft()
